//! 3D torus fabric with dimension-order routing.

use hfast_topology::generators::{grid_coords, grid_index};

use crate::error::NetsimError;
use crate::fabric::{Fabric, LinkId, LinkSpec};
use crate::faultplan::FaultState;

/// Directions of the six torus links per node.
const DIRS: usize = 6;

/// A 3D torus: every node is also a router with six directed links.
#[derive(Debug, Clone)]
pub struct TorusFabric {
    dims: (usize, usize, usize),
    n: usize,
}

impl TorusFabric {
    /// Builds a torus of the given dimensions.
    ///
    /// # Errors
    /// [`NetsimError::EmptyFabric`] when any dimension is zero.
    pub fn new(dims: (usize, usize, usize)) -> Result<Self, NetsimError> {
        let n = dims.0 * dims.1 * dims.2;
        if n == 0 {
            return Err(NetsimError::EmptyFabric { fabric: "torus" });
        }
        Ok(TorusFabric { dims, n })
    }

    /// Dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Link id for leaving `node` in `dir` (0:+x 1:−x 2:+y 3:−y 4:+z 5:−z).
    fn link_id(&self, node: usize, dir: usize) -> LinkId {
        node * DIRS + dir
    }

    /// The node reached by leaving `node` in `dir`.
    fn neighbor(&self, node: usize, dir: usize) -> usize {
        let (dx, dy, dz) = self.dims;
        let (x, y, z) = grid_coords(self.dims, node);
        let step = |c: usize, extent: usize, forward: bool| {
            if forward {
                (c + 1) % extent
            } else {
                (c + extent - 1) % extent
            }
        };
        let (x, y, z) = match dir {
            0 => (step(x, dx, true), y, z),
            1 => (step(x, dx, false), y, z),
            2 => (x, step(y, dy, true), z),
            3 => (x, step(y, dy, false), z),
            4 => (x, y, step(z, dz, true)),
            5 => (x, y, step(z, dz, false)),
            _ => unreachable!("torus has 6 directions"),
        };
        grid_index(self.dims, x, y, z)
    }
}

impl Fabric for TorusFabric {
    fn name(&self) -> &str {
        "torus"
    }

    fn nodes(&self) -> usize {
        self.n
    }

    fn link_count(&self) -> usize {
        self.n * DIRS
    }

    fn link(&self, _id: LinkId) -> LinkSpec {
        LinkSpec::DEFAULT
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(vec![]);
        }
        let (dx, dy, dz) = self.dims;
        let (mut x, mut y, mut z) = grid_coords(self.dims, src);
        let (tx, ty, tz) = grid_coords(self.dims, dst);
        // Dimension-order routing takes the shorter way around each ring,
        // so ⌊extent/2⌋ hops per axis bounds the route exactly.
        let mut path = Vec::with_capacity(dx / 2 + dy / 2 + dz / 2);

        let walk = |path: &mut Vec<LinkId>,
                    cur: &mut usize,
                    target: usize,
                    extent: usize,
                    plus_dir: usize,
                    make_node: &dyn Fn(usize) -> usize| {
            if extent <= 1 || *cur == target {
                return;
            }
            let fwd = (target + extent - *cur) % extent;
            let bwd = (*cur + extent - target) % extent;
            let go_fwd = fwd <= bwd;
            let hops = fwd.min(bwd);
            for _ in 0..hops {
                let from = make_node(*cur);
                let dir = if go_fwd { plus_dir } else { plus_dir + 1 };
                path.push(self.link_id(from, dir));
                *cur = if go_fwd {
                    (*cur + 1) % extent
                } else {
                    (*cur + extent - 1) % extent
                };
            }
        };

        {
            let (yy, zz) = (y, z);
            walk(&mut path, &mut x, tx, dx, 0, &|c| {
                grid_index(self.dims, c, yy, zz)
            });
        }
        {
            let (xx, zz) = (x, z);
            walk(&mut path, &mut y, ty, dy, 2, &|c| {
                grid_index(self.dims, xx, c, zz)
            });
        }
        {
            let (xx, yy) = (x, y);
            walk(&mut path, &mut z, tz, dz, 4, &|c| {
                grid_index(self.dims, xx, yy, c)
            });
        }
        debug_assert_eq!(grid_index(self.dims, x, y, z), dst);
        Some(path)
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        // Every torus link lands in a router.
        self.path(src, dst).map(|p| p.len())
    }

    fn incident_links(&self, node: usize) -> Vec<LinkId> {
        // Every node is a router: its six outgoing links plus the six
        // links its neighbors point back at it (the neighbor in `dir`
        // reaches us via the opposite direction, `dir ^ 1`).
        let mut links = std::collections::BTreeSet::new();
        for dir in 0..DIRS {
            links.insert(self.link_id(node, dir));
            links.insert(self.link_id(self.neighbor(node, dir), dir ^ 1));
        }
        links.into_iter().collect()
    }

    fn path_avoiding(&self, src: usize, dst: usize, state: &FaultState) -> Option<Vec<LinkId>> {
        if !state.node_up(src) || !state.node_up(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![]);
        }
        // Fast path: the dimension-order route still works.
        if let Some(p) = self.path(src, dst) {
            if !state.blocks(&p) {
                return Some(p);
            }
        }
        // Adaptive detour: deterministic BFS over live links and routers
        // (queue order and direction order are fixed, so every run finds
        // the same detour).
        let mut prev: Vec<Option<(usize, LinkId)>> = vec![None; self.n];
        let mut seen = vec![false; self.n];
        seen[src] = true;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(cur) = queue.pop_front() {
            for dir in 0..DIRS {
                let next = self.neighbor(cur, dir);
                let link = self.link_id(cur, dir);
                if next == cur || seen[next] || !state.link_up(link) || !state.node_up(next) {
                    continue;
                }
                seen[next] = true;
                prev[next] = Some((cur, link));
                if next == dst {
                    let mut path = Vec::new();
                    let mut at = dst;
                    while let Some((from, l)) = prev[at] {
                        path.push(l);
                        at = from;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::traffic::Flow;

    #[test]
    fn zero_dimension_is_rejected() {
        assert_eq!(
            TorusFabric::new((4, 0, 4)).unwrap_err(),
            NetsimError::EmptyFabric { fabric: "torus" }
        );
    }

    #[test]
    fn incident_links_cover_both_directions() {
        let t = TorusFabric::new((4, 4, 4)).unwrap();
        let links = t.incident_links(0);
        assert_eq!(links.len(), 12, "6 outgoing + 6 incoming, all distinct");
        // Outgoing +x from node 0 and node 1's −x link back at node 0
        // (link id 1 * DIRS + 1 = 7).
        assert!(links.contains(&0));
        assert!(links.contains(&7));
    }

    #[test]
    fn bfs_detours_around_failed_link() {
        let t = TorusFabric::new((4, 4, 4)).unwrap();
        let mut state = FaultState::healthy(&t);
        let primary = t.path(0, 2).unwrap();
        assert_eq!(
            t.path_avoiding(0, 2, &state),
            Some(primary.clone()),
            "healthy state keeps dimension-order route"
        );
        state.apply(
            &t,
            crate::faultplan::FaultEvent {
                time_ns: 0,
                action: crate::faultplan::FaultAction::Fail,
                target: crate::faultplan::FaultTarget::Link(primary[0]),
            },
        );
        let detour = t.path_avoiding(0, 2, &state).expect("torus has detours");
        assert_ne!(detour, primary);
        assert!(!state.blocks(&detour));
        assert_eq!(detour.len(), 2, "BFS finds an equally short detour");
        // Determinism: ask twice, get the identical route.
        assert_eq!(t.path_avoiding(0, 2, &state), Some(detour));
    }

    #[test]
    fn dead_router_blocks_and_unblocks() {
        let t = TorusFabric::new((4, 1, 1)).unwrap();
        let mut state = FaultState::healthy(&t);
        let fail = crate::faultplan::FaultEvent {
            time_ns: 0,
            action: crate::faultplan::FaultAction::Fail,
            target: crate::faultplan::FaultTarget::Node(1),
        };
        let incident = state.apply(&t, fail);
        assert_eq!(incident, t.incident_links(1));
        // 0 → 2 must now go the long way around through 3.
        let detour = t.path_avoiding(0, 2, &state).expect("ring detour exists");
        assert_eq!(detour.len(), 2);
        assert!(
            t.path_avoiding(0, 1, &state).is_none(),
            "dst itself is down"
        );
        let recover = crate::faultplan::FaultEvent {
            action: crate::faultplan::FaultAction::Recover,
            ..fail
        };
        state.apply(&t, recover);
        assert_eq!(t.path_avoiding(0, 2, &state), t.path(0, 2));
    }

    #[test]
    fn neighbour_path_is_one_link() {
        let t = TorusFabric::new((4, 4, 4)).unwrap();
        let p = t.path(0, 1).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(t.switch_hops(0, 1), Some(1));
    }

    #[test]
    fn wraparound_is_shortest() {
        let t = TorusFabric::new((4, 1, 1)).unwrap();
        // 0 → 3 is one hop backwards around the ring.
        assert_eq!(t.path(0, 3).unwrap().len(), 1);
        assert_eq!(t.path(0, 2).unwrap().len(), 2);
    }

    #[test]
    fn dimension_order_lengths_match_manhattan() {
        let t = TorusFabric::new((4, 4, 4)).unwrap();
        for dst in 0..64 {
            let (x, y, z) = hfast_topology::generators::grid_coords((4, 4, 4), dst);
            // From node 0: wrap-aware distance per axis is min(c, 4−c).
            let manhattan = [x, y, z].iter().map(|&c| c.min(4 - c)).sum::<usize>();
            assert_eq!(t.path(0, dst).unwrap().len(), manhattan, "dst {dst}");
        }
    }

    #[test]
    fn worst_case_hops() {
        let t = TorusFabric::new((4, 4, 4)).unwrap();
        let worst = (0..64).map(|d| t.path(0, d).unwrap().len()).max().unwrap();
        assert_eq!(worst, 6, "diameter of a 4x4x4 torus");
    }

    #[test]
    fn contention_on_shared_ring_links() {
        // All nodes push to node 0 around a ring: inner links shared.
        let t = TorusFabric::new((8, 1, 1)).unwrap();
        let flows: Vec<Flow> = (1..8)
            .map(|s| Flow {
                src: s,
                dst: 0,
                bytes: 100_000,
                start_ns: 0,
            })
            .collect();
        let stats = Simulation::new(&t).run(&flows).stats;
        assert_eq!(stats.completed, 7);
        assert!(
            stats.max_link_utilization > 0.5,
            "the links adjacent to node 0 must saturate: {}",
            stats.max_link_utilization
        );
    }

    #[test]
    fn degenerate_single_node() {
        let t = TorusFabric::new((1, 1, 1)).unwrap();
        assert_eq!(t.path(0, 0).unwrap().len(), 0);
    }
}
