//! 3D torus fabric with dimension-order routing.

use hfast_topology::generators::{grid_coords, grid_index};

use crate::fabric::{Fabric, LinkId, LinkSpec};

/// Directions of the six torus links per node.
const DIRS: usize = 6;

/// A 3D torus: every node is also a router with six directed links.
#[derive(Debug, Clone)]
pub struct TorusFabric {
    dims: (usize, usize, usize),
    n: usize,
}

impl TorusFabric {
    /// Builds a torus of the given dimensions.
    pub fn new(dims: (usize, usize, usize)) -> Self {
        let n = dims.0 * dims.1 * dims.2;
        assert!(n >= 1);
        TorusFabric { dims, n }
    }

    /// Dimensions.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Link id for leaving `node` in `dir` (0:+x 1:−x 2:+y 3:−y 4:+z 5:−z).
    fn link_id(&self, node: usize, dir: usize) -> LinkId {
        node * DIRS + dir
    }
}

impl Fabric for TorusFabric {
    fn name(&self) -> &str {
        "torus"
    }

    fn nodes(&self) -> usize {
        self.n
    }

    fn link_count(&self) -> usize {
        self.n * DIRS
    }

    fn link(&self, _id: LinkId) -> LinkSpec {
        LinkSpec::DEFAULT
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(vec![]);
        }
        let (dx, dy, dz) = self.dims;
        let (mut x, mut y, mut z) = grid_coords(self.dims, src);
        let (tx, ty, tz) = grid_coords(self.dims, dst);
        let mut path = Vec::new();

        let walk = |path: &mut Vec<LinkId>,
                    cur: &mut usize,
                    target: usize,
                    extent: usize,
                    plus_dir: usize,
                    make_node: &dyn Fn(usize) -> usize| {
            if extent <= 1 || *cur == target {
                return;
            }
            let fwd = (target + extent - *cur) % extent;
            let bwd = (*cur + extent - target) % extent;
            let go_fwd = fwd <= bwd;
            let hops = fwd.min(bwd);
            for _ in 0..hops {
                let from = make_node(*cur);
                let dir = if go_fwd { plus_dir } else { plus_dir + 1 };
                path.push(self.link_id(from, dir));
                *cur = if go_fwd {
                    (*cur + 1) % extent
                } else {
                    (*cur + extent - 1) % extent
                };
            }
        };

        {
            let (yy, zz) = (y, z);
            walk(&mut path, &mut x, tx, dx, 0, &|c| {
                grid_index(self.dims, c, yy, zz)
            });
        }
        {
            let (xx, zz) = (x, z);
            walk(&mut path, &mut y, ty, dy, 2, &|c| {
                grid_index(self.dims, xx, c, zz)
            });
        }
        {
            let (xx, yy) = (x, y);
            walk(&mut path, &mut z, tz, dz, 4, &|c| {
                grid_index(self.dims, xx, yy, c)
            });
        }
        debug_assert_eq!(grid_index(self.dims, x, y, z), dst);
        Some(path)
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        // Every torus link lands in a router.
        self.path(src, dst).map(|p| p.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::traffic::Flow;

    #[test]
    fn neighbour_path_is_one_link() {
        let t = TorusFabric::new((4, 4, 4));
        let p = t.path(0, 1).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(t.switch_hops(0, 1), Some(1));
    }

    #[test]
    fn wraparound_is_shortest() {
        let t = TorusFabric::new((4, 1, 1));
        // 0 → 3 is one hop backwards around the ring.
        assert_eq!(t.path(0, 3).unwrap().len(), 1);
        assert_eq!(t.path(0, 2).unwrap().len(), 2);
    }

    #[test]
    fn dimension_order_lengths_match_manhattan() {
        let t = TorusFabric::new((4, 4, 4));
        for dst in 0..64 {
            let (x, y, z) = hfast_topology::generators::grid_coords((4, 4, 4), dst);
            // From node 0: wrap-aware distance per axis is min(c, 4−c).
            let manhattan = [x, y, z].iter().map(|&c| c.min(4 - c)).sum::<usize>();
            assert_eq!(t.path(0, dst).unwrap().len(), manhattan, "dst {dst}");
        }
    }

    #[test]
    fn worst_case_hops() {
        let t = TorusFabric::new((4, 4, 4));
        let worst = (0..64).map(|d| t.path(0, d).unwrap().len()).max().unwrap();
        assert_eq!(worst, 6, "diameter of a 4x4x4 torus");
    }

    #[test]
    fn contention_on_shared_ring_links() {
        // All nodes push to node 0 around a ring: inner links shared.
        let t = TorusFabric::new((8, 1, 1));
        let flows: Vec<Flow> = (1..8)
            .map(|s| Flow {
                src: s,
                dst: 0,
                bytes: 100_000,
                start_ns: 0,
            })
            .collect();
        let stats = Simulation::new(&t).run(&flows).stats;
        assert_eq!(stats.completed, 7);
        assert!(
            stats.max_link_utilization > 0.5,
            "the links adjacent to node 0 must saturate: {}",
            stats.max_link_utilization
        );
    }

    #[test]
    fn degenerate_single_node() {
        let t = TorusFabric::new((1, 1, 1));
        assert_eq!(t.path(0, 0).unwrap().len(), 0);
    }
}
