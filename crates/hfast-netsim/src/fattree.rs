//! Fat-tree fabric model.
//!
//! An (N/2)-ary switch tree: each leaf switch hosts N/2 nodes, each
//! internal switch aggregates N/2 children. Uplinks are "fat" — their
//! bandwidth scales with the subtree they serve, so the model grants the
//! fat tree its full-bisection ideal and the comparison against HFAST is
//! conservative: what remains is the latency of traversing switch layers,
//! exactly the cost paper §5.3 highlights.

use crate::error::NetsimError;
use crate::fabric::{Fabric, LinkId, LinkSpec};

/// A fat tree over `p` nodes built from `n_ports`-port switches.
#[derive(Debug, Clone)]
pub struct FatTreeFabric {
    p: usize,
    /// Fan-in per switch (N/2).
    arity: usize,
    /// Switch counts per level, level 0 = leaves.
    level_sizes: Vec<usize>,
    /// Link table; see `ids` helpers for the layout.
    links: Vec<LinkSpec>,
    /// First link id of each level's uplink block.
    level_up_base: Vec<usize>,
}

impl FatTreeFabric {
    /// Builds the fabric.
    ///
    /// # Errors
    /// [`NetsimError::EmptyFabric`] for `p == 0`,
    /// [`NetsimError::FatTreeArity`] for switches with fewer than 4 ports
    /// (2 down, 2 up is the minimum that still forms a tree).
    pub fn new(p: usize, n_ports: usize) -> Result<Self, NetsimError> {
        if p == 0 {
            return Err(NetsimError::EmptyFabric { fabric: "fat-tree" });
        }
        if n_ports < 4 {
            return Err(NetsimError::FatTreeArity { n_ports });
        }
        let arity = n_ports / 2;
        let mut level_sizes = vec![p.div_ceil(arity)];
        while *level_sizes.last().expect("non-empty") > 1 {
            let next = level_sizes.last().unwrap().div_ceil(arity);
            level_sizes.push(next);
        }

        // Link layout: [node up ×p][node down ×p] then per level above the
        // leaves: [switch up][switch down] pairs for every switch that has
        // a parent.
        let mut links = Vec::new();
        for _ in 0..p {
            links.push(LinkSpec::DEFAULT); // node up
        }
        for _ in 0..p {
            links.push(LinkSpec::DEFAULT); // node down
        }
        let mut level_up_base = Vec::new();
        for (level, &count) in level_sizes.iter().enumerate() {
            level_up_base.push(links.len());
            if level + 1 == level_sizes.len() {
                break; // root has no parent
            }
            // Fat uplinks: bandwidth proportional to the subtree node count.
            let subtree = arity.pow(level as u32 + 1).min(p);
            let fat = LinkSpec {
                latency_ns: LinkSpec::DEFAULT.latency_ns,
                bandwidth: subtree as f64 * LinkSpec::DEFAULT.bandwidth,
            };
            for _ in 0..count {
                links.push(fat); // up
                links.push(fat); // down
            }
        }
        Ok(FatTreeFabric {
            p,
            arity,
            level_sizes,
            links,
            level_up_base,
        })
    }

    /// Number of switch levels.
    pub fn levels(&self) -> usize {
        self.level_sizes.len()
    }

    fn node_up(&self, node: usize) -> LinkId {
        node
    }
    fn node_down(&self, node: usize) -> LinkId {
        self.p + node
    }
    fn switch_up(&self, level: usize, idx: usize) -> LinkId {
        self.level_up_base[level] + 2 * idx
    }
    fn switch_down(&self, level: usize, idx: usize) -> LinkId {
        self.level_up_base[level] + 2 * idx + 1
    }
}

impl Fabric for FatTreeFabric {
    fn name(&self) -> &str {
        "fat-tree"
    }

    fn nodes(&self) -> usize {
        self.p
    }

    fn link_count(&self) -> usize {
        self.links.len()
    }

    fn link(&self, id: LinkId) -> LinkSpec {
        self.links[id]
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(vec![]);
        }
        // Up-over-down: at most `levels` climbs each way plus the two
        // node fibers.
        let mut path = Vec::with_capacity(2 + 2 * self.levels());
        path.push(self.node_up(src));
        let mut s = src / self.arity;
        let mut d = dst / self.arity;
        let mut level = 0;
        // Ascend until both sides sit in the same switch.
        let mut down_stack = Vec::with_capacity(self.levels());
        while s != d {
            path.push(self.switch_up(level, s));
            down_stack.push(self.switch_down(level, d));
            s /= self.arity;
            d /= self.arity;
            level += 1;
        }
        while let Some(l) = down_stack.pop() {
            path.push(l);
        }
        path.push(self.node_down(dst));
        Some(path)
    }

    fn incident_links(&self, node: usize) -> Vec<LinkId> {
        // A node owns exactly its injection and ejection fibers; the tree
        // has a single deterministic route per pair, so there is no detour
        // to offer when an interior link dies (path_avoiding keeps the
        // single-path default).
        vec![self.node_up(node), self.node_down(node)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::traffic::Flow;

    #[test]
    fn bad_shapes_are_rejected() {
        assert_eq!(
            FatTreeFabric::new(0, 8).unwrap_err(),
            NetsimError::EmptyFabric { fabric: "fat-tree" }
        );
        assert_eq!(
            FatTreeFabric::new(16, 3).unwrap_err(),
            NetsimError::FatTreeArity { n_ports: 3 }
        );
    }

    #[test]
    fn incident_links_are_the_node_fibers() {
        let ft = FatTreeFabric::new(16, 8).unwrap();
        assert_eq!(ft.incident_links(3), vec![3, 19]);
    }

    #[test]
    fn level_structure() {
        // 64 nodes, 8-port switches: 16 leaves, 4, 1 → 3 levels.
        let ft = FatTreeFabric::new(64, 8).unwrap();
        assert_eq!(ft.levels(), 3);
        let small = FatTreeFabric::new(4, 8).unwrap();
        assert_eq!(small.levels(), 1);
    }

    #[test]
    fn same_leaf_path_is_short() {
        let ft = FatTreeFabric::new(64, 8).unwrap();
        // Nodes 0 and 1 share leaf switch 0.
        let p = ft.path(0, 1).unwrap();
        assert_eq!(p.len(), 2, "up, down through one switch");
        assert_eq!(ft.switch_hops(0, 1), Some(1));
    }

    #[test]
    fn distant_path_climbs_to_root() {
        let ft = FatTreeFabric::new(64, 8).unwrap();
        let p = ft.path(0, 63).unwrap();
        // up + 2 switch-ups + 2 switch-downs + down = 6 links, 5 switches.
        assert_eq!(p.len(), 6);
        assert_eq!(ft.switch_hops(0, 63), Some(5));
    }

    #[test]
    fn hops_match_paper_layer_formula() {
        // Worst case crosses 2L−1 switches.
        for (p, ports) in [(64usize, 8usize), (256, 8), (128, 16)] {
            let ft = FatTreeFabric::new(p, ports).unwrap();
            let worst = (0..p).map(|d| ft.switch_hops(0, d).unwrap()).max().unwrap();
            assert_eq!(worst, 2 * ft.levels() - 1, "P={p} N={ports}");
        }
    }

    #[test]
    fn paths_are_symmetric_in_length() {
        let ft = FatTreeFabric::new(32, 8).unwrap();
        for a in 0..32 {
            for b in 0..32 {
                assert_eq!(ft.path(a, b).unwrap().len(), ft.path(b, a).unwrap().len());
            }
        }
    }

    #[test]
    fn simulation_runs_clean() {
        let ft = FatTreeFabric::new(16, 8).unwrap();
        let flows: Vec<Flow> = (0..16)
            .map(|i| Flow {
                src: i,
                dst: (i + 5) % 16,
                bytes: 4096,
                start_ns: 0,
            })
            .collect();
        let stats = Simulation::new(&ft).run(&flows).stats;
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.unrouted, 0);
        assert!(stats.max_latency_ns > 0);
    }
}
