//! # hfast-netsim — discrete-event interconnect simulation
//!
//! The paper argues analytically that HFAST reduces the number of packet
//! switches a worst-case message traverses compared with a deep fat tree
//! (§2.3, §5.3). This crate substantiates the argument with a small
//! discrete-event simulator: messages are replayed over explicit fabric
//! models — fat tree, 3D torus, and an HFAST fabric built from a
//! [`hfast_core::Provisioning`] — with per-link FIFO serialization, and the
//! resulting latency/throughput distributions are compared.
//!
//! Two link models are available. The default ([`CongestionMode::Ideal`])
//! is deliberately simple — virtual cut-through with ideal FIFO links,
//! fixed per-link latency + `bytes / bandwidth` serialization: enough to
//! rank fabrics and expose contention, without modeling virtual channels
//! or flow control. [`CongestionMode::Credit`] (see [`congestion`]) adds
//! credit-based flow control with finite per-link buffers, so saturation
//! backs up into upstream links and congestion *trees* form — the
//! mechanism the scenario generator ([`scenario`]) stresses. DESIGN.md
//! records both substitutions.
//!
//! Runtime faults are first-class: a seeded [`FaultPlan`] schedules link
//! and node failures (and recoveries) at simulated timestamps, the event
//! loop kills flows on dead paths and re-admits them under a
//! [`RetryPolicy`], and HFAST fabrics additionally repair failed circuits
//! mid-run at synchronization points.
//!
//! ```
//! use hfast_netsim::{FatTreeFabric, Simulation, TorusFabric, traffic};
//! use hfast_topology::generators::ring_graph;
//!
//! let graph = ring_graph(16, 1 << 20);
//! let flows = traffic::flows_from_graph(&graph, 0);
//! let ft = FatTreeFabric::new(16, 8).expect("valid shape");
//! let stats = Simulation::new(&ft).run(&flows).stats;
//! assert_eq!(stats.completed, flows.len());
//! ```

#![warn(missing_docs)]

pub mod adapt;
pub mod congestion;
pub mod engine;
pub mod error;
pub mod fabric;
pub mod fattree;
pub mod faultplan;
pub mod hfast;
pub mod obs;
mod queue;
pub mod scenario;
pub mod stats;
pub mod torus;
pub mod traffic;
pub mod warm;

pub use adapt::{AdaptiveReplay, AdaptiveReplayBuilder, WindowReport};
pub use congestion::{CongestionMode, CreditConfig};
pub use engine::{FlowRecord, LoopPerf, PathCache, SimOutput, Simulation};
pub use error::NetsimError;
pub use fabric::{Fabric, LinkId, LinkSpec};
pub use fattree::FatTreeFabric;
pub use faultplan::{
    transit_links, FaultAction, FaultEvent, FaultPlan, FaultPlanBuilder, FaultState, FaultTarget,
    RetryPolicy,
};
pub use hfast::HfastFabric;
pub use obs::EngineObs;
pub use scenario::{Scenario, ScenarioKind, TenantSlowdown};
pub use stats::RunStats;
pub use torus::TorusFabric;
pub use traffic::Flow;
pub use warm::SharedPathCache;
