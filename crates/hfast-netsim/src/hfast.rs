//! HFAST fabric: simulate messages over a provisioned switch configuration.
//!
//! Built from a [`hfast_core::Provisioning`]: node-to-block attachments,
//! intra-cluster chain links, and per-edge circuits become simulator links.
//! Circuit-switch traversals add essentially no latency (§2.1 — propagation
//! only); each packet-switch block traversal costs its processing latency,
//! folded into the latency of the link *entering* the block. Node pairs
//! with no provisioned circuit fall back to the low-bandwidth collective
//! tree network the paper pairs with HFAST (§2.4), modeled as a star at a
//! tenth of the link bandwidth.

use std::collections::{BTreeMap, BTreeSet};

use hfast_core::{AdaptScope, ProvisionConfig, Provisioning, ReprovisionOutcome, Strategy};
use hfast_topology::CommGraph;

use crate::fabric::{Fabric, LinkId, LinkSpec};
use crate::faultplan::FaultState;

/// Circuit propagation latency (no switching decision, §2.1).
const CIRCUIT_NS: u64 = 10;
/// Packet-switch block processing latency (§5.3: "less than 50 ns").
const BLOCK_NS: u64 = 50;
/// Collective-tree bandwidth relative to the main fabric.
const TREE_BW: f64 = 0.1;

/// Which layer of the hybrid fabric a link belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkClass {
    /// Fixed node-to-block fiber runs.
    Fiber,
    /// MEMS-patched chain and edge circuits (reprovisionable).
    Circuit,
    /// The fixed low-bandwidth collective tree.
    Tree,
}

/// An HFAST fabric instantiated from a provisioning.
#[derive(Debug, Clone)]
pub struct HfastFabric {
    prov: Provisioning,
    links: Vec<LinkSpec>,
    /// Explicit per-link layer table. Incremental adaptation appends and
    /// orphans circuit links out of positional order, so classification
    /// cannot rely on id ranges.
    classes: Vec<LinkClass>,
    /// node → (uplink into attach block, downlink out to the node).
    node_links: Vec<(LinkId, LinkId)>,
    /// (cluster, lower chain pos) → (link toward higher pos, toward lower).
    chain_links: BTreeMap<(usize, usize), (LinkId, LinkId)>,
    /// (a, b) with a < b → (link a→b, link b→a).
    edge_links: BTreeMap<(usize, usize), (LinkId, LinkId)>,
    /// node → (tree uplink, tree downlink) on the collective network.
    tree_links: Vec<(LinkId, LinkId)>,
}

/// Link spec for a hop that enters a packet-switch block.
const fn into_block() -> LinkSpec {
    LinkSpec {
        latency_ns: CIRCUIT_NS + BLOCK_NS,
        bandwidth: 1.0,
    }
}

impl HfastFabric {
    /// Builds the fabric from a provisioning.
    pub fn new(prov: Provisioning) -> Self {
        let mut links = Vec::new();
        let mut classes = Vec::new();
        let mut push = |spec: LinkSpec, class: LinkClass| -> LinkId {
            links.push(spec);
            classes.push(class);
            links.len() - 1
        };
        let out_of_block = LinkSpec {
            latency_ns: CIRCUIT_NS,
            bandwidth: 1.0,
        };
        let tree = LinkSpec {
            latency_ns: CIRCUIT_NS + BLOCK_NS,
            bandwidth: TREE_BW,
        };

        let n = prov.n_nodes;
        let node_links: Vec<(LinkId, LinkId)> = (0..n)
            .map(|_| {
                (
                    push(into_block(), LinkClass::Fiber),
                    push(out_of_block, LinkClass::Fiber),
                )
            })
            .collect();
        let mut chain_links = BTreeMap::new();
        for cluster in &prov.clusters {
            for pos in 0..cluster.blocks.len().saturating_sub(1) {
                chain_links.insert(
                    (cluster.id, pos),
                    (
                        push(into_block(), LinkClass::Circuit),
                        push(into_block(), LinkClass::Circuit),
                    ),
                );
            }
        }
        let mut edge_links = BTreeMap::new();
        for &(a, b) in prov.edge_circuits.keys() {
            edge_links.insert(
                (a, b),
                (
                    push(into_block(), LinkClass::Circuit),
                    push(into_block(), LinkClass::Circuit),
                ),
            );
        }
        let tree_links: Vec<(LinkId, LinkId)> = (0..n)
            .map(|_| (push(tree, LinkClass::Tree), push(tree, LinkClass::Tree)))
            .collect();

        HfastFabric {
            prov,
            links,
            classes,
            node_links,
            chain_links,
            edge_links,
            tree_links,
        }
    }

    /// Provisions `graph` with the given [`Strategy`] and builds the
    /// fabric from the result — the netsim-side entry point for the
    /// pluggable provisioner API.
    pub fn provisioned(graph: &CommGraph, config: ProvisionConfig, strategy: Strategy) -> Self {
        HfastFabric::new(strategy.provisioner().provision(graph, config))
    }

    /// The underlying provisioning.
    pub fn provisioning(&self) -> &Provisioning {
        &self.prov
    }

    /// Applies a [`ReprovisionOutcome`] to the live fabric, returning the
    /// [`AdaptScope`] the caller must invalidate in any [`PathCache`].
    ///
    /// A full rebuild replaces every link (the caller clears its cache).
    /// An incremental outcome rewires only the chain and edge circuits of
    /// the clusters its touched pairs name: links for untouched pairs keep
    /// their ids, so their cached routes — and any in-flight flows riding
    /// them — stay valid. Torn-down circuits leave orphaned link slots
    /// (never on any route) rather than renumbering the survivors; the
    /// MEMS crossbar analog is a dark fiber left patched to nothing.
    ///
    /// [`PathCache`]: crate::engine::PathCache
    pub fn adapt(&mut self, outcome: &ReprovisionOutcome) -> AdaptScope {
        if outcome.full_rebuild {
            *self = HfastFabric::new(outcome.provisioning.clone());
            return AdaptScope::Full;
        }
        let new = &outcome.provisioning;
        // Clusters whose chains may have been resized: every endpoint of a
        // touched pair, in both the old and the new clustering.
        let mut clusters = BTreeSet::new();
        for &(a, b) in &outcome.touched_pairs {
            for prov in [&self.prov, new] {
                for v in [a, b] {
                    if let Some(&c) = prov.node_cluster.get(v) {
                        if c != usize::MAX {
                            clusters.insert(c);
                        }
                    }
                }
            }
        }
        for &c in &clusters {
            let want = new
                .clusters
                .get(c)
                .map_or(0, |cl| cl.blocks.len().saturating_sub(1));
            let have = self
                .chain_links
                .range((c, 0)..(c + 1, 0))
                .map(|(&(_, pos), _)| pos + 1)
                .max()
                .unwrap_or(0);
            for pos in want..have {
                self.chain_links.remove(&(c, pos)); // orphan the link slots
            }
            for pos in have..want {
                let fwd = self.push_circuit_link();
                let back = self.push_circuit_link();
                self.chain_links.insert((c, pos), (fwd, back));
            }
        }
        for &(a, b) in &outcome.touched_pairs {
            let provisioned = new.edge_circuits.contains_key(&(a, b));
            let mapped = self.edge_links.contains_key(&(a, b));
            if provisioned && !mapped {
                let fwd = self.push_circuit_link();
                let back = self.push_circuit_link();
                self.edge_links.insert((a, b), (fwd, back));
            } else if !provisioned && mapped {
                self.edge_links.remove(&(a, b)); // orphan the link slots
            }
        }
        self.prov = new.clone();
        AdaptScope::Pairs(outcome.touched_pairs.clone())
    }

    /// Appends one fresh circuit link and returns its id.
    fn push_circuit_link(&mut self) -> LinkId {
        self.links.push(into_block());
        self.classes.push(LinkClass::Circuit);
        self.links.len() - 1
    }

    /// Which layer of the hybrid fabric a link belongs to: `"fiber"` for
    /// the fixed node-to-block runs, `"circuit"` for MEMS-patched chain
    /// and edge circuits, `"tree"` for the low-bandwidth collective
    /// network. The hotspot analyzer cross-references measured congestion
    /// against these classes.
    ///
    /// # Panics
    /// If `link` is out of range.
    pub fn link_class(&self, link: LinkId) -> &'static str {
        assert!(link < self.links.len(), "link {link} out of range");
        match self.classes[link] {
            LinkClass::Fiber => "fiber",
            LinkClass::Circuit => "circuit",
            LinkClass::Tree => "tree",
        }
    }

    /// Chain links from position `from` to `to` within a cluster.
    fn chain_walk(&self, cluster: usize, from: usize, to: usize, path: &mut Vec<LinkId>) {
        if from <= to {
            for pos in from..to {
                path.push(self.chain_links[&(cluster, pos)].0);
            }
        } else {
            for pos in (to..from).rev() {
                path.push(self.chain_links[&(cluster, pos)].1);
            }
        }
    }
}

impl Fabric for HfastFabric {
    fn name(&self) -> &str {
        "hfast"
    }

    fn nodes(&self) -> usize {
        self.prov.n_nodes
    }

    fn link_count(&self) -> usize {
        self.links.len()
    }

    fn link(&self, id: LinkId) -> LinkSpec {
        self.links[id]
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(vec![]);
        }
        let (lo, hi) = if src < dst { (src, dst) } else { (dst, src) };
        let ca = self.prov.node_cluster.get(src).copied()?;
        let cb = self.prov.node_cluster.get(dst).copied()?;
        if ca == usize::MAX || cb == usize::MAX {
            return None; // offline node
        }
        // Chain walks are bounded by each cluster's chain length; the rest
        // is the two node fibers plus at most one edge circuit.
        let cap = 4 + self.prov.clusters[ca].blocks.len() + self.prov.clusters[cb].blocks.len();
        let mut path = Vec::with_capacity(cap);
        path.push(self.node_links[src].0);
        if ca == cb {
            // Along the shared chain.
            self.chain_walk(
                ca,
                self.prov.attach[src].1,
                self.prov.attach[dst].1,
                &mut path,
            );
            path.push(self.node_links[dst].1);
            return Some(path);
        }
        if let Some(ec) = self.prov.edge_circuits.get(&(lo, hi)) {
            let (src_pos, dst_pos, edge_link) = if src == lo {
                (ec.a_chain_pos, ec.b_chain_pos, self.edge_links[&(lo, hi)].0)
            } else {
                (ec.b_chain_pos, ec.a_chain_pos, self.edge_links[&(lo, hi)].1)
            };
            self.chain_walk(ca, self.prov.attach[src].1, src_pos, &mut path);
            path.push(edge_link);
            self.chain_walk(cb, dst_pos, self.prov.attach[dst].1, &mut path);
            path.push(self.node_links[dst].1);
            return Some(path);
        }
        // No dedicated circuit: ride the collective tree.
        Some(vec![self.tree_links[src].0, self.tree_links[dst].1])
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        if src == dst {
            return Some(0);
        }
        let r = self.prov.route(src, dst)?;
        Some(r.switch_hops)
    }

    fn incident_links(&self, node: usize) -> Vec<LinkId> {
        // The node's fibers into its attach block and onto the collective
        // tree; interior chain/edge circuits belong to the switch fabric.
        let (up, down) = self.node_links[node];
        let (tup, tdown) = self.tree_links[node];
        vec![up, down, tup, tdown]
    }

    fn path_avoiding(&self, src: usize, dst: usize, state: &FaultState) -> Option<Vec<LinkId>> {
        if !state.node_up(src) || !state.node_up(dst) {
            return None;
        }
        if src == dst {
            return Some(vec![]);
        }
        // Circuits are point-to-point: the provisioned route either works
        // or the pair drops to the collective tree (§2.4) until the MEMS
        // crossbar repatches the circuit at a synchronization point.
        if let Some(p) = self.path(src, dst) {
            if !state.blocks(&p) {
                return Some(p);
            }
        }
        let fallback = vec![self.tree_links[src].0, self.tree_links[dst].1];
        (!state.blocks(&fallback)).then_some(fallback)
    }

    fn reprovisionable(&self, link: LinkId) -> bool {
        // Chain and edge circuits are MEMS crossbar patches with spare
        // ports to move to; node fibers and the fixed collective tree are
        // physical runs.
        self.classes.get(link) == Some(&LinkClass::Circuit)
    }

    fn supports_reprovision(&self) -> bool {
        !self.tree_links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::fattree::FatTreeFabric;
    use crate::traffic::{self};
    use hfast_core::{GraphDelta, PaperLinear, ProvisionConfig, Provisioner};
    use hfast_topology::generators::{mesh3d_graph, ring_graph};

    fn hfast_for(graph: &hfast_topology::CommGraph) -> HfastFabric {
        HfastFabric::provisioned(graph, ProvisionConfig::default(), Strategy::PaperLinear)
    }

    #[test]
    fn provisioned_pair_path() {
        let g = ring_graph(8, 1 << 20);
        let f = hfast_for(&g);
        // node → own block → (edge circuit into) peer's block → node:
        // 3 links, 2 switch-block hops.
        let p = f.path(0, 1).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(f.switch_hops(0, 1), Some(2));
    }

    #[test]
    fn unprovisioned_pair_rides_the_tree() {
        let g = ring_graph(8, 1 << 20);
        let f = hfast_for(&g);
        // 0 and 4 never talk in a ring: tree fallback, 2 slow links.
        let p = f.path(0, 4).unwrap();
        assert_eq!(p.len(), 2);
        assert!(f.link(p[0]).bandwidth < 0.5);
    }

    #[test]
    fn scattered_replay_beats_fat_tree_latency() {
        // The paper's headline: a provisioned topology traverses a constant
        // number of switch blocks while fat-tree traffic that does not stay
        // within one leaf climbs the layers. A strided (LBMHD-like) pattern
        // never stays leaf-local, so every fat-tree path is deep.
        let n = 64;
        let mut g = hfast_topology::CommGraph::new(n);
        for v in 0..n {
            g.add_message(v, (v + 17) % n, 4096);
        }
        let flows = traffic::flows_from_graph(&g, 2048);
        let hf = hfast_for(&g);
        let ft = FatTreeFabric::new(n, 8).unwrap();
        let hf_stats = Simulation::new(&hf).run(&flows).stats;
        let ft_stats = Simulation::new(&ft).run(&flows).stats;
        assert_eq!(hf_stats.completed, flows.len());
        assert_eq!(ft_stats.completed, flows.len());
        assert!(
            hf_stats.p50_latency_ns < ft_stats.p50_latency_ns,
            "hfast p50 {} vs fat-tree p50 {}",
            hf_stats.p50_latency_ns,
            ft_stats.p50_latency_ns
        );
        assert!(hf_stats.max_latency_ns <= ft_stats.max_latency_ns);
        // Constant 3-link paths for HFAST regardless of scale.
        assert_eq!(hf_stats.avg_hops, 3.0);
    }

    #[test]
    fn leaf_local_traffic_favors_the_fat_tree() {
        // Converse sanity check: a ring embeds into fat-tree leaves, where
        // a single 50 ns switch beats HFAST's two-block path.
        let g = ring_graph(64, 4096);
        let flows = traffic::flows_from_graph(&g, 2048);
        let hf = hfast_for(&g);
        let ft = FatTreeFabric::new(64, 8).unwrap();
        let hf_stats = Simulation::new(&hf).run(&flows).stats;
        let ft_stats = Simulation::new(&ft).run(&flows).stats;
        assert!(hf_stats.p50_latency_ns >= ft_stats.p50_latency_ns);
    }

    #[test]
    fn mesh_app_replay_completes() {
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let f = hfast_for(&g);
        let flows = traffic::flows_from_graph(&g, 2048);
        let stats = Simulation::new(&f).run(&flows).stats;
        assert_eq!(stats.unrouted, 0);
        assert_eq!(stats.completed, flows.len());
    }

    #[test]
    fn chain_nodes_pay_extra_hops() {
        // A star whose hub needs 3 chained blocks: far edges land on
        // distant chain positions.
        let mut g = hfast_topology::CommGraph::new(41);
        for i in 1..41 {
            g.add_message(0, i, 1 << 20);
        }
        let f = hfast_for(&g);
        let worst = (1..41).map(|i| f.path(0, i).unwrap().len()).max().unwrap();
        assert!(worst > 4, "chain traversal adds links: {worst}");
        // All leaves still reachable.
        for i in 1..41 {
            assert!(f.path(i, 0).is_some());
        }
    }

    #[test]
    fn failed_circuit_falls_back_to_tree() {
        let g = ring_graph(8, 1 << 20);
        let f = hfast_for(&g);
        let primary = f.path(0, 1).unwrap();
        let mut state = FaultState::healthy(&f);
        // Kill the middle link (the provisioned circuit, not a node fiber).
        let circuit = primary[1];
        assert!(f.reprovisionable(circuit), "edge circuits are MEMS patches");
        assert!(
            !f.reprovisionable(primary[0]),
            "node fibers are physical runs"
        );
        state.apply(
            &f,
            crate::faultplan::FaultEvent {
                time_ns: 0,
                action: crate::faultplan::FaultAction::Fail,
                target: crate::faultplan::FaultTarget::Link(circuit),
            },
        );
        let fallback = f.path_avoiding(0, 1, &state).expect("tree fallback");
        assert_eq!(fallback.len(), 2);
        assert!(f.link(fallback[0]).bandwidth < 0.5, "tree is slow");
        assert!(!f.reprovisionable(fallback[0]), "tree is fixed");
        assert!(f.supports_reprovision());
    }

    #[test]
    fn link_classes_partition_the_fabric() {
        let g = ring_graph(8, 1 << 20);
        let f = hfast_for(&g);
        let primary = f.path(0, 1).unwrap();
        assert_eq!(f.link_class(primary[0]), "fiber");
        assert_eq!(f.link_class(primary[1]), "circuit");
        assert_eq!(f.link_class(*primary.last().unwrap()), "fiber");
        let tree = f.path(0, 4).unwrap();
        assert_eq!(f.link_class(tree[0]), "tree");
        // Classes agree with reprovisionability: only circuits repatch.
        for l in 0..f.link_count() {
            assert_eq!(f.link_class(l) == "circuit", f.reprovisionable(l));
        }
    }

    #[test]
    fn self_path_is_empty() {
        let g = ring_graph(4, 1 << 20);
        let f = hfast_for(&g);
        assert_eq!(f.path(2, 2).unwrap().len(), 0);
    }

    /// Paths after an incremental [`HfastFabric::adapt`] must agree hop
    /// class by hop class with a fabric built fresh from the adapted
    /// provisioning, and links of untouched pairs must keep their ids.
    #[test]
    fn incremental_adapt_matches_fresh_fabric() {
        let n = 16;
        let before = ring_graph(n, 1 << 20);
        let mut after = before.clone();
        after.add_message(3, 11, 1 << 20); // new chord: circuit appears
        let config = ProvisionConfig::default();

        let mut f = hfast_for(&before);
        let stable = f.path(5, 6).unwrap(); // pair far from the chord
        let prev = f.provisioning().clone();
        let delta = GraphDelta::diff(&before, &after);
        let out = PaperLinear.reprovision(prev, &after, &delta);
        assert!(!out.full_rebuild, "one chord stays incremental");
        let scope = f.adapt(&out);
        match scope {
            AdaptScope::Pairs(ref pairs) => assert!(pairs.contains(&(3, 11))),
            AdaptScope::Full => panic!("incremental outcome must not clear everything"),
        }

        let fresh = HfastFabric::provisioned(&after, config, Strategy::PaperLinear);
        for src in 0..n {
            for dst in 0..n {
                let a = f.path(src, dst).unwrap();
                let b = fresh.path(src, dst).unwrap();
                assert_eq!(a.len(), b.len(), "path shape for ({src},{dst})");
                for (la, lb) in a.iter().zip(&b) {
                    assert_eq!(f.link_class(*la), fresh.link_class(*lb));
                    assert_eq!(f.link(*la), fresh.link(*lb));
                }
            }
        }
        // The untouched pair kept its exact links: cached routes stay valid.
        assert_eq!(f.path(5, 6).unwrap(), stable);
        // The new chord rides a dedicated circuit, not the tree.
        let chord = f.path(3, 11).unwrap();
        assert_eq!(chord.len(), 3);
        assert_eq!(f.link_class(chord[1]), "circuit");
    }

    /// Tearing a circuit back down orphans its links but leaves every
    /// other route untouched and the class table consistent.
    #[test]
    fn incremental_adapt_handles_removal() {
        let n = 16;
        let mut with_chord = ring_graph(n, 1 << 20);
        with_chord.add_message(3, 11, 1 << 20);
        let without = ring_graph(n, 1 << 20);

        let mut f = hfast_for(&with_chord);
        let links_before = f.link_count();
        let prev = f.provisioning().clone();
        let delta = GraphDelta::diff(&with_chord, &without);
        let out = PaperLinear.reprovision(prev, &without, &delta);
        assert!(!out.full_rebuild);
        f.adapt(&out);

        // The chord dropped to the tree; orphaned slots stay allocated.
        let p = f.path(3, 11).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(f.link_class(p[0]), "tree");
        assert!(f.link_count() >= links_before);
        // Every surviving route still resolves and classifies sanely.
        for src in 0..n {
            let p = f.path(src, (src + 1) % n).unwrap();
            assert_eq!(p.len(), 3);
            assert_eq!(f.link_class(p[1]), "circuit");
        }
    }

    #[test]
    fn alltoall_on_hfast_congests_the_tree() {
        // PARATEC-style all-to-all on a ring-provisioned HFAST: most pairs
        // ride the slow tree — the case-iv mismatch the paper warns about.
        let g = ring_graph(16, 1 << 20);
        let f = hfast_for(&g);
        let flows = traffic::alltoall(16, 32 << 10);
        let stats = Simulation::new(&f).run(&flows).stats;
        assert_eq!(stats.completed, flows.len());
        let ft = FatTreeFabric::new(16, 8).unwrap();
        let ft_stats = Simulation::new(&ft).run(&flows).stats;
        assert!(
            stats.max_latency_ns > ft_stats.max_latency_ns,
            "mis-provisioned HFAST must lose on all-to-all: {} vs {}",
            stats.max_latency_ns,
            ft_stats.max_latency_ns
        );
    }
}
