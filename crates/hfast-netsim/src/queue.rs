//! The engine's scheduler: a calendar queue over flat bucket arenas.
//!
//! Both event loops (static and fault-aware) used to drive a
//! `BinaryHeap<Reverse<Event>>`: every push and pop paid `O(log n)`
//! comparisons on a ~20k-entry heap, each one sifting a 32-byte struct
//! through the backing array. A discrete-event simulation has much more
//! structure than an arbitrary priority-queue workload — timestamps
//! advance monotonically and new events land a bounded lookahead past the
//! cursor — which is exactly what a calendar queue exploits: O(1)
//! amortized push and pop.
//!
//! Layout: an event is one flat 24-byte record — timestamp, packed
//! tie-break word, packed payload — stored *inline* in the bucket arenas
//! (`Vec<Entry>` per bucket plus the sorted active run). An earlier cut of
//! this rewrite kept events as `u32` indices into parallel SoA columns,
//! but the per-window sort then gathers its keys through the indirection
//! (dependent cache misses on every comparison) and measured markedly
//! slower than sorting the records in place, so the indices were dropped.
//! Bucket capacity is retained across the cursor's revolutions, so a
//! steady-state run allocates nothing per event.
//!
//! Ordering contract (property-tested against `BinaryHeap` in this
//! module): entries dequeue by ascending `(time_ns, class, seq)` — the
//! exact total order the event loops' determinism argument relies on. The
//! tie-break packs `class << 56 | seq << 3 | kind` into one `u64`: one
//! integer compare orders by class then sequence number, and — because
//! `seq` is unique per queue — the low `kind` bits ride along without ever
//! deciding a comparison.
//!
//! Bucket sizing: the queue is seeded with a hint (expected live events
//! and the seed-time span); it picks a power-of-two bucket count close to
//! the live-event estimate and a power-of-two bucket width such that one
//! revolution of the ring covers the span. Events beyond one revolution
//! wrap and are re-scanned once per revolution; a global-min jump after an
//! empty revolution keeps sparse far-future schedules (retry backoffs,
//! sync points) from spinning through empty windows.

/// Maximum sequence value: `class` takes the top 8 bits of the packed
/// tie-break word and `kind` the bottom 3.
const SEQ_BITS: u32 = 53;

/// One scheduled event: 24 bytes, stored inline in the bucket arenas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    t: u64,
    /// `class << 56 | seq << 3 | kind`.
    lo: u64,
    /// `a << 32 | b`.
    pay: u64,
}

/// One dequeued event, unpacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Popped {
    pub time_ns: u64,
    pub class: u8,
    pub seq: u64,
    pub kind: u8,
    pub a: u32,
    pub b: u32,
}

/// Calendar queue over flat bucket arenas. See the module docs.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    buckets: Vec<Vec<Entry>>,
    /// One bit per bucket, set iff the bucket is non-empty. A sparse live
    /// set (in-flight flows ≪ bucket count × revolutions of spread) makes
    /// the cursor cross mostly-empty windows; the bitmask turns that walk
    /// into a trailing-zeros scan instead of a pointer chase through empty
    /// `Vec` headers.
    occupied: Vec<u64>,
    /// `buckets.len() - 1` (bucket count is a power of two).
    mask: usize,
    /// Bucket width is `1 << shift` nanoseconds.
    shift: u32,
    /// Bucket the cursor is currently draining.
    cursor: usize,
    /// Exclusive end of the cursor's window: every entry still in a bucket
    /// has `time >= window_end`; everything earlier has been moved to
    /// `active`.
    window_end: u64,
    /// Entries due in the current window, sorted *descending* by
    /// `(t, lo)` so the minimum pops from the back.
    active: Vec<Entry>,

    len: usize,
    peak: usize,
}

impl EventQueue {
    /// An empty queue with default sizing (64 buckets of 64 ns).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self::with_hint(0, 0)
    }

    /// An empty queue sized for roughly `live` concurrent events spread
    /// over a seed window of `span_ns`.
    pub(crate) fn with_hint(live: usize, span_ns: u64) -> Self {
        let nb = live.clamp(64, 65_536).next_power_of_two();
        // Smallest power-of-two width covering the span in one revolution.
        // The floor matters: buckets narrower than the typical scheduling
        // lookahead keep successor events out of the already-sorted active
        // run (a bucket append is far cheaper than a sorted insert).
        let mut shift = 4u32;
        while shift < 40 && (span_ns >> shift) > nb as u64 {
            shift += 1;
        }
        EventQueue {
            buckets: (0..nb).map(|_| Vec::new()).collect(),
            occupied: vec![0; nb.div_ceil(64)],
            mask: nb - 1,
            shift,
            cursor: 0,
            window_end: 1u64 << shift,
            ..EventQueue::default()
        }
    }

    /// Live entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of live entries over the queue's lifetime.
    #[inline]
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    /// Schedules an event. `seq` must be unique per queue and below 2^53;
    /// the loops guarantee this with one monotone counter.
    #[inline]
    pub(crate) fn push(&mut self, time_ns: u64, class: u8, seq: u64, kind: u8, a: u32, b: u32) {
        debug_assert!(seq < (1 << SEQ_BITS), "seq fits beside class and kind");
        debug_assert!(kind < 8, "kind fits in the packed low bits");
        let e = Entry {
            t: time_ns,
            lo: (u64::from(class) << 56) | (seq << 3) | u64::from(kind),
            pay: (u64::from(a) << 32) | u64::from(b),
        };
        self.len += 1;
        self.peak = self.peak.max(self.len);
        if time_ns < self.window_end {
            // Due now (or in the past — arbitrary streams are allowed):
            // keep the active run sorted so the back stays the minimum.
            let key = (time_ns, e.lo);
            let pos = self.active.partition_point(|p| (p.t, p.lo) > key);
            self.active.insert(pos, e);
        } else {
            let bucket = (time_ns >> self.shift) as usize & self.mask;
            self.buckets[bucket].push(e);
            self.occupied[bucket >> 6] |= 1 << (bucket & 63);
        }
    }

    /// Timestamp of the next event without dequeuing it.
    #[cfg(test)]
    pub(crate) fn peek_time(&mut self) -> Option<u64> {
        if self.active.is_empty() && !self.refill() {
            return None;
        }
        Some(self.active[self.active.len() - 1].t)
    }

    /// Dequeues the minimum-`(time, class, seq)` event.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Popped> {
        if self.active.is_empty() && !self.refill() {
            return None;
        }
        let e = self.active.pop().expect("refill produced an entry");
        self.len -= 1;
        Some(Self::unpack(e))
    }

    #[inline]
    fn unpack(e: Entry) -> Popped {
        Popped {
            time_ns: e.t,
            class: (e.lo >> 56) as u8,
            seq: (e.lo >> 3) & ((1 << SEQ_BITS) - 1),
            kind: (e.lo & 7) as u8,
            a: (e.pay >> 32) as u32,
            b: e.pay as u32,
        }
    }

    /// Advances the cursor until a window yields due entries, filling
    /// `active`. The occupancy bitmask skips runs of empty buckets in one
    /// trailing-zeros step. One full empty revolution triggers a jump
    /// straight to the bucket of the global minimum (sparse far-future
    /// schedules). Returns false when the queue is empty.
    #[cold]
    fn refill(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        // Windows stepped this revolution; crossing `mask` means every
        // occupied bucket held only future-revolution entries.
        let mut stepped = 0usize;
        while stepped <= self.mask {
            let k = self
                .next_occupied(self.cursor)
                .expect("len > 0 means some bucket is non-empty");
            let ahead = k.wrapping_sub(self.cursor) & self.mask;
            if stepped + ahead > self.mask {
                break;
            }
            stepped += ahead;
            self.cursor = k;
            self.window_end += (ahead as u64) << self.shift;
            if self.drain_cursor() {
                return true;
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.window_end += 1u64 << self.shift;
            stepped += 1;
        }
        // A whole revolution was empty: every live entry is at least one
        // revolution ahead. Jump the window to the earliest one.
        let min_t = self
            .buckets
            .iter()
            .flatten()
            .map(|e| e.t)
            .min()
            .expect("len > 0 means some bucket is non-empty");
        self.cursor = (min_t >> self.shift) as usize & self.mask;
        self.window_end = (min_t >> self.shift).wrapping_add(1) << self.shift;
        let drained = self.drain_cursor();
        debug_assert!(drained, "the minimum's bucket drains");
        drained
    }

    /// First non-empty bucket at or circularly after `from`, via the
    /// occupancy bitmask.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let words = self.occupied.len();
        let first = self.occupied[from >> 6] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((from & !63) + first.trailing_zeros() as usize);
        }
        for step in 1..=words {
            let w = ((from >> 6) + step) % words;
            if self.occupied[w] != 0 {
                return Some((w << 6) + self.occupied[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Moves the cursor bucket's due entries (time < window_end) into the
    /// sorted active run, in place: entries a revolution or more ahead are
    /// compacted to the bucket's front and keep their allocation.
    fn drain_cursor(&mut self) -> bool {
        let bucket = &mut self.buckets[self.cursor];
        if bucket.is_empty() {
            return false;
        }
        debug_assert!(self.active.is_empty());
        let window_end = self.window_end;
        let mut keep = 0;
        for i in 0..bucket.len() {
            let e = bucket[i];
            if e.t < window_end {
                self.active.push(e);
            } else {
                bucket[keep] = e;
                keep += 1;
            }
        }
        bucket.truncate(keep);
        if keep == 0 {
            self.occupied[self.cursor >> 6] &= !(1 << (self.cursor & 63));
        }
        if self.active.is_empty() {
            return false;
        }
        self.active
            .sort_unstable_by_key(|e| std::cmp::Reverse((e.t, e.lo)));
        true
    }
}

/// The queue plus the run's monotone sequence counter: the **single**
/// audited scheduling site. Every event both loops enqueue — admissions,
/// hop arrivals, fault applications, sync points, repatch completions,
/// retries — goes through [`schedule`], which is the only caller of
/// [`EventQueue::push`] in the engine; the old code had 8+ hand-rolled
/// `heap.push(Reverse(...))` sites, each re-deriving the tie-break by
/// hand.
///
/// [`schedule`]: Scheduler::schedule
#[derive(Debug)]
pub(crate) struct Scheduler {
    pub(crate) q: EventQueue,
    seq: u64,
}

impl Scheduler {
    /// A scheduler sized like [`EventQueue::with_hint`].
    pub(crate) fn with_hint(live: usize, span_ns: u64) -> Self {
        Scheduler {
            q: EventQueue::with_hint(live, span_ns),
            seq: 0,
        }
    }

    /// Enqueues an event at `time_ns`, assigning the next sequence number.
    /// Events dequeue by ascending `(time_ns, class, seq)`: scheduling
    /// order breaks timestamp ties, exactly like the old heap's
    /// monotonically assigned `Event::seq`.
    #[inline]
    pub(crate) fn schedule(&mut self, time_ns: u64, class: u8, kind: u8, a: u32, b: u32) {
        let seq = self.seq;
        self.seq += 1;
        self.q.push(time_ns, class, seq, kind, a, b);
    }

    /// Dequeues the next event.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Popped> {
        self.q.pop()
    }
}

/// Entry of the static loop's calendar queue: 16 bytes — timestamp,
/// flow, route-arena index. No tie-break word: see [`FlowQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlowEntry {
    t: u64,
    flow: u32,
    idx: u32,
}

/// The static (fault-free) loop's calendar queue. Identical ring design
/// to [`EventQueue`], with one structural specialization: every event the
/// static loop schedules has the same class and kind, so the
/// `(time, class, seq)` total order degenerates to *(time, insertion
/// order)* — which a **stable** queue implements without materializing
/// sequence numbers at all. Entries shrink from 24 to 16 bytes, every
/// comparison is one `u64`, and the per-window sort is a stable
/// sort-by-timestamp whose equal keys keep push order (the sequential
/// loop pushes successors in pop order; the parallel executor pushes them
/// in batch order, which is the same order — that is exactly the old
/// `seq` tie-break).
///
/// `active` is sorted *ascending* and consumed via a forward cursor
/// (`active_pos`), because stability is directional: among equal
/// timestamps the earliest push pops first, which a descending run popped
/// from the back cannot represent without reversing each equal-key group.
#[derive(Debug, Default)]
pub(crate) struct FlowQueue {
    buckets: Vec<Vec<FlowEntry>>,
    /// One bit per non-empty bucket (see [`EventQueue::occupied`]).
    occupied: Vec<u64>,
    mask: usize,
    shift: u32,
    cursor: usize,
    window_end: u64,
    /// Entries due in the current window, sorted ascending by `t` with
    /// push-order ties; `active_pos..` is the live tail.
    active: Vec<FlowEntry>,
    active_pos: usize,

    len: usize,
    peak: usize,
}

impl FlowQueue {
    /// An empty queue sized like [`EventQueue::with_hint`].
    pub(crate) fn with_hint(live: usize, span_ns: u64) -> Self {
        let nb = live.clamp(64, 65_536).next_power_of_two();
        let mut shift = 4u32;
        while shift < 40 && (span_ns >> shift) > nb as u64 {
            shift += 1;
        }
        FlowQueue {
            buckets: (0..nb).map(|_| Vec::new()).collect(),
            occupied: vec![0; nb.div_ceil(64)],
            mask: nb - 1,
            shift,
            cursor: 0,
            window_end: 1u64 << shift,
            ..FlowQueue::default()
        }
    }

    /// Live entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// High-water mark of live entries over the queue's lifetime.
    #[inline]
    pub(crate) fn peak(&self) -> usize {
        self.peak
    }

    /// Schedules `(flow, idx)` at `time_ns`. Push order breaks timestamp
    /// ties.
    #[inline]
    pub(crate) fn push(&mut self, time_ns: u64, flow: u32, idx: u32) {
        let e = FlowEntry {
            t: time_ns,
            flow,
            idx,
        };
        self.len += 1;
        self.peak = self.peak.max(self.len);
        if time_ns < self.window_end {
            // The newest push sorts after every equal timestamp already
            // due: `<=` keeps the insert stable.
            let tail = &self.active[self.active_pos..];
            let pos = self.active_pos + tail.partition_point(|p| p.t <= time_ns);
            self.active.insert(pos, e);
        } else {
            let bucket = (time_ns >> self.shift) as usize & self.mask;
            self.buckets[bucket].push(e);
            self.occupied[bucket >> 6] |= 1 << (bucket & 63);
        }
    }

    /// Timestamp of the next event without dequeuing it.
    #[inline]
    pub(crate) fn peek_time(&mut self) -> Option<u64> {
        if self.active_pos == self.active.len() && !self.refill() {
            return None;
        }
        Some(self.active[self.active_pos].t)
    }

    /// Dequeues the earliest `(time, flow, idx)`.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<(u64, u32, u32)> {
        if self.active_pos == self.active.len() && !self.refill() {
            return None;
        }
        let e = self.active[self.active_pos];
        self.active_pos += 1;
        self.len -= 1;
        Some((e.t, e.flow, e.idx))
    }

    /// Dequeues the earliest event only if its timestamp is strictly
    /// below `limit`. One refill check and one comparison, where a
    /// `peek_time`-then-`pop` pair pays both twice — this is the merged
    /// seed-stream pop in the engine's lean loop (`seed.start <= top` ⇔
    /// pop the queue only when `top < seed.start`).
    #[inline]
    pub(crate) fn pop_before(&mut self, limit: u64) -> Option<(u64, u32, u32)> {
        if self.active_pos == self.active.len() && !self.refill() {
            return None;
        }
        let e = self.active[self.active_pos];
        if e.t >= limit {
            return None;
        }
        self.active_pos += 1;
        self.len -= 1;
        Some((e.t, e.flow, e.idx))
    }

    /// See [`EventQueue::refill`]; same window walk, stable drains.
    #[cold]
    fn refill(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        let mut stepped = 0usize;
        while stepped <= self.mask {
            let k = self
                .next_occupied(self.cursor)
                .expect("len > 0 means some bucket is non-empty");
            let ahead = k.wrapping_sub(self.cursor) & self.mask;
            if stepped + ahead > self.mask {
                break;
            }
            stepped += ahead;
            self.cursor = k;
            self.window_end += (ahead as u64) << self.shift;
            if self.drain_cursor() {
                return true;
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.window_end += 1u64 << self.shift;
            stepped += 1;
        }
        let min_t = self
            .buckets
            .iter()
            .flatten()
            .map(|e| e.t)
            .min()
            .expect("len > 0 means some bucket is non-empty");
        self.cursor = (min_t >> self.shift) as usize & self.mask;
        self.window_end = (min_t >> self.shift).wrapping_add(1) << self.shift;
        let drained = self.drain_cursor();
        debug_assert!(drained, "the minimum's bucket drains");
        drained
    }

    /// First non-empty bucket at or circularly after `from`.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let words = self.occupied.len();
        let first = self.occupied[from >> 6] & (!0u64 << (from & 63));
        if first != 0 {
            return Some((from & !63) + first.trailing_zeros() as usize);
        }
        for step in 1..=words {
            let w = ((from >> 6) + step) % words;
            if self.occupied[w] != 0 {
                return Some((w << 6) + self.occupied[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Drains the cursor bucket's due entries into `active`, stably
    /// sorted ascending by timestamp (compaction and the stable sort both
    /// preserve push order within equal keys).
    fn drain_cursor(&mut self) -> bool {
        let bucket = &mut self.buckets[self.cursor];
        if bucket.is_empty() {
            return false;
        }
        debug_assert!(self.active_pos == self.active.len());
        self.active.clear();
        self.active_pos = 0;
        let window_end = self.window_end;
        let mut keep = 0;
        for i in 0..bucket.len() {
            let e = bucket[i];
            if e.t < window_end {
                self.active.push(e);
            } else {
                bucket[keep] = e;
                keep += 1;
            }
        }
        bucket.truncate(keep);
        if keep == 0 {
            self.occupied[self.cursor >> 6] &= !(1 << (self.cursor & 63));
        }
        if self.active.is_empty() {
            return false;
        }
        self.active.sort_by_key(|e| e.t);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_par::forall;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn dequeues_in_time_class_seq_order() {
        let mut q = EventQueue::with_hint(8, 1_000);
        // Same timestamp, distinct classes and seqs, pushed shuffled.
        q.push(500, 3, 10, 0, 1, 0);
        q.push(500, 0, 11, 1, 2, 0);
        q.push(100, 3, 12, 0, 3, 0);
        q.push(500, 3, 9, 4, 4, 0);
        q.push(2_000, 1, 1, 2, 5, 0);
        let order: Vec<(u64, u8, u64)> = std::iter::from_fn(|| q.pop())
            .map(|p| (p.time_ns, p.class, p.seq))
            .collect();
        assert_eq!(
            order,
            vec![
                (100, 3, 12),
                (500, 0, 11),
                (500, 3, 9),
                (500, 3, 10),
                (2_000, 1, 1),
            ]
        );
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak(), 5);
    }

    #[test]
    fn payload_round_trips() {
        let mut q = EventQueue::new();
        q.push(42, 2, 7, 4, 0xDEAD_BEEF, 0xCAFE_F00D);
        let p = q.pop().unwrap();
        assert_eq!(
            p,
            Popped {
                time_ns: 42,
                class: 2,
                seq: 7,
                kind: 4,
                a: 0xDEAD_BEEF,
                b: 0xCAFE_F00D,
            }
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        let mut seq = 0;
        for round in 0..10u64 {
            for i in 0..100 {
                q.push(round * 1000 + i, 3, seq, 0, 0, 0);
                seq += 1;
            }
            assert_eq!(q.len(), 100);
            for _ in 0..100 {
                q.pop().unwrap();
            }
            assert_eq!(q.len(), 0);
        }
        assert_eq!(q.peak(), 100);
    }

    #[test]
    fn sparse_far_future_events_are_found_by_the_jump() {
        // Entries many revolutions apart: the empty-revolution jump must
        // land on each without scanning the gap window by window.
        let mut q = EventQueue::with_hint(4, 100);
        q.push(10, 3, 0, 0, 0, 0);
        q.push(1_000_000_000, 3, 1, 0, 0, 0);
        q.push(50_000_000_000, 3, 2, 0, 0, 0);
        assert_eq!(q.pop().unwrap().time_ns, 10);
        assert_eq!(q.pop().unwrap().time_ns, 1_000_000_000);
        assert_eq!(q.pop().unwrap().time_ns, 50_000_000_000);
        assert!(q.pop().is_none());
    }

    #[test]
    fn matches_binary_heap_on_random_streams() {
        forall("queue_matches_binary_heap", 64, |rng| {
            let hint_live = rng.range(0, 64);
            let hint_span = rng.range_u64(0, 10_000);
            let mut q = EventQueue::with_hint(hint_live, hint_span);
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut got = Vec::new();
            let mut want = Vec::new();
            for _ in 0..rng.range(1, 400) {
                if rng.bool(0.5) || heap.is_empty() {
                    // Bursts at identical timestamps + far-future strays +
                    // pushes into the past relative to the cursor.
                    let t = match rng.range(0, 4) {
                        0 => rng.range_u64(0, 50),
                        1 => rng.range_u64(0, 5_000),
                        2 => rng.range_u64(0, 1 << 30),
                        _ => 777,
                    };
                    let class = rng.range(0, 4) as u8;
                    let kind = rng.range(0, 5) as u8;
                    q.push(t, class, seq, kind, 0, 0);
                    heap.push(Reverse((t, (u64::from(class) << 56) | seq)));
                    seq += 1;
                } else {
                    let p = q.pop().unwrap();
                    let Reverse(k) = heap.pop().unwrap();
                    got.push((p.time_ns, (u64::from(p.class) << 56) | p.seq));
                    want.push(k);
                }
            }
            while let Some(p) = q.pop() {
                got.push((p.time_ns, (u64::from(p.class) << 56) | p.seq));
            }
            while let Some(Reverse(k)) = heap.pop() {
                want.push(k);
            }
            assert_eq!(got, want, "dequeue order diverged from the heap");
        });
    }

    #[test]
    fn peek_matches_pop() {
        forall("peek_matches_pop", 16, |rng| {
            let mut q = EventQueue::with_hint(16, 1000);
            for seq in 0..rng.range_u64(1, 200) {
                q.push(rng.range_u64(0, 5_000), 3, seq, 0, 0, 0);
            }
            while let Some(t) = q.peek_time() {
                let p = q.pop().unwrap();
                assert_eq!(p.time_ns, t);
            }
            assert!(q.pop().is_none());
        });
    }

    #[test]
    fn flow_queue_is_stable_and_matches_a_seq_tagged_heap() {
        // The stable queue must replicate `(time, seq)` order with the
        // seq implied by push order — the reference tags each push with an
        // explicit monotone seq and pops through a heap.
        forall("flow_queue_stable", 64, |rng| {
            let hint_live = rng.range(0, 64);
            let hint_span = rng.range_u64(0, 10_000);
            let mut q = FlowQueue::with_hint(hint_live, hint_span);
            let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
            let mut seq = 0u32;
            let mut got = Vec::new();
            let mut want = Vec::new();
            for _ in 0..rng.range(1, 400) {
                if rng.bool(0.5) || heap.is_empty() {
                    // Heavy timestamp collisions (the stability stress),
                    // far strays, and pushes behind the cursor.
                    let t = match rng.range(0, 4) {
                        0 => rng.range_u64(0, 20),
                        1 => rng.range_u64(0, 5_000),
                        2 => rng.range_u64(0, 1 << 30),
                        _ => 777,
                    };
                    q.push(t, seq, !seq);
                    heap.push(Reverse((t, seq)));
                    seq += 1;
                } else {
                    let (t, flow, idx) = q.pop().unwrap();
                    assert_eq!(idx, !flow, "payload rides with its entry");
                    let Reverse(k) = heap.pop().unwrap();
                    got.push((t, flow));
                    want.push(k);
                }
            }
            while let Some((t, flow, _)) = q.pop() {
                got.push((t, flow));
            }
            while let Some(Reverse(k)) = heap.pop() {
                want.push(k);
            }
            assert_eq!(got, want, "stable dequeue order diverged");
        });
    }

    #[test]
    fn flow_queue_pop_before_is_strict() {
        let mut q = FlowQueue::with_hint(8, 1_000);
        q.push(100, 0, 0);
        q.push(100, 1, 1);
        q.push(200, 2, 2);
        assert_eq!(q.pop_before(100), None);
        assert_eq!(q.pop_before(101), Some((100, 0, 0)));
        assert_eq!(q.pop_before(101), Some((100, 1, 1)));
        assert_eq!(q.pop_before(101), None);
        assert_eq!(q.peek_time(), Some(200));
        assert_eq!(q.pop(), Some((200, 2, 2)));
        assert_eq!(q.len(), 0);
        assert_eq!(q.peak(), 3);
    }
}
