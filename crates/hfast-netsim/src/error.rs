//! The crate-wide error type.

use crate::fabric::LinkId;

/// Everything a `hfast-netsim` constructor or plan builder can reject.
///
/// One enum for the whole crate: fabric constructors
/// ([`FatTreeFabric::new`](crate::FatTreeFabric::new),
/// [`TorusFabric::new`](crate::TorusFabric::new)) return it for invalid
/// shapes, and [`FaultPlanBuilder::build`](crate::FaultPlanBuilder::build)
/// returns it for failure specifications that do not fit the target
/// fabric — the roles the old `DegradedError` used to cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetsimError {
    /// Fat-tree switches need at least 4 ports (2 down, 2 up).
    FatTreeArity {
        /// The offending port count.
        n_ports: usize,
    },
    /// A fabric needs at least one attached node.
    EmptyFabric {
        /// Which fabric family rejected the shape.
        fabric: &'static str,
    },
    /// A node id at or beyond the fabric's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The fabric's node count.
        nodes: usize,
    },
    /// A link id at or beyond the fabric's link count.
    LinkOutOfRange {
        /// The offending link id.
        link: LinkId,
        /// The fabric's link count.
        links: usize,
    },
}

impl std::fmt::Display for NetsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            NetsimError::FatTreeArity { n_ports } => {
                write!(f, "fat-tree switches need at least 4 ports, got {n_ports}")
            }
            NetsimError::EmptyFabric { fabric } => {
                write!(f, "a {fabric} fabric needs at least one node")
            }
            NetsimError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (fabric has {nodes} nodes)")
            }
            NetsimError::LinkOutOfRange { link, links } => {
                write!(f, "link {link} out of range (fabric has {links} links)")
            }
        }
    }
}

impl std::error::Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        assert_eq!(
            NetsimError::FatTreeArity { n_ports: 2 }.to_string(),
            "fat-tree switches need at least 4 ports, got 2"
        );
        assert_eq!(
            NetsimError::EmptyFabric { fabric: "torus" }.to_string(),
            "a torus fabric needs at least one node"
        );
        assert!(NetsimError::NodeOutOfRange { node: 9, nodes: 4 }
            .to_string()
            .contains("node 9 out of range"));
        assert!(NetsimError::LinkOutOfRange { link: 7, links: 6 }
            .to_string()
            .contains("link 7 out of range"));
    }
}
