//! Shared warm route caches for concurrent simulation.
//!
//! A [`PathCache`](crate::PathCache) is single-owner: the engine takes it
//! `&mut`, so two simultaneous runs cannot share one. That is fine for
//! scripted experiments but wrong for a serving daemon, where many
//! connections simulate traffic over the *same* fabric and each fresh
//! private cache re-derives every route from scratch (the cold-start
//! rescan).
//!
//! [`SharedPathCache`] fixes this with a read-mostly snapshot scheme:
//! readers grab an `Arc<PathCache>` snapshot (one mutex-protected clone of
//! the `Arc`, never of the cache) and hand it to
//! [`Simulation::with_snapshot`](crate::Simulation::with_snapshot), which
//! only ever reads it. Warming clones the cache once, extends the clone,
//! and publishes a new `Arc` — readers mid-run keep their old snapshot,
//! new readers see the warmer one (RCU-style publish). A `warming` lock
//! serializes warmers so concurrent warm-ups do not duplicate routing
//! work, while readers never wait on a warmer.

use std::sync::{Arc, Mutex};

use crate::engine::{PathCache, PAR_PATH_THRESHOLD};
use crate::fabric::Fabric;
use crate::traffic::Flow;

/// A shareable, warmable route cache for one fabric.
///
/// ```
/// use hfast_netsim::{SharedPathCache, Simulation, TorusFabric, traffic};
///
/// let torus = TorusFabric::new((4, 4, 1)).unwrap();
/// let flows = traffic::alltoall(16, 4 << 10);
/// let shared = SharedPathCache::new();
/// shared.warm(&torus, &flows);
/// let snap = shared.snapshot();
/// // Any number of threads can run with the same snapshot concurrently.
/// let out = Simulation::new(&torus).with_snapshot(&snap).run(&flows);
/// assert_eq!(out.stats.completed, flows.len());
/// ```
#[derive(Debug, Default)]
pub struct SharedPathCache {
    /// The published snapshot. Lock held only to clone or swap the `Arc`.
    current: Mutex<Arc<PathCache>>,
    /// Serializes warmers; never taken by [`snapshot`](Self::snapshot).
    warming: Mutex<()>,
}

impl SharedPathCache {
    /// An empty shared cache.
    pub fn new() -> Self {
        SharedPathCache::default()
    }

    /// The current published snapshot (cheap: one `Arc` clone under a
    /// briefly-held lock).
    pub fn snapshot(&self) -> Arc<PathCache> {
        Arc::clone(&self.current.lock().expect("shared cache poisoned"))
    }

    /// Number of routes in the current snapshot.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// True when no route has been warmed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets to an empty snapshot (required before switching fabrics).
    /// Runs holding an old snapshot are unaffected.
    pub fn clear(&self) {
        let _warm = self.warming.lock().expect("warming lock poisoned");
        *self.current.lock().expect("shared cache poisoned") = Arc::new(PathCache::new());
    }

    /// Ensures every (src, dst) pair in `flows` is resolved in the
    /// published snapshot, and returns that snapshot.
    ///
    /// Fast path: if the current snapshot already covers every pair, no
    /// lock beyond the snapshot read is taken. Otherwise one warmer at a
    /// time clones the cache, resolves the missing pairs (in parallel when
    /// there are many), and publishes the extended clone; waiting warmers
    /// re-check after the publish and usually find nothing left to do.
    pub fn warm(&self, fabric: &dyn Fabric, flows: &[Flow]) -> Arc<PathCache> {
        let missing_in = |cache: &PathCache| -> Vec<(usize, usize)> {
            let mut missing: Vec<(usize, usize)> = Vec::new();
            for f in flows {
                assert!(
                    f.src < fabric.nodes() && f.dst < fabric.nodes(),
                    "flow endpoints in range"
                );
                if cache.fresh_slot(f.src, f.dst).is_none() {
                    missing.push((f.src, f.dst));
                }
            }
            missing.sort_unstable();
            missing.dedup();
            missing
        };

        let snap = self.snapshot();
        if missing_in(&snap).is_empty() {
            return snap;
        }

        let _warm = self.warming.lock().expect("warming lock poisoned");
        // Re-snapshot: a previous warmer may have published while we
        // waited for the lock.
        let snap = self.snapshot();
        let missing = missing_in(&snap);
        if missing.is_empty() {
            return snap;
        }
        let mut next = (*snap).clone();
        let resolved: Vec<Option<Vec<crate::fabric::LinkId>>> =
            if missing.len() >= PAR_PATH_THRESHOLD {
                hfast_par::par_map(missing.clone(), |(s, d)| fabric.path(s, d))
            } else {
                missing.iter().map(|&(s, d)| fabric.path(s, d)).collect()
            };
        for (&(s, d), path) in missing.iter().zip(resolved) {
            next.insert_resolved(s, d, path);
        }
        let published = Arc::new(next);
        *self.current.lock().expect("shared cache poisoned") = Arc::clone(&published);
        published
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::torus::TorusFabric;
    use crate::traffic;

    #[test]
    fn warm_covers_all_pairs_and_is_idempotent() {
        let torus = TorusFabric::new((4, 4, 1)).unwrap();
        let flows = traffic::alltoall(16, 1 << 10);
        let shared = SharedPathCache::new();
        assert!(shared.is_empty());
        let first = shared.warm(&torus, &flows);
        assert_eq!(first.len(), 16 * 15, "every distinct ordered pair");
        let second = shared.warm(&torus, &flows);
        assert!(
            Arc::ptr_eq(&first, &second),
            "fully-warm cache republishes nothing"
        );
    }

    #[test]
    fn snapshot_survives_clear() {
        let torus = TorusFabric::new((2, 2, 1)).unwrap();
        let flows = traffic::alltoall(4, 64);
        let shared = SharedPathCache::new();
        shared.warm(&torus, &flows);
        let old = shared.snapshot();
        shared.clear();
        assert!(shared.is_empty());
        assert_eq!(old.len(), 4 * 3, "readers keep their snapshot");
    }

    #[test]
    fn incremental_warm_extends_published_snapshot() {
        let torus = TorusFabric::new((4, 4, 1)).unwrap();
        let a = traffic::alltoall(8, 64);
        let b = traffic::alltoall(16, 64);
        let shared = SharedPathCache::new();
        let small = shared.warm(&torus, &a);
        let big = shared.warm(&torus, &b);
        assert!(small.len() < big.len());
        assert_eq!(shared.len(), big.len());
    }
}
