//! The fabric abstraction: links and paths.

/// Index of a link within a fabric.
pub type LinkId = usize;

/// Physical characteristics of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed traversal latency in nanoseconds (propagation plus the
    /// processing of the switch the link feeds into).
    pub latency_ns: u64,
    /// Bandwidth in bytes per nanosecond (1.0 = 1 GB/s).
    pub bandwidth: f64,
}

impl LinkSpec {
    /// A healthy default cluster link: 1 GB/s, 50 ns switch processing.
    pub const DEFAULT: LinkSpec = LinkSpec {
        latency_ns: 50,
        bandwidth: 1.0,
    };

    /// Serialization time for a message of `bytes` on this link.
    #[inline]
    pub fn serialize_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bandwidth).ceil() as u64
    }
}

/// A network fabric: a set of links and a deterministic routing function.
///
/// `Sync` is a supertrait so the engine can precompute routes for many
/// (src, dst) pairs in parallel; fabrics are immutable descriptions, so
/// every implementation is trivially `Sync`.
pub trait Fabric: Sync {
    /// Human-readable fabric name.
    fn name(&self) -> &str;

    /// Number of attached compute nodes.
    fn nodes(&self) -> usize;

    /// Total links.
    fn link_count(&self) -> usize;

    /// Characteristics of a link.
    fn link(&self, id: LinkId) -> LinkSpec;

    /// The ordered link sequence a message from `src` to `dst` traverses,
    /// or `None` if the pair is unreachable. `src == dst` yields an empty
    /// path.
    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>>;

    /// Number of *switch* hops on the path (for latency accounting
    /// comparisons against the paper's layer-count arguments).
    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        // Each link past the first injection link enters a switch or NIC;
        // fabrics override this with exact counts where it differs.
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time() {
        let l = LinkSpec::DEFAULT;
        assert_eq!(l.serialize_ns(0), 0);
        assert_eq!(l.serialize_ns(1024), 1024);
        let slow = LinkSpec {
            latency_ns: 10,
            bandwidth: 0.1,
        };
        assert_eq!(slow.serialize_ns(1000), 10_000);
    }
}
