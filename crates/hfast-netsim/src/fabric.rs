//! The fabric abstraction: links and paths.

/// Index of a link within a fabric.
pub type LinkId = usize;

/// Physical characteristics of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed traversal latency in nanoseconds (propagation plus the
    /// processing of the switch the link feeds into).
    pub latency_ns: u64,
    /// Bandwidth in bytes per nanosecond (1.0 = 1 GB/s).
    pub bandwidth: f64,
}

impl LinkSpec {
    /// A healthy default cluster link: 1 GB/s, 50 ns switch processing.
    pub const DEFAULT: LinkSpec = LinkSpec {
        latency_ns: 50,
        bandwidth: 1.0,
    };

    /// Serialization time for a message of `bytes` on this link.
    #[inline]
    pub fn serialize_ns(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bandwidth).ceil() as u64
    }
}

/// A network fabric: a set of links and a deterministic routing function.
///
/// `Sync` is a supertrait so the engine can precompute routes for many
/// (src, dst) pairs in parallel; fabrics are immutable descriptions, so
/// every implementation is trivially `Sync`.
pub trait Fabric: Sync {
    /// Human-readable fabric name.
    fn name(&self) -> &str;

    /// Number of attached compute nodes.
    fn nodes(&self) -> usize;

    /// Total links.
    fn link_count(&self) -> usize;

    /// Characteristics of a link.
    fn link(&self, id: LinkId) -> LinkSpec;

    /// The ordered link sequence a message from `src` to `dst` traverses,
    /// or `None` if the pair is unreachable. `src == dst` yields an empty
    /// path.
    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>>;

    /// Number of *switch* hops on the path (for latency accounting
    /// comparisons against the paper's layer-count arguments).
    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        // Each link past the first injection link enters a switch or NIC;
        // fabrics override this with exact counts where it differs.
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }

    /// A route from `src` to `dst` that avoids everything `state` marks
    /// down, or `None` if no such route exists right now.
    ///
    /// The default covers single-path fabrics: the primary [`path`] is
    /// returned when it is fully up, otherwise the pair is unreachable.
    /// Fabrics with path diversity (torus detours, HFAST tree fallback)
    /// override this with a real search.
    ///
    /// [`path`]: Fabric::path
    fn path_avoiding(
        &self,
        src: usize,
        dst: usize,
        state: &crate::faultplan::FaultState,
    ) -> Option<Vec<LinkId>> {
        if !state.node_up(src) || !state.node_up(dst) {
            return None;
        }
        self.path(src, dst).filter(|p| !state.blocks(p))
    }

    /// Every link that dies with `node`: its injection/ejection links plus
    /// any fabric link terminating at its NIC. Used to translate a node
    /// fault into link outages.
    ///
    /// The default (no links) is only correct for fabrics without attached
    /// nodes; every real fabric overrides it.
    fn incident_links(&self, node: usize) -> Vec<LinkId> {
        let _ = node;
        Vec::new()
    }

    /// True if a failure of `link` can be repaired mid-run by repatching a
    /// circuit through spare switch ports (HFAST's MEMS circuits). Fixed
    /// copper and node fibers cannot.
    fn reprovisionable(&self, link: LinkId) -> bool {
        let _ = link;
        false
    }

    /// True if the fabric has any reprovisionable links at all, so the
    /// engine knows whether scheduling sync-point repatches is worthwhile.
    fn supports_reprovision(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time() {
        let l = LinkSpec::DEFAULT;
        assert_eq!(l.serialize_ns(0), 0);
        assert_eq!(l.serialize_ns(1024), 1024);
        let slow = LinkSpec {
            latency_ns: 10,
            bandwidth: 0.1,
        };
        assert_eq!(slow.serialize_ns(1000), 10_000);
    }
}
