//! Adversarial traffic scenarios beyond the six paper applications.
//!
//! The paper's workloads (§4) are *measured* application exchanges —
//! structured, mostly bandwidth-balanced, and friendly to circuit
//! provisioning. Congestion studies need the opposite: patterns built to
//! saturate a link and watch the damage spread. This module generates
//! those patterns as ordinary [`Flow`] lists, so every scenario replays
//! through the same [`Simulation`](crate::Simulation) path (ideal or
//! credit mode), and as a [`CommGraph`] so HFAST provisioning sees the
//! scenario's heavy pairs exactly the way it sees an application's.
//!
//! Every generator is seeded through [`SplitMix64`] — one
//! `(kind, nodes, flows, bytes, seed)` tuple defines one reproducible
//! workload — and emits a **foreground** of heavy flows plus (where the
//! scenario calls for it) a **background** of small latency-bound flows.
//! The background is the measurement instrument: background flows never
//! cross the hot link's natural route, so any that slow down are
//! congestion-tree *victims* in the sense of arXiv 1907.05312, not direct
//! contenders.

use hfast_topology::CommGraph;

use crate::engine::FlowRecord;
use crate::error::NetsimError;
use crate::fabric::Fabric;
use crate::traffic::{Flow, SplitMix64};

/// Payload of one background (victim-probe) flow: small enough to stay
/// under every provisioning cutoff used in this repo, so circuits are
/// never provisioned *for* the probes — they ride whatever shared
/// capacity the fabric gives latency-bound traffic.
pub const BACKGROUND_BYTES: u64 = 1024;

/// The scenario families the generator knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScenarioKind {
    /// N→1: every foreground flow targets one hot node (the classic
    /// congestion-tree root).
    Incast,
    /// A seeded rotation: node `i` sends to `(i + r) mod nodes` — full
    /// bisection load with no endpoint sharing.
    Permutation,
    /// Mixed load where a seeded fraction of flows pile onto one hot
    /// destination and the rest spread uniformly.
    HotSpot,
    /// Two tenants time-sharing the fabric: a heavy bulk tenant on even
    /// nodes and a light latency-sensitive tenant on odd nodes, with
    /// per-flow tenant attribution for slowdown reports.
    MultiTenant,
    /// A diurnal replay: waves of load separated by quiet gaps, peak
    /// waves carrying full-size payloads and off-peak waves small ones.
    Bursty,
}

impl ScenarioKind {
    /// Every scenario family, in wire/report order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Incast,
        ScenarioKind::Permutation,
        ScenarioKind::HotSpot,
        ScenarioKind::MultiTenant,
        ScenarioKind::Bursty,
    ];

    /// Stable lowercase name (wire format, report rows, stats keys).
    pub fn as_str(&self) -> &'static str {
        match self {
            ScenarioKind::Incast => "incast",
            ScenarioKind::Permutation => "permutation",
            ScenarioKind::HotSpot => "hotspot",
            ScenarioKind::MultiTenant => "multi_tenant",
            ScenarioKind::Bursty => "bursty",
        }
    }

    /// Parses [`as_str`](ScenarioKind::as_str) output back.
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.as_str() == name)
    }

    /// Per-kind salt folded into the user seed so two kinds never share a
    /// random stream even under the same seed.
    fn salt(self) -> u64 {
        0x5CEA_0000 + ScenarioKind::ALL.iter().position(|k| *k == self).unwrap() as u64
    }
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One fully-specified synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Which traffic family to generate.
    pub kind: ScenarioKind,
    /// Endpoint universe: every generated flow has `src, dst < nodes`.
    pub nodes: usize,
    /// Foreground flow budget (generators may add an equal-sized
    /// background on top; see [`Scenario::generate`]).
    pub flows: usize,
    /// Foreground payload bytes per flow.
    pub bytes: u64,
    /// PRNG seed; same seed, same workload, everywhere.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with explicit knobs.
    ///
    /// # Panics
    /// If `nodes < 2`, `flows == 0`, or `bytes == 0` — a scenario that
    /// cannot generate a single valid flow is a caller bug, not a
    /// runtime condition.
    pub fn new(kind: ScenarioKind, nodes: usize, flows: usize, bytes: u64, seed: u64) -> Scenario {
        assert!(nodes >= 2, "scenarios need at least two nodes");
        assert!(flows > 0, "scenarios need at least one flow");
        assert!(bytes > 0, "scenarios need a positive payload");
        Scenario {
            kind,
            nodes,
            flows,
            bytes,
            seed,
        }
    }

    /// The tuned default for `kind` at a given node count — what
    /// `congestion_lab` sweeps and the serve `scenario` verb falls back
    /// to when the client leaves the knobs out.
    pub fn preset(kind: ScenarioKind, nodes: usize, seed: u64) -> Scenario {
        let flows = match kind {
            ScenarioKind::Incast => nodes.saturating_sub(1).max(1),
            ScenarioKind::Permutation => nodes,
            ScenarioKind::HotSpot | ScenarioKind::MultiTenant => 2 * nodes,
            ScenarioKind::Bursty => 3 * nodes,
        };
        Scenario::new(kind, nodes, flows, 64 << 10, seed)
    }

    /// Checks the endpoint universe against a fabric.
    ///
    /// # Errors
    /// [`NetsimError::NodeOutOfRange`] if the scenario names nodes the
    /// fabric does not have.
    pub fn validate_for(&self, fabric: &dyn Fabric) -> Result<(), NetsimError> {
        if self.nodes > fabric.nodes() {
            return Err(NetsimError::NodeOutOfRange {
                node: self.nodes - 1,
                nodes: fabric.nodes(),
            });
        }
        Ok(())
    }

    /// Generates the workload. Shorthand for
    /// [`flows_with_tenants`](Scenario::flows_with_tenants)`.0`.
    pub fn generate(&self) -> Vec<Flow> {
        self.flows_with_tenants().0
    }

    /// Generates the workload plus a parallel per-flow tenant vector
    /// (all zeros except for [`ScenarioKind::MultiTenant`], where tenant
    /// 1 is the light latency-sensitive workload).
    ///
    /// Determinism: a pure function of the scenario value. Background
    /// flows (payload [`BACKGROUND_BYTES`]) follow the foreground in the
    /// returned list, so `records[i]` in a detailed run lines up with
    /// flow `i` here.
    pub fn flows_with_tenants(&self) -> (Vec<Flow>, Vec<u8>) {
        let mut rng = SplitMix64::new(self.seed ^ self.kind.salt());
        let mut flows = Vec::new();
        let mut tenants = Vec::new();
        match self.kind {
            ScenarioKind::Incast => {
                let hot = rng.below(self.nodes as u64) as usize;
                for _ in 0..self.flows {
                    let src = self.pick_not(&mut rng, hot);
                    flows.push(Flow {
                        src,
                        dst: hot,
                        bytes: self.bytes,
                        start_ns: rng.below(5_000),
                    });
                    tenants.push(0);
                }
                self.background(&mut rng, Some(hot), &mut flows, &mut tenants);
            }
            ScenarioKind::Permutation => {
                let rot = 1 + rng.below(self.nodes as u64 - 1) as usize;
                for i in 0..self.flows {
                    let src = i % self.nodes;
                    flows.push(Flow {
                        src,
                        dst: (src + rot) % self.nodes,
                        bytes: self.bytes,
                        start_ns: rng.below(5_000),
                    });
                    tenants.push(0);
                }
            }
            ScenarioKind::HotSpot => {
                let hot = rng.below(self.nodes as u64) as usize;
                for i in 0..self.flows {
                    // Every fourth flow piles onto the hot node; the rest
                    // spread uniformly (and double as victim probes).
                    let (src, dst, bytes) = if i % 4 == 0 {
                        (self.pick_not(&mut rng, hot), hot, self.bytes)
                    } else {
                        let (s, d) = self.pick_pair_avoiding(&mut rng, hot);
                        (s, d, BACKGROUND_BYTES)
                    };
                    flows.push(Flow {
                        src,
                        dst,
                        bytes,
                        start_ns: rng.below(self.spread_ns()),
                    });
                    tenants.push(0);
                }
            }
            ScenarioKind::MultiTenant => {
                // Tenant 0 (bulk) owns the even nodes, tenant 1 (latency)
                // the odd — interleaved so both share every switch layer.
                let heavy = self.flows / 2;
                for _ in 0..heavy {
                    let (src, dst) = self.pick_tenant_pair(&mut rng, 0);
                    flows.push(Flow {
                        src,
                        dst,
                        bytes: self.bytes,
                        start_ns: rng.below(5_000),
                    });
                    tenants.push(0);
                }
                for _ in heavy..self.flows {
                    let (src, dst) = self.pick_tenant_pair(&mut rng, 1);
                    flows.push(Flow {
                        src,
                        dst,
                        bytes: BACKGROUND_BYTES,
                        start_ns: rng.below(self.spread_ns()),
                    });
                    tenants.push(1);
                }
            }
            ScenarioKind::Bursty => {
                // Four waves on a diurnal axis: two peak waves at full
                // payload, two off-peak at probe size, quiet gaps between.
                const WAVES: usize = 4;
                let period = (self.bytes * self.flows as u64 / WAVES as u64).max(100_000);
                for i in 0..self.flows {
                    let wave = i % WAVES;
                    let peak = wave == 1 || wave == 2;
                    let (src, dst) = self.pick_pair(&mut rng);
                    flows.push(Flow {
                        src,
                        dst,
                        bytes: if peak { self.bytes } else { BACKGROUND_BYTES },
                        start_ns: wave as u64 * period + rng.below(50_000),
                    });
                    tenants.push(0);
                }
            }
        }
        debug_assert!(flows
            .iter()
            .all(|f| f.src < self.nodes && f.dst < self.nodes && f.src != f.dst));
        (flows, tenants)
    }

    /// Only the flows of one tenant, in the same relative order as in
    /// [`flows_with_tenants`](Scenario::flows_with_tenants) — the solo
    /// run input for [`tenant_slowdown`].
    pub fn tenant_flows(&self, tenant: u8) -> Vec<Flow> {
        let (flows, tenants) = self.flows_with_tenants();
        flows
            .into_iter()
            .zip(tenants)
            .filter(|&(_, t)| t == tenant)
            .map(|(f, _)| f)
            .collect()
    }

    /// The scenario's communication graph: one
    /// [`add_message`](CommGraph::add_message) per generated flow, so
    /// HFAST provisioning sees the scenario's heavy pairs the same way
    /// it sees a profiled application's.
    pub fn comm_graph(&self) -> CommGraph {
        let mut g = CommGraph::new(self.nodes);
        for f in self.generate() {
            g.add_message(f.src, f.dst, f.bytes);
        }
        g
    }

    /// Injection window for background/spread traffic: roughly the time
    /// the foreground needs to serialize at 1 B/ns, so probes overlap
    /// the congested phase instead of arriving after it drains.
    fn spread_ns(&self) -> u64 {
        (self.flows as u64 * self.bytes / 2).max(10_000)
    }

    /// Appends one background probe per foreground flow: small payloads
    /// between non-hot pairs, spread across the congested window.
    fn background(
        &self,
        rng: &mut SplitMix64,
        avoid: Option<usize>,
        flows: &mut Vec<Flow>,
        tenants: &mut Vec<u8>,
    ) {
        if self.nodes < 4 {
            return; // too few bystanders to probe with
        }
        for _ in 0..self.flows {
            let (src, dst) = match avoid {
                Some(hot) => self.pick_pair_avoiding(rng, hot),
                None => self.pick_pair(rng),
            };
            flows.push(Flow {
                src,
                dst,
                bytes: BACKGROUND_BYTES,
                start_ns: rng.below(self.spread_ns()),
            });
            tenants.push(0);
        }
    }

    fn pick_not(&self, rng: &mut SplitMix64, avoid: usize) -> usize {
        let v = rng.below(self.nodes as u64 - 1) as usize;
        if v >= avoid {
            v + 1
        } else {
            v
        }
    }

    fn pick_pair(&self, rng: &mut SplitMix64) -> (usize, usize) {
        let src = rng.below(self.nodes as u64) as usize;
        (src, self.pick_not(rng, src))
    }

    fn pick_pair_avoiding(&self, rng: &mut SplitMix64, hot: usize) -> (usize, usize) {
        loop {
            let (src, dst) = self.pick_pair(rng);
            if src != hot && dst != hot {
                return (src, dst);
            }
        }
    }

    /// A distinct same-tenant pair (tenant 0 = even nodes, 1 = odd).
    fn pick_tenant_pair(&self, rng: &mut SplitMix64, tenant: u8) -> (usize, usize) {
        let pool = (self.nodes + 1 - tenant as usize) / 2;
        assert!(pool >= 2, "tenant {tenant} needs two nodes");
        let a = rng.below(pool as u64) as usize;
        let mut b = rng.below(pool as u64 - 1) as usize;
        if b >= a {
            b += 1;
        }
        (2 * a + tenant as usize, 2 * b + tenant as usize)
    }
}

/// Per-tenant interference summary: how much slower a tenant's traffic
/// ran sharing the fabric versus running alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantSlowdown {
    /// Tenant id (matches the attribution vector).
    pub tenant: u8,
    /// Flows attributed to this tenant.
    pub flows: usize,
    /// p95 latency of the tenant's delivered flows in the shared run.
    pub shared_p95_ns: u64,
    /// p95 latency in the tenant's solo run (same flows, empty fabric).
    pub solo_p95_ns: u64,
    /// `shared_p95 / solo_p95` (1.0 when the solo run has no signal).
    pub slowdown: f64,
}

/// Computes per-tenant slowdowns from a shared run and per-tenant solo
/// runs. `tenants` attributes `shared[i]` to a tenant; `solos[t]` holds
/// the records of tenant `t`'s flows replayed alone, in the tenant-
/// relative order [`Scenario::tenant_flows`] emits.
pub fn tenant_slowdown(
    tenants: &[u8],
    shared: &[FlowRecord],
    solos: &[Vec<FlowRecord>],
) -> Vec<TenantSlowdown> {
    assert_eq!(tenants.len(), shared.len(), "one tenant per shared record");
    let p95 = |lat: &mut Vec<u64>| -> u64 {
        if lat.is_empty() {
            return 0;
        }
        lat.sort_unstable();
        lat[((lat.len() as f64 - 1.0) * 0.95).round() as usize]
    };
    (0..solos.len() as u8)
        .map(|t| {
            let mut shared_lat: Vec<u64> = shared
                .iter()
                .zip(tenants)
                .filter(|&(_, &tt)| tt == t)
                .filter_map(|(r, _)| r.end_ns.map(|e| e - r.start_ns))
                .collect();
            let flows = tenants.iter().filter(|&&tt| tt == t).count();
            let mut solo_lat: Vec<u64> = solos[t as usize]
                .iter()
                .filter_map(|r| r.end_ns.map(|e| e - r.start_ns))
                .collect();
            let shared_p95 = p95(&mut shared_lat);
            let solo_p95 = p95(&mut solo_lat);
            TenantSlowdown {
                tenant: t,
                flows,
                shared_p95_ns: shared_p95,
                solo_p95_ns: solo_p95,
                slowdown: if solo_p95 == 0 {
                    1.0
                } else {
                    shared_p95 as f64 / solo_p95 as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.as_str()), Some(kind));
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        for kind in ScenarioKind::ALL {
            let s = Scenario::preset(kind, 32, 42);
            assert_eq!(s.flows_with_tenants(), s.flows_with_tenants());
            let other = Scenario::preset(kind, 32, 43);
            assert_ne!(
                s.generate(),
                other.generate(),
                "{kind}: different seeds must differ"
            );
        }
    }

    #[test]
    fn endpoints_stay_in_range() {
        for kind in ScenarioKind::ALL {
            for seed in 0..8 {
                let s = Scenario::new(kind, 17, 40, 8192, seed);
                let (flows, tenants) = s.flows_with_tenants();
                assert_eq!(flows.len(), tenants.len());
                assert!(!flows.is_empty());
                for f in &flows {
                    assert!(f.src < 17 && f.dst < 17 && f.src != f.dst, "{kind}: {f:?}");
                }
            }
        }
    }

    #[test]
    fn fabric_validation_catches_small_fabrics() {
        let torus = crate::TorusFabric::new((2, 2, 2)).unwrap();
        let fits = Scenario::preset(ScenarioKind::Incast, 8, 1);
        assert!(fits.validate_for(&torus).is_ok());
        let too_big = Scenario::preset(ScenarioKind::Incast, 9, 1);
        assert_eq!(
            too_big.validate_for(&torus),
            Err(NetsimError::NodeOutOfRange { node: 8, nodes: 8 })
        );
    }

    #[test]
    fn incast_converges_on_one_destination() {
        let s = Scenario::preset(ScenarioKind::Incast, 16, 9);
        let flows = s.generate();
        let heavy: Vec<_> = flows.iter().filter(|f| f.bytes == s.bytes).collect();
        assert_eq!(heavy.len(), 15);
        let hot = heavy[0].dst;
        assert!(heavy.iter().all(|f| f.dst == hot), "one hot destination");
        // Background probes avoid the hot node entirely.
        assert!(flows
            .iter()
            .filter(|f| f.bytes == BACKGROUND_BYTES)
            .all(|f| f.src != hot && f.dst != hot));
    }

    #[test]
    fn permutation_is_a_rotation() {
        let s = Scenario::preset(ScenarioKind::Permutation, 12, 5);
        let flows = s.generate();
        assert_eq!(flows.len(), 12);
        let rot = (flows[0].dst + 12 - flows[0].src) % 12;
        assert!(rot > 0);
        for f in &flows {
            assert_eq!((f.src + rot) % 12, f.dst, "constant rotation");
        }
    }

    #[test]
    fn multi_tenant_partitions_by_parity() {
        let s = Scenario::preset(ScenarioKind::MultiTenant, 16, 3);
        let (flows, tenants) = s.flows_with_tenants();
        for (f, &t) in flows.iter().zip(&tenants) {
            assert_eq!(f.src % 2, t as usize, "src stays in its tenant");
            assert_eq!(f.dst % 2, t as usize, "dst stays in its tenant");
        }
        assert!(tenants.contains(&0) && tenants.contains(&1));
        // Tenant-relative extraction matches the combined list's order.
        let light = s.tenant_flows(1);
        let from_combined: Vec<_> = flows
            .iter()
            .zip(&tenants)
            .filter(|&(_, &t)| t == 1)
            .map(|(f, _)| *f)
            .collect();
        assert_eq!(light, from_combined);
    }

    #[test]
    fn bursty_has_waves_and_gaps() {
        let s = Scenario::preset(ScenarioKind::Bursty, 16, 7);
        let flows = s.generate();
        let starts: std::collections::BTreeSet<u64> =
            flows.iter().map(|f| f.start_ns / 100_000).collect();
        assert!(starts.len() >= 2, "waves occupy distinct windows");
        assert!(flows.iter().any(|f| f.bytes == s.bytes), "peak payloads");
        assert!(
            flows.iter().any(|f| f.bytes == BACKGROUND_BYTES),
            "off-peak payloads"
        );
    }

    #[test]
    fn slowdown_report_compares_shared_vs_solo() {
        let mk = |end: u64| FlowRecord {
            flow: 0,
            start_ns: 0,
            end_ns: Some(end),
            hops: 1,
            retries: 0,
            abandoned: false,
        };
        let tenants = vec![0, 0, 1, 1];
        let shared = vec![mk(100), mk(200), mk(400), mk(400)];
        let solos = vec![vec![mk(100), mk(200)], vec![mk(100), mk(100)]];
        let report = tenant_slowdown(&tenants, &shared, &solos);
        assert_eq!(report.len(), 2);
        assert_eq!(report[0].slowdown, 1.0, "bulk tenant unharmed");
        assert_eq!(report[1].shared_p95_ns, 400);
        assert_eq!(report[1].solo_p95_ns, 100);
        assert_eq!(report[1].slowdown, 4.0, "light tenant 4x slower shared");
    }
}
