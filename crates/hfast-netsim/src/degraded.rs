//! Fault injection for fabric simulation.
//!
//! Wraps any [`Fabric`] and fails a set of nodes and/or links: paths that
//! would traverse them become unroutable, so the same traffic replay shows
//! how much of a workload each topology loses — the simulation counterpart
//! of [`hfast_core::fault`]'s analytic comparison (paper §1's
//! fault-tolerance argument).

use std::collections::BTreeSet;

use crate::fabric::{Fabric, LinkId, LinkSpec};

/// A failure specification that does not fit the wrapped fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedError {
    /// A failed node id at or beyond the fabric's node count.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// The wrapped fabric's node count.
        nodes: usize,
    },
    /// A failed link id at or beyond the fabric's link count.
    LinkOutOfRange {
        /// The offending link id.
        link: LinkId,
        /// The wrapped fabric's link count.
        links: usize,
    },
}

impl std::fmt::Display for DegradedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DegradedError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "failed node {node} out of range (fabric has {nodes} nodes)"
                )
            }
            DegradedError::LinkOutOfRange { link, links } => {
                write!(
                    f,
                    "failed link {link} out of range (fabric has {links} links)"
                )
            }
        }
    }
}

impl std::error::Error for DegradedError {}

/// A fabric with failed components.
pub struct DegradedFabric<'a> {
    inner: &'a dyn Fabric,
    failed_nodes: BTreeSet<usize>,
    failed_links: BTreeSet<LinkId>,
}

impl std::fmt::Debug for DegradedFabric<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradedFabric")
            .field("inner", &self.inner.name())
            .field("failed_nodes", &self.failed_nodes)
            .field("failed_links", &self.failed_links)
            .finish()
    }
}

impl<'a> DegradedFabric<'a> {
    /// Wraps `inner` with the given failures.
    ///
    /// # Errors
    /// Returns a [`DegradedError`] naming the first failed node or link id
    /// that does not exist in `inner`.
    pub fn new(
        inner: &'a dyn Fabric,
        failed_nodes: impl IntoIterator<Item = usize>,
        failed_links: impl IntoIterator<Item = LinkId>,
    ) -> Result<Self, DegradedError> {
        let failed_nodes: BTreeSet<usize> = failed_nodes.into_iter().collect();
        let failed_links: BTreeSet<LinkId> = failed_links.into_iter().collect();
        if let Some(&node) = failed_nodes.iter().find(|&&n| n >= inner.nodes()) {
            return Err(DegradedError::NodeOutOfRange {
                node,
                nodes: inner.nodes(),
            });
        }
        if let Some(&link) = failed_links.iter().find(|&&l| l >= inner.link_count()) {
            return Err(DegradedError::LinkOutOfRange {
                link,
                links: inner.link_count(),
            });
        }
        Ok(DegradedFabric {
            inner,
            failed_nodes,
            failed_links,
        })
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.failed_nodes.len()
    }

    /// Fraction of node pairs that still route (both endpoints alive).
    pub fn surviving_pair_fraction(&self) -> f64 {
        let n = self.inner.nodes();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0usize;
        let mut routed = 0usize;
        for a in 0..n {
            if self.failed_nodes.contains(&a) {
                continue;
            }
            for b in (a + 1)..n {
                if self.failed_nodes.contains(&b) {
                    continue;
                }
                total += 1;
                if self.path(a, b).is_some() {
                    routed += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            routed as f64 / total as f64
        }
    }
}

impl Fabric for DegradedFabric<'_> {
    fn name(&self) -> &str {
        "degraded"
    }

    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn link_count(&self) -> usize {
        self.inner.link_count()
    }

    fn link(&self, id: LinkId) -> LinkSpec {
        self.inner.link(id)
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if self.failed_nodes.contains(&src) || self.failed_nodes.contains(&dst) {
            return None;
        }
        // The inner fabric routes deterministically (no adaptive rerouting);
        // a path through a failed component is lost, which models
        // non-adaptive dimension-order/tree routing. Adaptive fabrics would
        // override path() themselves.
        let path = self.inner.path(src, dst)?;
        if path.iter().any(|l| self.failed_links.contains(l)) {
            return None;
        }
        Some(path)
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::torus::TorusFabric;
    use crate::traffic::Flow;
    use crate::FatTreeFabric;

    #[test]
    fn failed_endpoint_is_unroutable() {
        let torus = TorusFabric::new((4, 4, 1));
        let degraded = DegradedFabric::new(&torus, [5], []).unwrap();
        assert!(degraded.path(5, 0).is_none());
        assert!(degraded.path(0, 5).is_none());
        assert!(degraded.path(0, 1).is_some(), "others unaffected");
    }

    #[test]
    fn failed_link_blocks_static_routes() {
        let torus = TorusFabric::new((8, 1, 1));
        let healthy_path = torus.path(0, 1).unwrap();
        let degraded = DegradedFabric::new(&torus, [], healthy_path.clone()).unwrap();
        // Dimension-order routing has exactly one path: it is now gone.
        assert!(degraded.path(0, 1).is_none());
        // The reverse direction uses different directed links.
        assert!(degraded.path(1, 0).is_some());
    }

    #[test]
    fn surviving_fraction_quantifies_damage() {
        let torus = TorusFabric::new((4, 4, 1));
        let healthy = DegradedFabric::new(&torus, [], []).unwrap();
        assert_eq!(healthy.surviving_pair_fraction(), 1.0);
        // Fail the central node's outgoing +x link: every pair whose
        // dimension-order route crosses it breaks.
        let link = torus.path(5, 6).unwrap()[0];
        let broken = DegradedFabric::new(&torus, [], [link]).unwrap();
        let frac = broken.surviving_pair_fraction();
        assert!(frac < 1.0 && frac > 0.5, "partial damage: {frac}");
    }

    #[test]
    fn replay_counts_unrouted_flows() {
        let ft = FatTreeFabric::new(16, 8);
        let degraded = DegradedFabric::new(&ft, [3], []).unwrap();
        let flows: Vec<Flow> = (0..16)
            .map(|s| Flow {
                src: s,
                dst: (s + 1) % 16,
                bytes: 4096,
                start_ns: 0,
            })
            .collect();
        let stats = Simulation::new(&degraded).run(&flows).stats;
        // Flows 2→3, 3→4 involve the dead node.
        assert_eq!(stats.unrouted, 2);
        assert_eq!(stats.completed, 14);
    }

    #[test]
    fn out_of_range_failure_rejected() {
        let ft = FatTreeFabric::new(4, 8);
        let err = DegradedFabric::new(&ft, [99], []).unwrap_err();
        assert_eq!(
            err,
            DegradedError::NodeOutOfRange {
                node: 99,
                nodes: ft.nodes()
            }
        );
        assert!(err.to_string().contains("failed node 99 out of range"));
        let err = DegradedFabric::new(&ft, [], [usize::MAX]).unwrap_err();
        assert!(matches!(err, DegradedError::LinkOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));
    }
}
