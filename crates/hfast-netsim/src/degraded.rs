//! Fault injection for fabric simulation.
//!
//! Wraps any [`Fabric`] and fails a set of nodes and/or links: paths that
//! would traverse them become unroutable, so the same traffic replay shows
//! how much of a workload each topology loses — the simulation counterpart
//! of [`hfast_core::fault`]'s analytic comparison (paper §1's
//! fault-tolerance argument).

use std::collections::BTreeSet;

use crate::fabric::{Fabric, LinkId, LinkSpec};

/// A fabric with failed components.
pub struct DegradedFabric<'a> {
    inner: &'a dyn Fabric,
    failed_nodes: BTreeSet<usize>,
    failed_links: BTreeSet<LinkId>,
}

impl<'a> DegradedFabric<'a> {
    /// Wraps `inner` with the given failures.
    pub fn new(
        inner: &'a dyn Fabric,
        failed_nodes: impl IntoIterator<Item = usize>,
        failed_links: impl IntoIterator<Item = LinkId>,
    ) -> Self {
        let failed_nodes: BTreeSet<usize> = failed_nodes.into_iter().collect();
        let failed_links: BTreeSet<LinkId> = failed_links.into_iter().collect();
        assert!(
            failed_nodes.iter().all(|&n| n < inner.nodes()),
            "failed node out of range"
        );
        assert!(
            failed_links.iter().all(|&l| l < inner.link_count()),
            "failed link out of range"
        );
        DegradedFabric {
            inner,
            failed_nodes,
            failed_links,
        }
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.failed_nodes.len()
    }

    /// Fraction of node pairs that still route (both endpoints alive).
    pub fn surviving_pair_fraction(&self) -> f64 {
        let n = self.inner.nodes();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0usize;
        let mut routed = 0usize;
        for a in 0..n {
            if self.failed_nodes.contains(&a) {
                continue;
            }
            for b in (a + 1)..n {
                if self.failed_nodes.contains(&b) {
                    continue;
                }
                total += 1;
                if self.path(a, b).is_some() {
                    routed += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            routed as f64 / total as f64
        }
    }
}

impl Fabric for DegradedFabric<'_> {
    fn name(&self) -> &str {
        "degraded"
    }

    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn link_count(&self) -> usize {
        self.inner.link_count()
    }

    fn link(&self, id: LinkId) -> LinkSpec {
        self.inner.link(id)
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if self.failed_nodes.contains(&src) || self.failed_nodes.contains(&dst) {
            return None;
        }
        // The inner fabric routes deterministically (no adaptive rerouting);
        // a path through a failed component is lost, which models
        // non-adaptive dimension-order/tree routing. Adaptive fabrics would
        // override path() themselves.
        let path = self.inner.path(src, dst)?;
        if path.iter().any(|l| self.failed_links.contains(l)) {
            return None;
        }
        Some(path)
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::torus::TorusFabric;
    use crate::traffic::Flow;
    use crate::FatTreeFabric;

    #[test]
    fn failed_endpoint_is_unroutable() {
        let torus = TorusFabric::new((4, 4, 1));
        let degraded = DegradedFabric::new(&torus, [5], []);
        assert!(degraded.path(5, 0).is_none());
        assert!(degraded.path(0, 5).is_none());
        assert!(degraded.path(0, 1).is_some(), "others unaffected");
    }

    #[test]
    fn failed_link_blocks_static_routes() {
        let torus = TorusFabric::new((8, 1, 1));
        let healthy_path = torus.path(0, 1).unwrap();
        let degraded = DegradedFabric::new(&torus, [], healthy_path.clone());
        // Dimension-order routing has exactly one path: it is now gone.
        assert!(degraded.path(0, 1).is_none());
        // The reverse direction uses different directed links.
        assert!(degraded.path(1, 0).is_some());
    }

    #[test]
    fn surviving_fraction_quantifies_damage() {
        let torus = TorusFabric::new((4, 4, 1));
        let healthy = DegradedFabric::new(&torus, [], []);
        assert_eq!(healthy.surviving_pair_fraction(), 1.0);
        // Fail the central node's outgoing +x link: every pair whose
        // dimension-order route crosses it breaks.
        let link = torus.path(5, 6).unwrap()[0];
        let broken = DegradedFabric::new(&torus, [], [link]);
        let frac = broken.surviving_pair_fraction();
        assert!(frac < 1.0 && frac > 0.5, "partial damage: {frac}");
    }

    #[test]
    fn replay_counts_unrouted_flows() {
        let ft = FatTreeFabric::new(16, 8);
        let degraded = DegradedFabric::new(&ft, [3], []);
        let flows: Vec<Flow> = (0..16)
            .map(|s| Flow {
                src: s,
                dst: (s + 1) % 16,
                bytes: 4096,
                start_ns: 0,
            })
            .collect();
        let stats = simulate(&degraded, &flows);
        // Flows 2→3, 3→4 involve the dead node.
        assert_eq!(stats.unrouted, 2);
        assert_eq!(stats.completed, 14);
    }

    #[test]
    #[should_panic(expected = "failed node out of range")]
    fn out_of_range_failure_rejected() {
        let ft = FatTreeFabric::new(4, 8);
        DegradedFabric::new(&ft, [99], []);
    }
}
