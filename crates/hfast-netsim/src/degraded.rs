//! Static fault injection (deprecated shim).
//!
//! [`DegradedFabric`] predates the runtime fault subsystem: it wraps any
//! [`Fabric`] with a *fixed* set of failed nodes and links, making paths
//! through them unroutable for a whole replay. The dynamic API subsumes it
//! — a [`FaultPlan`](crate::FaultPlan) whose failures all land at `t = 0`
//! with no recoveries reproduces the same scenario, plus retries, adaptive
//! rerouting, and mid-run re-provisioning. The shim now stores its failure
//! set in a [`FaultState`] and answers routing questions through the same
//! [`Fabric::path_avoiding`] machinery, so both APIs agree by construction.

use crate::error::NetsimError;
use crate::fabric::{Fabric, LinkId, LinkSpec};
use crate::faultplan::{FaultAction, FaultEvent, FaultState, FaultTarget};

/// A fabric with a fixed set of failed components.
#[deprecated(
    note = "use Simulation::with_faults with a FaultPlan failing the same components at t = 0"
)]
pub struct DegradedFabric<'a> {
    inner: &'a dyn Fabric,
    state: FaultState,
    failed_node_count: usize,
}

#[allow(deprecated)]
impl std::fmt::Debug for DegradedFabric<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradedFabric")
            .field("inner", &self.inner.name())
            .field("state", &self.state)
            .finish()
    }
}

#[allow(deprecated)]
impl<'a> DegradedFabric<'a> {
    /// Wraps `inner` with the given failures.
    ///
    /// # Errors
    /// Returns a [`NetsimError`] naming the first failed node or link id
    /// that does not exist in `inner`.
    pub fn new(
        inner: &'a dyn Fabric,
        failed_nodes: impl IntoIterator<Item = usize>,
        failed_links: impl IntoIterator<Item = LinkId>,
    ) -> Result<Self, NetsimError> {
        let mut state = FaultState::healthy(inner);
        let mut failed_node_count = 0;
        for node in failed_nodes {
            if node >= inner.nodes() {
                return Err(NetsimError::NodeOutOfRange {
                    node,
                    nodes: inner.nodes(),
                });
            }
            if state.node_up(node) {
                failed_node_count += 1;
            }
            state.apply(
                inner,
                FaultEvent {
                    time_ns: 0,
                    action: FaultAction::Fail,
                    target: FaultTarget::Node(node),
                },
            );
        }
        for link in failed_links {
            if link >= inner.link_count() {
                return Err(NetsimError::LinkOutOfRange {
                    link,
                    links: inner.link_count(),
                });
            }
            state.apply(
                inner,
                FaultEvent {
                    time_ns: 0,
                    action: FaultAction::Fail,
                    target: FaultTarget::Link(link),
                },
            );
        }
        Ok(DegradedFabric {
            inner,
            state,
            failed_node_count,
        })
    }

    /// Number of failed nodes.
    pub fn failed_node_count(&self) -> usize {
        self.failed_node_count
    }

    /// Fraction of node pairs that still route (both endpoints alive).
    pub fn surviving_pair_fraction(&self) -> f64 {
        let n = self.inner.nodes();
        if n < 2 {
            return 1.0;
        }
        let mut total = 0usize;
        let mut routed = 0usize;
        for a in 0..n {
            if !self.state.node_up(a) {
                continue;
            }
            for b in (a + 1)..n {
                if !self.state.node_up(b) {
                    continue;
                }
                total += 1;
                if self.path(a, b).is_some() {
                    routed += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            routed as f64 / total as f64
        }
    }
}

#[allow(deprecated)]
impl Fabric for DegradedFabric<'_> {
    fn name(&self) -> &str {
        "degraded"
    }

    fn nodes(&self) -> usize {
        self.inner.nodes()
    }

    fn link_count(&self) -> usize {
        self.inner.link_count()
    }

    fn link(&self, id: LinkId) -> LinkSpec {
        self.inner.link(id)
    }

    fn path(&self, src: usize, dst: usize) -> Option<Vec<LinkId>> {
        if !self.state.node_up(src) || !self.state.node_up(dst) {
            return None;
        }
        // Historical semantics: NON-adaptive. The inner fabric's primary
        // route either survives or the pair is lost — no detours, which is
        // why this shim is deprecated in favor of the dynamic API (where
        // Fabric::path_avoiding searches for one).
        let path = self.inner.path(src, dst)?;
        (!self.state.blocks(&path)).then_some(path)
    }

    fn switch_hops(&self, src: usize, dst: usize) -> Option<usize> {
        self.path(src, dst).map(|p| p.len().saturating_sub(1))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use crate::torus::TorusFabric;
    use crate::traffic::Flow;
    use crate::FatTreeFabric;

    #[test]
    fn failed_endpoint_is_unroutable() {
        let torus = TorusFabric::new((4, 4, 1)).unwrap();
        let degraded = DegradedFabric::new(&torus, [5], []).unwrap();
        assert!(degraded.path(5, 0).is_none());
        assert!(degraded.path(0, 5).is_none());
        assert!(degraded.path(0, 1).is_some(), "others unaffected");
        assert_eq!(degraded.failed_node_count(), 1);
    }

    #[test]
    fn failed_link_blocks_static_routes() {
        let torus = TorusFabric::new((8, 1, 1)).unwrap();
        let healthy_path = torus.path(0, 1).unwrap();
        let degraded = DegradedFabric::new(&torus, [], healthy_path.clone()).unwrap();
        // Dimension-order routing has exactly one path: it is now gone.
        assert!(degraded.path(0, 1).is_none());
        // The reverse direction uses different directed links.
        assert!(degraded.path(1, 0).is_some());
    }

    #[test]
    fn surviving_fraction_quantifies_damage() {
        let torus = TorusFabric::new((4, 4, 1)).unwrap();
        let healthy = DegradedFabric::new(&torus, [], []).unwrap();
        assert_eq!(healthy.surviving_pair_fraction(), 1.0);
        // Fail the central node's outgoing +x link: every pair whose
        // dimension-order route crosses it breaks.
        let link = torus.path(5, 6).unwrap()[0];
        let broken = DegradedFabric::new(&torus, [], [link]).unwrap();
        let frac = broken.surviving_pair_fraction();
        assert!(frac < 1.0 && frac > 0.5, "partial damage: {frac}");
    }

    #[test]
    fn replay_counts_unrouted_flows() {
        let ft = FatTreeFabric::new(16, 8).unwrap();
        let degraded = DegradedFabric::new(&ft, [3], []).unwrap();
        let flows: Vec<Flow> = (0..16)
            .map(|s| Flow {
                src: s,
                dst: (s + 1) % 16,
                bytes: 4096,
                start_ns: 0,
            })
            .collect();
        let stats = Simulation::new(&degraded).run(&flows).stats;
        // Flows 2→3, 3→4 involve the dead node.
        assert_eq!(stats.unrouted, 2);
        assert_eq!(stats.completed, 14);
    }

    #[test]
    fn out_of_range_failure_rejected() {
        let ft = FatTreeFabric::new(4, 8).unwrap();
        let err = DegradedFabric::new(&ft, [99], []).unwrap_err();
        assert_eq!(
            err,
            NetsimError::NodeOutOfRange {
                node: 99,
                nodes: ft.nodes()
            }
        );
        assert!(err.to_string().contains("node 99 out of range"));
        let err = DegradedFabric::new(&ft, [], [usize::MAX]).unwrap_err();
        assert!(matches!(err, NetsimError::LinkOutOfRange { .. }));
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn dynamic_api_dominates_the_shim() {
        // Same failure set, expressed both ways. Endpoint flows die under
        // both; flows merely *transiting* the dead router are lost by the
        // non-adaptive shim but rerouted by the dynamic API — exactly why
        // the shim is deprecated.
        let torus = TorusFabric::new((4, 4, 1)).unwrap();
        let flows: Vec<Flow> = (0..16)
            .map(|s| Flow {
                src: s,
                dst: (s + 7) % 16,
                bytes: 2048,
                start_ns: 0,
            })
            .collect();
        let degraded = DegradedFabric::new(&torus, [5], []).unwrap();
        let static_stats = Simulation::new(&degraded).run(&flows).stats;
        let plan = crate::FaultPlan::builder()
            .fail_node(0, 5)
            .build(&torus)
            .unwrap();
        let dynamic = Simulation::new(&torus)
            .with_faults(&plan)
            .with_retry(crate::RetryPolicy {
                max_attempts: 1,
                base_backoff_ns: 1,
                max_backoff_ns: 1,
            })
            .run(&flows);
        assert_eq!(dynamic.stats.unrouted, 2, "only 5→12 and 14→5 are lost");
        assert!(
            static_stats.unrouted >= dynamic.stats.unrouted,
            "the shim can only do worse: {} vs {}",
            static_stats.unrouted,
            dynamic.stats.unrouted
        );
        assert_eq!(
            dynamic.stats.completed + dynamic.stats.unrouted,
            flows.len()
        );
    }
}
