//! Property-based tests for the topology layer.

use proptest::prelude::*;

use hfast_topology::{
    bisection_bytes, tdc, tdc_sweep, BufferHistogram, CommGraph, CsrGraph, PAPER_CUTOFFS,
};

/// Strategy: a random message list over `n` ranks.
fn messages(n: usize, max_msgs: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec(
        (0..n, 0..n, 1u64..(2 << 20)),
        0..max_msgs,
    )
}

fn build(n: usize, msgs: &[(usize, usize, u64)]) -> CommGraph {
    let mut g = CommGraph::new(n);
    for &(a, b, bytes) in msgs {
        g.add_message(a, b, bytes);
    }
    g
}

proptest! {
    #[test]
    fn graph_stays_symmetric(msgs in messages(12, 200)) {
        let g = build(12, &msgs);
        prop_assert!(g.is_symmetric());
    }

    #[test]
    fn tdc_monotone_in_cutoff(msgs in messages(10, 150)) {
        let g = build(10, &msgs);
        let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
        for w in sweep.windows(2) {
            prop_assert!(w[1].1.max <= w[0].1.max);
            prop_assert!(w[1].1.avg <= w[0].1.avg + 1e-12);
            prop_assert!(w[1].1.min <= w[0].1.min);
        }
    }

    #[test]
    fn degree_bounds(msgs in messages(9, 100)) {
        let g = build(9, &msgs);
        let s = tdc(&g, 0);
        prop_assert!(s.max <= 8, "degree cannot exceed n-1");
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.min as f64 <= s.avg && s.avg <= s.max as f64);
    }

    #[test]
    fn csr_matches_dense(msgs in messages(10, 120), cutoff in 0u64..(1 << 21)) {
        let g = build(10, &msgs);
        let csr = CsrGraph::from_graph(&g, cutoff);
        for v in 0..10 {
            prop_assert_eq!(csr.degree(v), g.degree_thresholded(v, cutoff));
            for &u in csr.neighbors(v) {
                prop_assert!(csr.has_edge(v, u));
                prop_assert!(csr.has_edge(u, v), "CSR adjacency is symmetric");
            }
        }
    }

    #[test]
    fn bisection_bounded_by_total(msgs in messages(8, 100)) {
        let g = build(8, &msgs);
        prop_assert!(bisection_bytes(&g) <= g.total_bytes());
    }

    #[test]
    fn histogram_cdf_properties(entries in prop::collection::vec((1u64..(1<<22), 1u64..1000), 1..50)) {
        let hist: BufferHistogram = entries.iter().copied().collect();
        let cdf = hist.cdf();
        // Monotone, ends at exactly 1.
        for w in cdf.windows(2) {
            prop_assert!(w[0].1 <= w[1].1 + 1e-12);
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Median is consistent with the CDF.
        let median = hist.median().unwrap();
        prop_assert!(hist.fraction_at_or_below(median) >= 0.5);
        if median > 0 {
            prop_assert!(hist.fraction_at_or_below(median - 1) < 0.5 + 1e-12);
        }
        // Percentiles are monotone.
        let p25 = hist.percentile(25.0).unwrap();
        let p75 = hist.percentile(75.0).unwrap();
        prop_assert!(p25 <= median && median <= p75);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(msgs in messages(10, 80)) {
        let g = build(10, &msgs);
        let csr = CsrGraph::from_graph(&g, 0);
        let dist = csr.bfs_distances(0);
        for v in 0..10 {
            if dist[v] == usize::MAX {
                continue;
            }
            for &u in csr.neighbors(v) {
                prop_assert!(
                    dist[u] != usize::MAX && dist[u] + 1 >= dist[v] && dist[v] + 1 >= dist[u],
                    "adjacent distances differ by at most 1"
                );
            }
        }
    }

    #[test]
    fn components_consistent_with_reachability(msgs in messages(10, 60)) {
        let g = build(10, &msgs);
        let csr = CsrGraph::from_graph(&g, 0);
        let comp = csr.components();
        for src in 0..10 {
            let dist = csr.bfs_distances(src);
            for v in 0..10 {
                prop_assert_eq!(
                    dist[v] != usize::MAX,
                    comp[v] == comp[src],
                    "reachable iff same component"
                );
            }
        }
    }
}
