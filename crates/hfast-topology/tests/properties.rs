//! Property-based tests for the topology layer.

use hfast_par::{forall, Rng64};
use hfast_topology::{
    bisection_bytes, tdc, tdc_sweep, tdc_sweep_naive, BufferHistogram, CommGraph, CsrGraph,
    PAPER_CUTOFFS,
};

/// A random message list over `n` ranks.
fn messages(rng: &mut Rng64, n: usize, max_msgs: usize) -> Vec<(usize, usize, u64)> {
    let count = rng.range(0, max_msgs);
    (0..count)
        .map(|_| (rng.range(0, n), rng.range(0, n), rng.range_u64(1, 2 << 20)))
        .collect()
}

fn build(n: usize, msgs: &[(usize, usize, u64)]) -> CommGraph {
    let mut g = CommGraph::new(n);
    for &(a, b, bytes) in msgs {
        g.add_message(a, b, bytes);
    }
    g
}

fn random_graph(rng: &mut Rng64, n: usize, max_msgs: usize) -> CommGraph {
    let msgs = messages(rng, n, max_msgs);
    build(n, &msgs)
}

#[test]
fn graph_stays_symmetric() {
    forall("graph_stays_symmetric", 256, |rng| {
        let g = random_graph(rng, 12, 200);
        assert!(g.is_symmetric());
    });
}

#[test]
fn tdc_monotone_in_cutoff() {
    forall("tdc_monotone_in_cutoff", 256, |rng| {
        let g = random_graph(rng, 10, 150);
        let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
        for w in sweep.windows(2) {
            assert!(w[1].1.max <= w[0].1.max);
            assert!(w[1].1.avg <= w[0].1.avg + 1e-12);
            assert!(w[1].1.min <= w[0].1.min);
        }
    });
}

#[test]
fn sweep_equals_naive_per_cutoff() {
    // The single-pass sweep must produce numbers identical to running the
    // straightforward per-cutoff rescan — on the paper's axis and on random
    // cutoff lists (unsorted, duplicated, huge).
    forall("sweep_equals_naive_per_cutoff", 256, |rng| {
        let n = rng.range(1, 16);
        let g = random_graph(rng, n, 200);
        assert_eq!(
            tdc_sweep(&g, &PAPER_CUTOFFS),
            tdc_sweep_naive(&g, &PAPER_CUTOFFS)
        );
        let cutoffs: Vec<u64> = (0..rng.range(1, 10))
            .map(|_| rng.range_u64(0, 4 << 20))
            .collect();
        assert_eq!(tdc_sweep(&g, &cutoffs), tdc_sweep_naive(&g, &cutoffs));
    });
}

#[test]
fn degree_bounds() {
    forall("degree_bounds", 256, |rng| {
        let g = random_graph(rng, 9, 100);
        let s = tdc(&g, 0);
        assert!(s.max <= 8, "degree cannot exceed n-1");
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.min as f64 <= s.avg && s.avg <= s.max as f64);
    });
}

#[test]
fn csr_matches_dense() {
    forall("csr_matches_dense", 256, |rng| {
        let g = random_graph(rng, 10, 120);
        let cutoff = rng.range_u64(0, 1 << 21);
        let csr = CsrGraph::from_graph(&g, cutoff);
        for v in 0..10 {
            assert_eq!(csr.degree(v), g.degree_thresholded(v, cutoff));
            for &u in csr.neighbors(v) {
                assert!(csr.has_edge(v, u));
                assert!(csr.has_edge(u, v), "CSR adjacency is symmetric");
            }
        }
    });
}

#[test]
fn bisection_bounded_by_total() {
    forall("bisection_bounded_by_total", 256, |rng| {
        let g = random_graph(rng, 8, 100);
        assert!(bisection_bytes(&g) <= g.total_bytes());
    });
}

#[test]
fn histogram_cdf_properties() {
    forall("histogram_cdf_properties", 256, |rng| {
        let entries: Vec<(u64, u64)> = (0..rng.range(1, 50))
            .map(|_| (rng.range_u64(1, 1 << 22), rng.range_u64(1, 1000)))
            .collect();
        let hist: BufferHistogram = entries.iter().copied().collect();
        let cdf = hist.cdf();
        // Monotone, ends at exactly 1.
        for w in cdf.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
            assert!(w[0].0 < w[1].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Median is consistent with the CDF.
        let median = hist.median().unwrap();
        assert!(hist.fraction_at_or_below(median) >= 0.5);
        if median > 0 {
            assert!(hist.fraction_at_or_below(median - 1) < 0.5 + 1e-12);
        }
        // Percentiles are monotone.
        let p25 = hist.percentile(25.0).unwrap();
        let p75 = hist.percentile(75.0).unwrap();
        assert!(p25 <= median && median <= p75);
    });
}

#[test]
fn bfs_distances_satisfy_triangle_on_edges() {
    forall("bfs_distances_satisfy_triangle_on_edges", 256, |rng| {
        let g = random_graph(rng, 10, 80);
        let csr = CsrGraph::from_graph(&g, 0);
        let dist = csr.bfs_distances(0);
        for v in 0..10 {
            if dist[v] == usize::MAX {
                continue;
            }
            for &u in csr.neighbors(v) {
                assert!(
                    dist[u] != usize::MAX && dist[u] + 1 >= dist[v] && dist[v] + 1 >= dist[u],
                    "adjacent distances differ by at most 1"
                );
            }
        }
    });
}

#[test]
fn components_consistent_with_reachability() {
    forall("components_consistent_with_reachability", 128, |rng| {
        let g = random_graph(rng, 10, 60);
        let csr = CsrGraph::from_graph(&g, 0);
        let comp = csr.components();
        for src in 0..10 {
            let dist = csr.bfs_distances(src);
            for v in 0..10 {
                assert_eq!(
                    dist[v] != usize::MAX,
                    comp[v] == comp[src],
                    "reachable iff same component"
                );
            }
        }
    });
}
