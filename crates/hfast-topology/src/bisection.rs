//! Network-utilization metrics: FCN utilization and bisection traffic.

use crate::graph::CommGraph;
use crate::tdc::tdc;

/// Fraction of a fully connected network's per-node links an application
/// actually uses: average thresholded TDC divided by `P − 1`.
///
/// This is Table 3's "FCN Utilization (avg.)" column — e.g. Cactus at
/// P = 64 uses ~5/63 ≈ 9 % of the links an FCN provides, while PARATEC uses
/// 100 %.
pub fn fcn_utilization(graph: &CommGraph, cutoff: u64) -> f64 {
    let n = graph.n();
    if n <= 1 {
        return 0.0;
    }
    tdc(graph, cutoff).avg / (n - 1) as f64
}

/// Bytes crossing a bisection of the task set.
///
/// `in_upper(v)` assigns each task to a half; the function returns total
/// bytes on edges whose endpoints land in different halves.
pub fn bisection_bytes_for(graph: &CommGraph, in_upper: impl Fn(usize) -> bool) -> u64 {
    let n = graph.n();
    let mut total = 0;
    for a in 0..n {
        if in_upper(a) {
            continue;
        }
        for b in 0..n {
            if a != b && in_upper(b) {
                total += graph.edge(a, b).bytes;
            }
        }
    }
    total
}

/// Bisection traffic estimate: the minimum over natural cuts (index halves,
/// even/odd, low-bit blocks). True min-bisection is NP-hard; the natural
/// cuts bound it usefully for the regular decompositions scientific codes
/// use.
pub fn bisection_bytes(graph: &CommGraph) -> u64 {
    let n = graph.n();
    if n < 2 {
        return 0;
    }
    let half = n / 2;
    let cuts: [&dyn Fn(usize) -> bool; 3] =
        [&|v| v >= half, &|v| v % 2 == 1, &|v| (v / 2) % 2 == 1];
    cuts.iter()
        .map(|cut| bisection_bytes_for(graph, cut))
        .min()
        .expect("non-empty cut set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete_graph, ring_graph};

    #[test]
    fn fcn_utilization_complete_graph_is_one() {
        let g = complete_graph(16, 4096);
        assert!((fcn_utilization(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fcn_utilization_ring_is_low() {
        let g = ring_graph(64, 4096);
        let u = fcn_utilization(&g, 0);
        assert!((u - 2.0 / 63.0).abs() < 1e-12);
    }

    #[test]
    fn fcn_utilization_respects_cutoff() {
        let mut g = complete_graph(8, 100);
        g.add_message(0, 1, 1 << 20);
        let full = fcn_utilization(&g, 0);
        let cut = fcn_utilization(&g, 2048);
        assert!((full - 1.0).abs() < 1e-12);
        assert!(cut < 0.1, "only the single big edge survives: {cut}");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(fcn_utilization(&CommGraph::new(1), 0), 0.0);
        assert_eq!(bisection_bytes(&CommGraph::new(1)), 0);
    }

    #[test]
    fn ring_bisection_is_two_edges() {
        let g = ring_graph(8, 1000);
        // Index-half cut severs exactly 2 ring edges of 1000 bytes each.
        assert_eq!(bisection_bytes(&g), 2000);
    }

    #[test]
    fn custom_cut() {
        let mut g = CommGraph::new(4);
        g.add_message(0, 1, 10);
        g.add_message(2, 3, 10);
        g.add_message(1, 2, 7);
        // Cut {0,1} | {2,3} only crosses the 1-2 edge, counted once.
        let cross = bisection_bytes_for(&g, |v| v >= 2);
        assert_eq!(cross, 7);
    }
}
