//! Undirected weighted communication graphs.

/// Per-edge traffic statistics between two tasks (both directions summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgeStat {
    /// Total bytes exchanged over the edge.
    pub bytes: u64,
    /// Number of messages exchanged.
    pub count: u64,
    /// Largest single message observed on the edge.
    pub max_msg: u64,
}

impl EdgeStat {
    /// True if any traffic was observed.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.count > 0
    }

    /// Folds one message into the edge statistics.
    #[inline]
    pub fn add_message(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.count += 1;
        self.max_msg = self.max_msg.max(bytes);
    }

    /// Merges another accumulator into this one.
    #[inline]
    pub fn merge(&mut self, other: &EdgeStat) {
        self.bytes += other.bytes;
        self.count += other.count;
        self.max_msg = self.max_msg.max(other.max_msg);
    }
}

/// Undirected communication graph over `n` tasks with per-edge traffic
/// statistics (the paper §4.4: "we can form an undirected graph which
/// describes the topological connectivity required by the application …
/// we assume that switch links are bi-directional").
///
/// Storage is a dense symmetric matrix — the study sizes (P = 64, 256, up to
/// a few thousand) make density cheap, and it keeps edge updates O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct CommGraph {
    n: usize,
    /// Row-major `n×n`, kept symmetric; the diagonal (self-traffic) is
    /// tracked but excluded from degree computations.
    edges: Vec<EdgeStat>,
}

impl CommGraph {
    /// An empty graph over `n` tasks.
    pub fn new(n: usize) -> Self {
        CommGraph {
            n,
            edges: vec![EdgeStat::default(); n * n],
        }
    }

    /// Builds a graph from *directed* per-pair volumes (e.g. send-side
    /// profiling records), symmetrizing as the paper does: traffic in either
    /// direction contributes to the same undirected edge.
    pub fn from_directed<I>(n: usize, directed: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, EdgeStat)>,
    {
        let mut g = CommGraph::new(n);
        for (src, dst, stat) in directed {
            assert!(src < n && dst < n, "rank out of range");
            g.edges[src * n + dst].merge(&stat);
            if src != dst {
                g.edges[dst * n + src].merge(&stat);
            }
        }
        g
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Records one message between `a` and `b` (undirected).
    pub fn add_message(&mut self, a: usize, b: usize, bytes: u64) {
        assert!(a < self.n && b < self.n, "rank out of range");
        self.edges[a * self.n + b].add_message(bytes);
        if a != b {
            self.edges[b * self.n + a].add_message(bytes);
        }
    }

    /// Edge statistics between `a` and `b`.
    #[inline]
    pub fn edge(&self, a: usize, b: usize) -> &EdgeStat {
        &self.edges[a * self.n + b]
    }

    /// Iterates over the active neighbours of `v` (self-edges excluded).
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (usize, &EdgeStat)> {
        let row = &self.edges[v * self.n..(v + 1) * self.n];
        row.iter()
            .enumerate()
            .filter(move |(u, e)| *u != v && e.is_active())
    }

    /// Neighbours of `v` whose edge carries at least one message of
    /// `cutoff` bytes or more.
    ///
    /// This is the paper's thresholding heuristic (§4.4): partners reached
    /// only by latency-bound messages smaller than the bandwidth-delay
    /// product are disregarded, since such messages gain nothing from a
    /// dedicated circuit. `cutoff == 0` keeps every active partner.
    pub fn neighbors_thresholded(
        &self,
        v: usize,
        cutoff: u64,
    ) -> impl Iterator<Item = (usize, &EdgeStat)> {
        self.neighbors(v).filter(move |(_, e)| e.max_msg >= cutoff)
    }

    /// Unthresholded topological degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.neighbors(v).count()
    }

    /// Thresholded topological degree of `v` (see
    /// [`neighbors_thresholded`](Self::neighbors_thresholded)).
    pub fn degree_thresholded(&self, v: usize, cutoff: u64) -> usize {
        self.neighbors_thresholded(v, cutoff).count()
    }

    /// Total bytes over all undirected edges (each edge counted once).
    pub fn total_bytes(&self) -> u64 {
        let mut sum = 0;
        for a in 0..self.n {
            for b in a..self.n {
                sum += self.edge(a, b).bytes;
            }
        }
        sum
    }

    /// Number of active undirected edges (self-edges excluded).
    pub fn edge_count(&self) -> usize {
        let mut c = 0;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.edge(a, b).is_active() {
                    c += 1;
                }
            }
        }
        c
    }

    /// Number of active undirected edges at a message-size cutoff.
    pub fn edge_count_thresholded(&self, cutoff: u64) -> usize {
        let mut c = 0;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                let e = self.edge(a, b);
                if e.is_active() && e.max_msg >= cutoff {
                    c += 1;
                }
            }
        }
        c
    }

    /// A canonical 64-bit content hash (FNV-1a over `n` and every active
    /// upper-triangle edge with its statistics).
    ///
    /// Two graphs hash equal iff they carry identical traffic; the hash is
    /// stable across processes and platforms, so it can key caches and
    /// name fabrics in serving registries. Inactive edges are skipped,
    /// making the hash independent of matrix storage.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.n as u64);
        for a in 0..self.n {
            for b in a..self.n {
                let e = self.edge(a, b);
                if e.is_active() {
                    mix(a as u64);
                    mix(b as u64);
                    mix(e.bytes);
                    mix(e.count);
                    mix(e.max_msg);
                }
            }
        }
        h
    }

    /// Verifies the symmetry invariant (diagnostic; cheap for test sizes).
    pub fn is_symmetric(&self) -> bool {
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if self.edges[a * self.n + b] != self.edges[b * self.n + a] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_message_is_symmetric() {
        let mut g = CommGraph::new(4);
        g.add_message(0, 2, 1000);
        g.add_message(2, 0, 500);
        assert_eq!(g.edge(0, 2).bytes, 1500);
        assert_eq!(g.edge(2, 0).bytes, 1500);
        assert_eq!(g.edge(0, 2).count, 2);
        assert_eq!(g.edge(0, 2).max_msg, 1000);
        assert!(g.is_symmetric());
    }

    #[test]
    fn self_edges_excluded_from_degree() {
        let mut g = CommGraph::new(3);
        g.add_message(1, 1, 64);
        g.add_message(1, 2, 64);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.edge(1, 1).count, 1, "self-traffic is still tracked");
    }

    #[test]
    fn thresholded_degree_drops_small_edges() {
        let mut g = CommGraph::new(4);
        g.add_message(0, 1, 100); // small only
        g.add_message(0, 2, 100);
        g.add_message(0, 2, 4096); // also one big message
        g.add_message(0, 3, 2048); // exactly at cutoff
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree_thresholded(0, 2048), 2);
        assert_eq!(g.degree_thresholded(0, 0), 3, "cutoff 0 keeps everything");
        assert_eq!(g.degree_thresholded(0, 1 << 20), 0);
    }

    #[test]
    fn from_directed_symmetrizes() {
        let directed = vec![
            (
                0usize,
                1usize,
                EdgeStat {
                    bytes: 10,
                    count: 1,
                    max_msg: 10,
                },
            ),
            (
                1,
                0,
                EdgeStat {
                    bytes: 30,
                    count: 2,
                    max_msg: 20,
                },
            ),
        ];
        let g = CommGraph::from_directed(3, directed);
        assert_eq!(g.edge(0, 1).bytes, 40);
        assert_eq!(g.edge(1, 0).bytes, 40);
        assert_eq!(g.edge(0, 1).count, 3);
        assert_eq!(g.edge(0, 1).max_msg, 20);
        assert!(g.is_symmetric());
    }

    #[test]
    fn totals_count_each_edge_once() {
        let mut g = CommGraph::new(3);
        g.add_message(0, 1, 100);
        g.add_message(1, 2, 50);
        assert_eq!(g.total_bytes(), 150);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn edge_count_thresholded_filters() {
        let mut g = CommGraph::new(3);
        g.add_message(0, 1, 100);
        g.add_message(1, 2, 5000);
        assert_eq!(g.edge_count_thresholded(2048), 1);
        assert_eq!(g.edge_count_thresholded(0), 2);
    }

    #[test]
    fn neighbors_enumerates_active_only() {
        let mut g = CommGraph::new(5);
        g.add_message(2, 0, 8);
        g.add_message(2, 4, 8);
        let mut ns: Vec<usize> = g.neighbors(2).map(|(u, _)| u).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![0, 4]);
    }

    #[test]
    fn content_hash_tracks_traffic_not_storage() {
        let mut a = CommGraph::new(4);
        a.add_message(0, 1, 100);
        a.add_message(2, 3, 50);
        // Same traffic inserted in a different order hashes identically.
        let mut b = CommGraph::new(4);
        b.add_message(2, 3, 50);
        b.add_message(0, 1, 100);
        assert_eq!(a.content_hash(), b.content_hash());
        // Any change to traffic or size changes the hash.
        let mut c = a.clone();
        c.add_message(0, 1, 1);
        assert_ne!(a.content_hash(), c.content_hash());
        assert_ne!(
            CommGraph::new(4).content_hash(),
            CommGraph::new(5).content_hash()
        );
    }
}
