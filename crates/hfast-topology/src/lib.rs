//! # hfast-topology — communication-topology analysis
//!
//! Data structures and algorithms for the paper's §4 analysis: undirected
//! weighted communication graphs built from profiled message exchanges, the
//! topological degree of communication (TDC) with and without the
//! bandwidth-delay-product message-size cutoff, cumulative buffer-size
//! distributions, volume-matrix rendering, and detectors for regular
//! topologies (the paper's case-i test: "is the communication graph
//! isomorphic to a mesh?").
//!
//! Everything here is self-contained — the graph structures are implemented
//! from scratch (dense symmetric storage plus a CSR view for traversal).

#![warn(missing_docs)]

pub mod bisection;
pub mod csr;
pub mod embedding;
pub mod generators;
pub mod graph;
pub mod histogram;
pub mod matrix;
pub mod tdc;

pub use bisection::{bisection_bytes, fcn_utilization};
pub use csr::CsrGraph;
pub use embedding::{
    degree_histogram, detect_structure, isotropy, traffic_isotropy, StructureClass,
};
pub use graph::{CommGraph, EdgeStat};
pub use histogram::BufferHistogram;
pub use matrix::{render_ascii, to_csv, to_dot};
pub use tdc::{
    degrees_sweep, tdc, tdc_sweep, tdc_sweep_csr, tdc_sweep_naive, TdcSummary, BDP_CUTOFF,
    PAPER_CUTOFFS,
};
