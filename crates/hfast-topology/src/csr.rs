//! Compressed sparse row view of a communication graph.
//!
//! The dense [`CommGraph`] is convenient to build; the
//! provisioning and simulation code in downstream crates iterates adjacency
//! heavily, for which this compact CSR snapshot (optionally thresholded by
//! message size) is the right shape.

use crate::graph::{CommGraph, EdgeStat};

/// Immutable CSR adjacency snapshot of a [`CommGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<usize>,
    stats: Vec<EdgeStat>,
}

impl CsrGraph {
    /// Builds the CSR view keeping only edges with `max_msg >= cutoff`
    /// (`cutoff == 0` keeps every active edge).
    ///
    /// Two passes over the dense adjacency: a counting pass sizes every
    /// allocation exactly, so the fill pass never reallocates — on dense
    /// graphs the repeated `Vec` growth used to cost several times the
    /// scan itself.
    pub fn from_graph(graph: &CommGraph, cutoff: u64) -> Self {
        let n = graph.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut nnz = 0usize;
        for v in 0..n {
            nnz += graph.degree_thresholded(v, cutoff);
            offsets.push(nnz);
        }
        let mut targets = Vec::with_capacity(nnz);
        let mut stats = Vec::with_capacity(nnz);
        for v in 0..n {
            for (u, e) in graph.neighbors_thresholded(v, cutoff) {
                targets.push(u);
                stats.push(*e);
            }
        }
        debug_assert_eq!(targets.len(), nnz);
        CsrGraph {
            n,
            offsets,
            targets,
            stats,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Neighbour list of `v` with edge statistics.
    pub fn neighbors_with_stats(&self, v: usize) -> impl Iterator<Item = (usize, &EdgeStat)> {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.stats[range].iter())
    }

    /// Total directed adjacency entries (2× undirected edge count).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.targets.len()
    }

    /// True if `a` and `b` are adjacent (linear scan of the shorter list).
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        let (probe, other) = if self.degree(a) <= self.degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        self.neighbors(probe).contains(&other)
    }

    /// Connected components, as a component id per vertex.
    ///
    /// Useful for fault analysis: a failed node partitions a mesh but not a
    /// fully-provisioned HFAST fabric.
    pub fn components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut stack = Vec::new();
        for start in 0..self.n {
            if comp[start] != usize::MAX {
                continue;
            }
            comp[start] = next;
            stack.push(start);
            while let Some(v) = stack.pop() {
                for &u in self.neighbors(v) {
                    if comp[u] == usize::MAX {
                        comp[u] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Breadth-first hop distances from `src` (`usize::MAX` if unreachable).
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &u in self.neighbors(v) {
                if dist[u] == usize::MAX {
                    dist[u] = dist[v] + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> CommGraph {
        let mut g = CommGraph::new(n);
        for i in 0..n - 1 {
            g.add_message(i, i + 1, 4096);
        }
        g
    }

    #[test]
    fn csr_matches_dense_adjacency() {
        let mut g = CommGraph::new(5);
        g.add_message(0, 1, 100);
        g.add_message(0, 3, 5000);
        g.add_message(2, 4, 3000);
        let csr = CsrGraph::from_graph(&g, 0);
        assert_eq!(csr.n(), 5);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert!(csr.has_edge(0, 3));
        assert!(csr.has_edge(3, 0));
        assert!(!csr.has_edge(1, 2));
        assert_eq!(csr.nnz(), 6);
    }

    #[test]
    fn cutoff_filters_edges() {
        let mut g = CommGraph::new(3);
        g.add_message(0, 1, 100);
        g.add_message(1, 2, 5000);
        let csr = CsrGraph::from_graph(&g, 2048);
        assert_eq!(csr.degree(0), 0);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.neighbors(1), &[2]);
    }

    #[test]
    fn components_detects_partitions() {
        let g = path_graph(6);
        // Break edge 2-3 by building only parts.
        let mut broken = CommGraph::new(6);
        for i in 0..5 {
            if i == 2 {
                continue;
            }
            broken.add_message(i, i + 1, 4096);
        }
        let whole = CsrGraph::from_graph(&g, 0).components();
        assert!(whole.iter().all(|&c| c == 0));
        let parts = CsrGraph::from_graph(&broken, 0).components();
        assert_eq!(parts[0], parts[2]);
        assert_eq!(parts[3], parts[5]);
        assert_ne!(parts[0], parts[3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        let csr = CsrGraph::from_graph(&g, 0);
        assert_eq!(csr.bfs_distances(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(csr.bfs_distances(2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn stats_travel_with_edges() {
        let mut g = CommGraph::new(2);
        g.add_message(0, 1, 700);
        let csr = CsrGraph::from_graph(&g, 0);
        let (u, e) = csr.neighbors_with_stats(0).next().unwrap();
        assert_eq!(u, 1);
        assert_eq!(e.bytes, 700);
        assert_eq!(e.max_msg, 700);
    }
}
