//! Topological degree of communication (TDC).
//!
//! The paper's central reduced metric (§1, §4.4): the number of distinct
//! communication partners of each task. Applications whose average TDC is
//! far below P underutilize a fully connected network; the thresholded TDC
//! (disregarding messages below the bandwidth-delay product) determines how
//! many packet-switch ports HFAST must provision per node.

use crate::csr::CsrGraph;
use crate::graph::CommGraph;

/// The cutoff sweep used on the x-axis of the paper's Figures 5-10:
/// 0, 128, 256, 512, 1 KB, … 1 MB.
pub const PAPER_CUTOFFS: [u64; 15] = [
    0,
    128,
    256,
    512,
    1 << 10,
    2 << 10,
    4 << 10,
    8 << 10,
    16 << 10,
    32 << 10,
    64 << 10,
    128 << 10,
    256 << 10,
    512 << 10,
    1024 << 10,
];

/// The paper's chosen bandwidth-delay-product threshold: 2 KB (§2.4,
/// Table 1 — "the best bandwidth-delay products hover close to 2 KB").
pub const BDP_CUTOFF: u64 = 2048;

/// Reduced degree statistics over all tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdcSummary {
    /// Maximum degree over tasks.
    pub max: usize,
    /// Minimum degree over tasks.
    pub min: usize,
    /// Mean degree.
    pub avg: f64,
    /// Median degree.
    pub median: usize,
}

impl TdcSummary {
    /// Builds a summary from per-task degrees.
    pub fn from_degrees(mut degrees: Vec<usize>) -> Self {
        assert!(!degrees.is_empty(), "summary of an empty degree list");
        degrees.sort_unstable();
        let n = degrees.len();
        TdcSummary {
            max: degrees[n - 1],
            min: degrees[0],
            avg: degrees.iter().sum::<usize>() as f64 / n as f64,
            median: degrees[n / 2],
        }
    }
}

impl std::fmt::Display for TdcSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "max {} avg {:.1}", self.max, self.avg)
    }
}

/// Per-task thresholded degrees.
pub fn degrees(graph: &CommGraph, cutoff: u64) -> Vec<usize> {
    (0..graph.n())
        .map(|v| graph.degree_thresholded(v, cutoff))
        .collect()
}

/// TDC summary at a message-size cutoff (`cutoff == 0` for unthresholded).
pub fn tdc(graph: &CommGraph, cutoff: u64) -> TdcSummary {
    TdcSummary::from_degrees(degrees(graph, cutoff))
}

/// The shared sweep kernel: `collect_sizes(v, buf)` fills `buf` with vertex
/// `v`'s incident max-message sizes; the kernel sorts each vertex's sizes
/// once and derives every cutoff's degree from that ordering.
fn sweep_kernel(
    n: usize,
    cutoffs: &[u64],
    mut collect_sizes: impl FnMut(usize, &mut Vec<u64>),
) -> Vec<Vec<usize>> {
    let c = cutoffs.len();
    // Sort cutoffs ascending once, remembering each one's original slot.
    let mut order: Vec<usize> = (0..c).collect();
    order.sort_by_key(|&i| cutoffs[i]);
    let mut degs = vec![vec![0usize; n]; c];
    let mut sizes: Vec<u64> = Vec::new();
    // The matrix is cutoff-major but filled vertex-by-vertex (each vertex's
    // sorted sizes feed every cutoff row), so indexed access is the shape.
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        sizes.clear();
        collect_sizes(v, &mut sizes);
        sizes.sort_unstable();
        let d = sizes.len();
        // Ascending cutoffs: advance one pointer past the edges each new
        // cutoff disqualifies. Degree at cutoff = edges with size >= cutoff.
        let mut below = 0usize;
        for &slot in &order {
            let cut = cutoffs[slot];
            while below < d && sizes[below] < cut {
                below += 1;
            }
            degs[slot][v] = d - below;
        }
    }
    degs
}

/// Per-task degrees at every cutoff, in one pass over the adjacency.
///
/// Returns a `cutoffs.len() × n` matrix (`result[c][v]` = thresholded degree
/// of task `v` at `cutoffs[c]`). Each vertex's incident edge sizes are
/// sorted once; the degrees at all cutoffs then fall out of a single merge
/// against the sorted cutoff list — `O(E log d + E + n·C)` total versus the
/// naive `O(C·E)` full rescans (`C` cutoffs, max degree `d`).
pub fn degrees_sweep(csr: &CsrGraph, cutoffs: &[u64]) -> Vec<Vec<usize>> {
    sweep_kernel(csr.n(), cutoffs, |v, buf| {
        buf.extend(csr.neighbors_with_stats(v).map(|(_, e)| e.max_msg));
    })
}

/// TDC summaries over a cutoff sweep — the data behind the (b) panels of
/// Figures 5-10.
///
/// Single-pass: sorts each vertex's incident message sizes once and derives
/// every cutoff's degrees from that ordering (see [`degrees_sweep`]),
/// reading the dense adjacency directly — no CSR snapshot is materialized
/// for a one-shot sweep. Produces values identical to calling [`tdc`] per
/// cutoff.
pub fn tdc_sweep(graph: &CommGraph, cutoffs: &[u64]) -> Vec<(u64, TdcSummary)> {
    let degs = sweep_kernel(graph.n(), cutoffs, |v, buf| {
        buf.extend(graph.neighbors(v).map(|(_, e)| e.max_msg));
    });
    summarize(degs, cutoffs)
}

/// [`tdc_sweep`] over a prebuilt CSR snapshot (cutoff-0 view), for callers
/// that already hold one.
pub fn tdc_sweep_csr(csr: &CsrGraph, cutoffs: &[u64]) -> Vec<(u64, TdcSummary)> {
    summarize(degrees_sweep(csr, cutoffs), cutoffs)
}

fn summarize(degs: Vec<Vec<usize>>, cutoffs: &[u64]) -> Vec<(u64, TdcSummary)> {
    degs.into_iter()
        .zip(cutoffs)
        .map(|(d, &c)| (c, TdcSummary::from_degrees(d)))
        .collect()
}

/// The straightforward per-cutoff rescan ([`tdc`] in a loop). Kept as the
/// reference implementation for property tests and the benchmark baseline.
pub fn tdc_sweep_naive(graph: &CommGraph, cutoffs: &[u64]) -> Vec<(u64, TdcSummary)> {
    cutoffs.iter().map(|&c| (c, tdc(graph, c))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: usize, msg: u64) -> CommGraph {
        let mut g = CommGraph::new(n);
        for i in 1..n {
            g.add_message(0, i, msg);
        }
        g
    }

    #[test]
    fn star_tdc() {
        let g = star(9, 4096);
        let s = tdc(&g, 0);
        assert_eq!(s.max, 8);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 1);
        assert!((s.avg - 16.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_reduces_tdc() {
        let mut g = star(5, 100); // all small messages
        g.add_message(0, 1, 8192); // one big edge
        let uncut = tdc(&g, 0);
        let cut = tdc(&g, BDP_CUTOFF);
        assert_eq!(uncut.max, 4);
        assert_eq!(cut.max, 1);
        assert_eq!(cut.min, 0);
    }

    #[test]
    fn sweep_is_monotone_nonincreasing() {
        let mut g = CommGraph::new(8);
        // Edges with geometrically growing max sizes.
        for i in 1..8usize {
            g.add_message(0, i, 64u64 << i);
        }
        let sweep = tdc_sweep(&g, &PAPER_CUTOFFS);
        for w in sweep.windows(2) {
            assert!(
                w[1].1.max <= w[0].1.max && w[1].1.avg <= w[0].1.avg,
                "TDC must not increase with cutoff"
            );
        }
        // Degrees shrink as the cutoff climbs past each edge size.
        assert_eq!(sweep[0].1.max, 7);
        assert_eq!(sweep.last().unwrap().1.max, 0);
    }

    #[test]
    fn paper_cutoffs_match_figure_axis() {
        assert_eq!(PAPER_CUTOFFS[0], 0);
        assert_eq!(PAPER_CUTOFFS[5], 2048);
        assert_eq!(*PAPER_CUTOFFS.last().unwrap(), 1024 * 1024);
        assert!(PAPER_CUTOFFS.windows(2).all(|w| w[0] < w[1]));
        assert!(PAPER_CUTOFFS.contains(&BDP_CUTOFF));
    }

    #[test]
    fn sweep_matches_naive_per_cutoff() {
        // Mixed sizes including exact cutoff hits, zero-size edges, a
        // self-edge, and isolated vertices.
        let mut g = CommGraph::new(12);
        g.add_message(0, 1, 2048);
        g.add_message(0, 2, 2047);
        g.add_message(1, 2, 1 << 20);
        g.add_message(3, 4, 0);
        g.add_message(5, 5, 4096); // self-traffic: excluded from degrees
        g.add_message(6, 7, 128);
        g.add_message(6, 8, 512);
        g.add_message(6, 9, 64 << 10);
        let fast = tdc_sweep(&g, &PAPER_CUTOFFS);
        let naive = tdc_sweep_naive(&g, &PAPER_CUTOFFS);
        assert_eq!(fast, naive);
    }

    #[test]
    fn sweep_handles_unsorted_and_duplicate_cutoffs() {
        let mut g = CommGraph::new(6);
        g.add_message(0, 1, 1000);
        g.add_message(0, 2, 3000);
        g.add_message(1, 3, 500);
        let cutoffs = [4096u64, 0, 2048, 2048, 1];
        assert_eq!(tdc_sweep(&g, &cutoffs), tdc_sweep_naive(&g, &cutoffs));
    }

    #[test]
    fn degrees_sweep_matrix_shape() {
        let g = star(5, 4096);
        let csr = CsrGraph::from_graph(&g, 0);
        let m = degrees_sweep(&csr, &PAPER_CUTOFFS);
        assert_eq!(m.len(), PAPER_CUTOFFS.len());
        assert!(m.iter().all(|row| row.len() == 5));
        assert_eq!(m[0][0], 4, "hub degree at cutoff 0");
    }

    #[test]
    fn summary_from_degrees() {
        let s = TdcSummary::from_degrees(vec![3, 1, 4, 1, 5]);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.median, 3);
        assert!((s.avg - 2.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty degree list")]
    fn empty_summary_panics() {
        TdcSummary::from_degrees(vec![]);
    }
}
