//! Canonical regular-topology graph generators.
//!
//! Used by the embedding detectors (as references), the network simulator
//! (fixed fabrics), and tests. All generators label vertices row-major.

use crate::graph::CommGraph;

/// Splits `n` into up to three factors as close to cubic as possible.
///
/// Returns `(x, y, z)` with `x*y*z == n`, preferring balanced shapes —
/// the "densely packed 3D mesh" default provisioning of paper §2.3.
pub fn balanced_dims3(n: usize) -> (usize, usize, usize) {
    assert!(n > 0);
    let mut best = (n, 1, 1);
    let mut best_score = usize::MAX;
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rest = n / x;
            let mut y = x;
            while y * y <= rest {
                if rest.is_multiple_of(y) {
                    let z = rest / y;
                    let score = z - x; // spread between extreme dims
                    if score < best_score {
                        best_score = score;
                        best = (x, y, z);
                    }
                }
                y += 1;
            }
        }
        x += 1;
    }
    best
}

/// Row-major linear index in a 3D grid.
#[inline]
pub fn grid_index(dims: (usize, usize, usize), x: usize, y: usize, z: usize) -> usize {
    (z * dims.1 + y) * dims.0 + x
}

/// Inverse of [`grid_index`].
#[inline]
pub fn grid_coords(dims: (usize, usize, usize), v: usize) -> (usize, usize, usize) {
    let x = v % dims.0;
    let y = (v / dims.0) % dims.1;
    let z = v / (dims.0 * dims.1);
    (x, y, z)
}

/// Expected neighbour set of vertex `v` in a 3D mesh (non-periodic).
pub fn mesh3d_neighbors(dims: (usize, usize, usize), v: usize) -> Vec<usize> {
    let (x, y, z) = grid_coords(dims, v);
    let mut out = Vec::with_capacity(6);
    if x > 0 {
        out.push(grid_index(dims, x - 1, y, z));
    }
    if x + 1 < dims.0 {
        out.push(grid_index(dims, x + 1, y, z));
    }
    if y > 0 {
        out.push(grid_index(dims, x, y - 1, z));
    }
    if y + 1 < dims.1 {
        out.push(grid_index(dims, x, y + 1, z));
    }
    if z > 0 {
        out.push(grid_index(dims, x, y, z - 1));
    }
    if z + 1 < dims.2 {
        out.push(grid_index(dims, x, y, z + 1));
    }
    out.sort_unstable();
    out
}

/// Expected neighbour set of vertex `v` in a 3D torus (periodic).
pub fn torus3d_neighbors(dims: (usize, usize, usize), v: usize) -> Vec<usize> {
    let (x, y, z) = grid_coords(dims, v);
    let mut out = Vec::with_capacity(6);
    let (dx, dy, dz) = dims;
    if dx > 1 {
        out.push(grid_index(dims, (x + dx - 1) % dx, y, z));
        out.push(grid_index(dims, (x + 1) % dx, y, z));
    }
    if dy > 1 {
        out.push(grid_index(dims, x, (y + dy - 1) % dy, z));
        out.push(grid_index(dims, x, (y + 1) % dy, z));
    }
    if dz > 1 {
        out.push(grid_index(dims, x, y, (z + dz - 1) % dz));
        out.push(grid_index(dims, x, y, (z + 1) % dz));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// 3D mesh communication graph with uniform message size.
pub fn mesh3d_graph(dims: (usize, usize, usize), msg_bytes: u64) -> CommGraph {
    let n = dims.0 * dims.1 * dims.2;
    let mut g = CommGraph::new(n);
    for v in 0..n {
        for u in mesh3d_neighbors(dims, v) {
            if u > v {
                g.add_message(v, u, msg_bytes);
            }
        }
    }
    g
}

/// 3D torus communication graph with uniform message size.
pub fn torus3d_graph(dims: (usize, usize, usize), msg_bytes: u64) -> CommGraph {
    let n = dims.0 * dims.1 * dims.2;
    let mut g = CommGraph::new(n);
    for v in 0..n {
        for u in torus3d_neighbors(dims, v) {
            if u > v {
                g.add_message(v, u, msg_bytes);
            }
        }
    }
    g
}

/// Ring (1D torus) communication graph.
pub fn ring_graph(n: usize, msg_bytes: u64) -> CommGraph {
    let mut g = CommGraph::new(n);
    if n > 1 {
        for v in 0..n {
            g.add_message(v, (v + 1) % n, msg_bytes);
        }
    }
    g
}

/// Hypercube communication graph (`n` must be a power of two).
pub fn hypercube_graph(n: usize, msg_bytes: u64) -> CommGraph {
    assert!(n.is_power_of_two(), "hypercube needs a power-of-two size");
    let mut g = CommGraph::new(n);
    let dims = n.trailing_zeros() as usize;
    for v in 0..n {
        for d in 0..dims {
            let u = v ^ (1 << d);
            if u > v {
                g.add_message(v, u, msg_bytes);
            }
        }
    }
    g
}

/// Fully connected communication graph.
pub fn complete_graph(n: usize, msg_bytes: u64) -> CommGraph {
    let mut g = CommGraph::new(n);
    for v in 0..n {
        for u in (v + 1)..n {
            g.add_message(v, u, msg_bytes);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tdc::tdc;

    #[test]
    fn balanced_dims_cover_study_sizes() {
        assert_eq!(balanced_dims3(64), (4, 4, 4));
        assert_eq!(balanced_dims3(8), (2, 2, 2));
        let (x, y, z) = balanced_dims3(256);
        assert_eq!(x * y * z, 256);
        assert!(z - x <= 4, "256 should factor near-cubically: {x}x{y}x{z}");
        assert_eq!(balanced_dims3(7), (1, 1, 7), "primes degrade to a line");
    }

    #[test]
    fn grid_index_roundtrip() {
        let dims = (3, 4, 5);
        for v in 0..60 {
            let (x, y, z) = grid_coords(dims, v);
            assert_eq!(grid_index(dims, x, y, z), v);
        }
    }

    #[test]
    fn mesh_degrees() {
        let g = mesh3d_graph((4, 4, 4), 1000);
        let s = tdc(&g, 0);
        assert_eq!(s.max, 6, "interior nodes have 6 neighbours");
        assert_eq!(s.min, 3, "corners have 3");
        // Average degree of a 4x4x4 mesh: 2*edges/n = 2*144/64 = 4.5.
        assert!((s.avg - 4.5).abs() < 1e-12);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus3d_graph((4, 4, 4), 1000);
        let s = tdc(&g, 0);
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 6);
    }

    #[test]
    fn small_torus_dims_dedup() {
        // A 2-long dimension has coincident +1/-1 neighbours.
        let g = torus3d_graph((2, 2, 2), 100);
        let s = tdc(&g, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.min, 3);
    }

    #[test]
    fn ring_and_hypercube() {
        let r = ring_graph(6, 10);
        assert_eq!(tdc(&r, 0).max, 2);
        assert_eq!(tdc(&r, 0).min, 2);
        let h = hypercube_graph(16, 10);
        let s = tdc(&h, 0);
        assert_eq!(s.max, 4);
        assert_eq!(s.min, 4);
    }

    #[test]
    fn tiny_ring_has_single_edge() {
        let r = ring_graph(2, 10);
        assert_eq!(tdc(&r, 0).max, 1);
        assert_eq!(r.edge(0, 1).count, 2, "both directions recorded");
    }

    #[test]
    fn complete_graph_degree() {
        let g = complete_graph(10, 10);
        let s = tdc(&g, 0);
        assert_eq!(s.max, 9);
        assert_eq!(s.min, 9);
    }
}
