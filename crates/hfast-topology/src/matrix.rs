//! Volume-matrix rendering (the (a) panels of paper Figures 5-10).
//!
//! The paper visualizes each application's P×P message-volume matrix as a
//! heat map. These helpers render the same data as terminal-friendly ASCII
//! density plots and as CSV for external plotting.

use crate::graph::CommGraph;

/// Density glyphs from empty to maximal.
const SHADES: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Renders the byte-volume matrix as an ASCII heat map.
///
/// Rows/columns are task ranks; cell brightness is log-scaled traffic volume
/// relative to the busiest pair. `downsample` merges blocks of ranks into
/// one character cell so large matrices fit a terminal (use 1 for exact).
pub fn render_ascii(graph: &CommGraph, downsample: usize) -> String {
    let n = graph.n();
    let ds = downsample.max(1);
    let cells = n.div_ceil(ds);
    // Aggregate block volumes.
    let mut blocks = vec![0u64; cells * cells];
    let mut max_block = 0u64;
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let v = graph.edge(a, b).bytes;
            if v > 0 {
                let cell = (a / ds) * cells + b / ds;
                blocks[cell] += v;
                max_block = max_block.max(blocks[cell]);
            }
        }
    }
    let mut out = String::with_capacity(cells * (cells + 1));
    for row in 0..cells {
        for col in 0..cells {
            let v = blocks[row * cells + col];
            let ch = if v == 0 || max_block == 0 {
                SHADES[0]
            } else {
                // Log scale so small-but-present traffic stays visible.
                let frac = (v as f64).ln() / (max_block as f64).ln();
                let idx = 1 + (frac.clamp(0.0, 1.0) * (SHADES.len() - 2) as f64).round() as usize;
                SHADES[idx.min(SHADES.len() - 1)]
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Exports the byte-volume matrix as CSV (`src,dst,bytes,count,max_msg`),
/// active edges only, upper triangle (the matrix is symmetric).
pub fn to_csv(graph: &CommGraph) -> String {
    let mut out = String::from("src,dst,bytes,count,max_msg\n");
    let n = graph.n();
    for a in 0..n {
        for b in (a + 1)..n {
            let e = graph.edge(a, b);
            if e.is_active() {
                out.push_str(&format!("{a},{b},{},{},{}\n", e.bytes, e.count, e.max_msg));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ring_graph;

    #[test]
    fn ascii_dimensions() {
        let g = ring_graph(8, 1000);
        let art = render_ascii(&g, 1);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.chars().count() == 8));
    }

    #[test]
    fn ascii_diagonal_band_for_ring() {
        let g = ring_graph(6, 1000);
        let art = render_ascii(&g, 1);
        let grid: Vec<Vec<char>> = art.lines().map(|l| l.chars().collect()).collect();
        for i in 0..6usize {
            assert_eq!(grid[i][i], ' ', "no self traffic on the diagonal");
            assert_ne!(grid[i][(i + 1) % 6], ' ', "ring band present");
            assert_eq!(grid[i][(i + 3) % 6], ' ', "distant pairs silent");
        }
    }

    #[test]
    fn downsampling_shrinks_output() {
        let g = ring_graph(64, 1000);
        let art = render_ascii(&g, 4);
        assert_eq!(art.lines().count(), 16);
    }

    #[test]
    fn empty_graph_renders_blank() {
        let g = CommGraph::new(3);
        let art = render_ascii(&g, 1);
        assert!(art.chars().all(|c| c == ' ' || c == '\n'));
    }

    #[test]
    fn csv_lists_upper_triangle() {
        let mut g = CommGraph::new(3);
        g.add_message(0, 2, 500);
        g.add_message(1, 0, 100);
        let csv = to_csv(&g);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "src,dst,bytes,count,max_msg");
        assert_eq!(lines.len(), 3);
        assert!(lines.contains(&"0,1,100,1,100"));
        assert!(lines.contains(&"0,2,500,1,500"));
    }
}

/// Exports the communication graph in Graphviz DOT format (undirected,
/// edges weighted by kilobytes) for external visualization.
pub fn to_dot(graph: &CommGraph, name: &str) -> String {
    let mut out = format!("graph \"{name}\" {{\n  node [shape=circle];\n");
    let n = graph.n();
    for a in 0..n {
        for b in (a + 1)..n {
            let e = graph.edge(a, b);
            if e.is_active() {
                out.push_str(&format!(
                    "  {a} -- {b} [label=\"{}k\", weight={}];\n",
                    e.bytes / 1024,
                    (e.bytes / 1024).max(1)
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::generators::ring_graph;

    #[test]
    fn dot_output_is_well_formed() {
        let g = ring_graph(4, 10_240);
        let dot = to_dot(&g, "ring");
        assert!(dot.starts_with("graph \"ring\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches(" -- ").count(), 4, "one line per edge");
        assert!(dot.contains("0 -- 1 [label=\"10k\""));
    }

    #[test]
    fn empty_graph_dot() {
        let dot = to_dot(&CommGraph::new(2), "empty");
        assert_eq!(dot.matches(" -- ").count(), 0);
    }
}
