//! Cumulative buffer-size distributions (paper Figures 3 and 4).

use std::collections::BTreeMap;

/// A weighted histogram of message buffer sizes.
///
/// Backs the cumulatively-histogrammed buffer-size plots: Figure 3
/// (collective payloads across all codes) and Figure 4 (point-to-point
/// payloads per code).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BufferHistogram {
    /// size in bytes → number of calls with that buffer size.
    entries: BTreeMap<u64, u64>,
}

impl BufferHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` calls with the given buffer size.
    pub fn add(&mut self, bytes: u64, count: u64) {
        if count > 0 {
            *self.entries.entry(bytes).or_insert(0) += count;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &BufferHistogram) {
        for (&bytes, &count) in &other.entries {
            self.add(bytes, count);
        }
    }

    /// Total number of calls recorded.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// True if no calls were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct (size, count) pairs in ascending size order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.entries.iter().map(|(&b, &c)| (b, c))
    }

    /// Fraction of calls with buffer size ≤ `bytes` (the y-axis of the
    /// paper's cumulative plots), in `[0, 1]`.
    pub fn fraction_at_or_below(&self, bytes: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let below: u64 = self.entries.range(..=bytes).map(|(_, &c)| c).sum();
        below as f64 / total as f64
    }

    /// The cumulative distribution as (size, fraction ≤ size) points.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let total = self.total();
        let mut acc = 0u64;
        self.entries
            .iter()
            .map(|(&b, &c)| {
                acc += c;
                (b, acc as f64 / total as f64)
            })
            .collect()
    }

    /// Weighted p-th percentile buffer size (`p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (&bytes, &count) in &self.entries {
            acc += count;
            if acc >= target {
                return Some(bytes);
            }
        }
        self.entries.keys().next_back().copied()
    }

    /// Weighted median buffer size (Table 3's "median PTP buffer" /
    /// "median Col. buffer" columns).
    pub fn median(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Largest recorded buffer size.
    pub fn max(&self) -> Option<u64> {
        self.entries.keys().next_back().copied()
    }
}

impl FromIterator<(u64, u64)> for BufferHistogram {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut h = BufferHistogram::new();
        for (bytes, count) in iter {
            h.add(bytes, count);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut h = BufferHistogram::new();
        h.add(100, 3);
        h.add(100, 2);
        h.add(2048, 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.entries().count(), 2);
    }

    #[test]
    fn zero_count_is_ignored() {
        let mut h = BufferHistogram::new();
        h.add(64, 0);
        assert!(h.is_empty());
    }

    #[test]
    fn cumulative_fraction() {
        let h: BufferHistogram = [(8u64, 5u64), (2048, 4), (1 << 20, 1)]
            .into_iter()
            .collect();
        assert!((h.fraction_at_or_below(7) - 0.0).abs() < 1e-12);
        assert!((h.fraction_at_or_below(8) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_or_below(2048) - 0.9).abs() < 1e-12);
        assert!((h.fraction_at_or_below(u64::MAX) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_points_are_monotone_and_end_at_one() {
        let h: BufferHistogram = [(1u64, 1u64), (10, 2), (100, 3)].into_iter().collect();
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 3);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_and_percentiles() {
        let h: BufferHistogram = [(10u64, 1u64), (20, 1), (30, 1), (40, 1)]
            .into_iter()
            .collect();
        assert_eq!(h.median(), Some(20));
        assert_eq!(h.percentile(100.0), Some(40));
        assert_eq!(h.percentile(25.0), Some(10));
        assert_eq!(h.max(), Some(40));
    }

    #[test]
    fn weighted_median() {
        // 9 calls at 64 B, 1 call at 1 MB → median is 64.
        let h: BufferHistogram = [(64u64, 9u64), (1 << 20, 1)].into_iter().collect();
        assert_eq!(h.median(), Some(64));
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = BufferHistogram::new();
        assert_eq!(h.median(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.fraction_at_or_below(100), 0.0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a: BufferHistogram = [(8u64, 1u64)].into_iter().collect();
        let b: BufferHistogram = [(8u64, 2u64), (16, 1)].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 4);
        assert_eq!(a.fraction_at_or_below(8), 0.75);
    }
}
