//! Regular-topology detection and isotropy metrics.
//!
//! Paper §2.5 classifies applications by whether their communication pattern
//! is *isotropic* (topologically regular) and whether it embeds in a fixed
//! low-degree network. This module provides:
//!
//! * [`detect_structure`] — tests a communication graph against canonical
//!   regular topologies (ring, 2D/3D mesh and torus, hypercube, fully
//!   connected) under the natural row-major rank labeling. Applications
//!   decompose their domains row-major over ranks, so this captures "the
//!   communication pattern maps isomorphically onto a mesh" for real codes
//!   without solving general graph isomorphism (which is not known to be
//!   polynomial). A negative result therefore means "does not embed with the
//!   natural labeling", a deliberately conservative answer.
//! * [`isotropy`] — a `[0, 1]` regularity score from degree dispersion.

use crate::generators::{mesh3d_neighbors, torus3d_neighbors};
use crate::graph::CommGraph;

/// Detected regular structure of a communication graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructureClass {
    /// Degenerate: no communication edges at all.
    Empty,
    /// 1D ring (each task talks to exactly its two cyclic neighbours).
    Ring,
    /// Non-periodic mesh with the given dimensions (1-long dims dropped).
    Mesh3D(usize, usize, usize),
    /// Periodic torus with the given dimensions.
    Torus3D(usize, usize, usize),
    /// Hypercube of the given dimensionality.
    Hypercube(u32),
    /// Every pair of tasks communicates.
    FullyConnected,
    /// None of the canonical structures matched.
    Irregular,
}

impl std::fmt::Display for StructureClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructureClass::Empty => write!(f, "empty"),
            StructureClass::Ring => write!(f, "ring"),
            StructureClass::Mesh3D(x, y, z) => write!(f, "{x}x{y}x{z} mesh"),
            StructureClass::Torus3D(x, y, z) => write!(f, "{x}x{y}x{z} torus"),
            StructureClass::Hypercube(d) => write!(f, "{d}-cube"),
            StructureClass::FullyConnected => write!(f, "fully connected"),
            StructureClass::Irregular => write!(f, "irregular"),
        }
    }
}

/// Thresholded adjacency set of `v`, sorted.
fn adjacency(graph: &CommGraph, v: usize, cutoff: u64) -> Vec<usize> {
    let mut adj: Vec<usize> = graph
        .neighbors_thresholded(v, cutoff)
        .map(|(u, _)| u)
        .collect();
    adj.sort_unstable();
    adj
}

/// True if the graph's thresholded adjacency equals `expected` for every
/// vertex.
fn matches(graph: &CommGraph, cutoff: u64, expected: impl Fn(usize) -> Vec<usize>) -> bool {
    (0..graph.n()).all(|v| adjacency(graph, v, cutoff) == expected(v))
}

/// All factorizations of `n` into `(x, y, z)` with `x ≤ y ≤ z`.
fn factorizations3(n: usize) -> Vec<(usize, usize, usize)> {
    let mut out = vec![];
    let mut x = 1;
    while x * x * x <= n {
        if n.is_multiple_of(x) {
            let rest = n / x;
            let mut y = x;
            while y * y <= rest {
                if rest.is_multiple_of(y) {
                    out.push((x, y, rest / y));
                }
                y += 1;
            }
        }
        x += 1;
    }
    out
}

/// Tests a communication graph against the canonical regular topologies at a
/// message-size cutoff. See the module docs for the labeling caveat.
pub fn detect_structure(graph: &CommGraph, cutoff: u64) -> StructureClass {
    let n = graph.n();
    if n == 0 || (0..n).all(|v| graph.degree_thresholded(v, cutoff) == 0) {
        return StructureClass::Empty;
    }

    // Fully connected first: it subsumes every other pattern.
    if matches(graph, cutoff, |v| {
        (0..n).filter(|&u| u != v).collect::<Vec<_>>()
    }) {
        return StructureClass::FullyConnected;
    }

    // Ring (check before torus: a ring is a 1D torus).
    if n > 2
        && matches(graph, cutoff, |v| {
            let mut a = vec![(v + 1) % n, (v + n - 1) % n];
            a.sort_unstable();
            a.dedup();
            a
        })
    {
        return StructureClass::Ring;
    }

    // Hypercube.
    if n.is_power_of_two() && n >= 4 {
        let d = n.trailing_zeros();
        if matches(graph, cutoff, |v| {
            let mut a: Vec<usize> = (0..d).map(|b| v ^ (1 << b)).collect();
            a.sort_unstable();
            a
        }) {
            return StructureClass::Hypercube(d);
        }
    }

    // Meshes and torii over every factorization. A path reports as a
    // 1x1xN mesh; the 1x1xN torus never fires because the ring case above
    // already claimed it.
    for dims in factorizations3(n) {
        if matches(graph, cutoff, |v| mesh3d_neighbors(dims, v)) {
            return StructureClass::Mesh3D(dims.0, dims.1, dims.2);
        }
        if matches(graph, cutoff, |v| torus3d_neighbors(dims, v)) {
            return StructureClass::Torus3D(dims.0, dims.1, dims.2);
        }
    }

    StructureClass::Irregular
}

/// Degree-dispersion isotropy score in `[0, 1]`.
///
/// 1.0 means every task has the same thresholded degree (a topologically
/// regular, *isotropic* pattern in the paper's vocabulary); the score falls
/// with the coefficient of variation of the degree distribution. Graphs with
/// no edges score 0.
pub fn isotropy(graph: &CommGraph, cutoff: u64) -> f64 {
    let degrees: Vec<f64> = (0..graph.n())
        .map(|v| graph.degree_thresholded(v, cutoff) as f64)
        .collect();
    let n = degrees.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = degrees.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = degrees.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
    let cv = var.sqrt() / mean;
    (1.0 - cv).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::*;

    #[test]
    fn detects_ring() {
        let g = ring_graph(8, 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::Ring);
    }

    #[test]
    fn detects_mesh3d() {
        let g = mesh3d_graph((4, 4, 4), 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::Mesh3D(4, 4, 4));
    }

    #[test]
    fn detects_2d_mesh_as_flat_3d() {
        let g = mesh3d_graph((1, 4, 4), 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::Mesh3D(1, 4, 4));
    }

    #[test]
    fn detects_torus() {
        let g = torus3d_graph((4, 4, 4), 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::Torus3D(4, 4, 4));
    }

    #[test]
    fn detects_hypercube() {
        let g = hypercube_graph(16, 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::Hypercube(4));
    }

    #[test]
    fn detects_fully_connected() {
        let g = complete_graph(6, 1000);
        assert_eq!(detect_structure(&g, 0), StructureClass::FullyConnected);
    }

    #[test]
    fn irregular_pattern_detected() {
        let mut g = ring_graph(8, 1000);
        g.add_message(0, 4, 1000); // chord breaks the ring
        assert_eq!(detect_structure(&g, 0), StructureClass::Irregular);
    }

    #[test]
    fn empty_graph() {
        let g = CommGraph::new(4);
        assert_eq!(detect_structure(&g, 0), StructureClass::Empty);
    }

    #[test]
    fn cutoff_reveals_structure() {
        // A mesh of big messages polluted with tiny all-pairs control
        // traffic is fully connected unthresholded but a mesh at the BDP
        // cutoff. (2x2x3 rather than 2x2x2, which is a 3-cube.)
        let mut g = mesh3d_graph((2, 2, 3), 100_000);
        for a in 0..12 {
            for b in (a + 1)..12 {
                g.add_message(a, b, 16);
            }
        }
        assert_eq!(detect_structure(&g, 0), StructureClass::FullyConnected);
        assert_eq!(detect_structure(&g, 2048), StructureClass::Mesh3D(2, 2, 3));
    }

    #[test]
    fn isotropy_scores() {
        assert!((isotropy(&torus3d_graph((4, 4, 4), 100), 0) - 1.0).abs() < 1e-12);
        let mesh = mesh3d_graph((4, 4, 4), 100);
        let iso_mesh = isotropy(&mesh, 0);
        assert!(iso_mesh > 0.7 && iso_mesh < 1.0, "mesh has boundary nodes");
        // Star graph: extremely anisotropic.
        let mut star = CommGraph::new(16);
        for i in 1..16 {
            star.add_message(0, i, 100);
        }
        assert!(isotropy(&star, 0) < 0.2);
        assert_eq!(isotropy(&CommGraph::new(4), 0), 0.0);
    }

    #[test]
    fn factorizations_complete() {
        let f = factorizations3(12);
        assert!(f.contains(&(1, 3, 4)));
        assert!(f.contains(&(2, 2, 3)));
        assert!(f.contains(&(1, 1, 12)));
        for (x, y, z) in f {
            assert_eq!(x * y * z, 12);
            assert!(x <= y && y <= z);
        }
    }
}

/// Traffic-weighted isotropy in `[0, 1]`.
///
/// Degree isotropy ([`isotropy`]) sees only *who* talks; this variant also
/// asks whether nodes move similar *volumes* — a pattern can be
/// degree-regular yet concentrate bytes on a few hot nodes (GTC's leaders).
/// 1.0 means every node sends/receives the same number of bytes.
pub fn traffic_isotropy(graph: &CommGraph, cutoff: u64) -> f64 {
    let volumes: Vec<f64> = (0..graph.n())
        .map(|v| {
            graph
                .neighbors_thresholded(v, cutoff)
                .map(|(_, e)| e.bytes as f64)
                .sum()
        })
        .collect();
    let n = volumes.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean = volumes.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = volumes.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
    (1.0 - var.sqrt() / mean).max(0.0)
}

/// Per-degree node counts at a cutoff: `result[d]` = how many nodes have
/// thresholded degree `d`. Useful for seeing max/avg divergence at a glance
/// (the case-iii signature is a heavy head plus a long thin tail).
pub fn degree_histogram(graph: &CommGraph, cutoff: u64) -> Vec<usize> {
    let mut hist = vec![0usize; graph.n().max(1)];
    for v in 0..graph.n() {
        hist[graph.degree_thresholded(v, cutoff)] += 1;
    }
    while hist.len() > 1 && *hist.last().expect("non-empty") == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod weighted_tests {
    use super::*;
    use crate::generators::{ring_graph, torus3d_graph};

    #[test]
    fn uniform_traffic_is_isotropic() {
        let g = torus3d_graph((4, 4, 4), 100_000);
        assert!((traffic_isotropy(&g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_node_lowers_traffic_isotropy_but_not_degree() {
        // Ring where node 0's two edges are 100x heavier.
        let mut g = CommGraph::new(8);
        for v in 0..8usize {
            let bytes = if v == 0 || v == 7 { 1_000_000 } else { 10_000 };
            g.add_message(v, (v + 1) % 8, bytes);
        }
        let deg_iso = isotropy(&g, 0);
        let vol_iso = traffic_isotropy(&g, 0);
        assert!((deg_iso - 1.0).abs() < 1e-12, "degree-regular");
        assert!(vol_iso < 0.6, "volume-concentrated: {vol_iso}");
    }

    #[test]
    fn degree_histogram_shapes() {
        let ring = ring_graph(8, 1000);
        assert_eq!(degree_histogram(&ring, 0), vec![0, 0, 8]);
        // Star: one hub at degree 7, seven leaves at degree 1.
        let mut star = CommGraph::new(8);
        for i in 1..8 {
            star.add_message(0, i, 1000);
        }
        let h = degree_histogram(&star, 0);
        assert_eq!(h[1], 7);
        assert_eq!(h[7], 1);
        assert_eq!(h.iter().sum::<usize>(), 8);
        // Cutoff empties it down to degree 0.
        assert_eq!(degree_histogram(&star, 1 << 20), vec![8]);
    }

    #[test]
    fn empty_graph_metrics() {
        let g = CommGraph::new(3);
        assert_eq!(traffic_isotropy(&g, 0), 0.0);
        assert_eq!(degree_histogram(&g, 0), vec![3]);
    }
}
