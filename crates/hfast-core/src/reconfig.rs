//! Runtime topology adaptation (paper §2.3).
//!
//! "Initially, the circuit switches can be used to provision densely-packed
//! 3D mesh communication topologies … as data about messaging patterns is
//! accumulated, the topology can be adjusted at discrete synchronization
//! points to better match the measured communication requirements."
//!
//! [`ReconfigEngine`] starts from that default mesh provisioning, measures
//! how much of the observed above-cutoff traffic actually has a dedicated
//! circuit, and re-provisions at synchronization points, accounting for the
//! circuits changed and the milliseconds of switch reconfiguration they
//! cost.

use std::sync::Arc;

use hfast_topology::generators::{balanced_dims3, mesh3d_graph};
use hfast_topology::CommGraph;
use hfast_trace::{engine_span_id, TraceRecorder, Track};

use crate::obs::ReconfigObs;
use crate::provision::{ProvisionConfig, Provisioning};
use crate::switch::CircuitSwitch;

/// One adaptation step's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigStep {
    /// Fraction of observed above-cutoff bytes with a dedicated route
    /// before adapting.
    pub coverage_before: f64,
    /// The same fraction after adapting (1.0 unless capacity was exceeded).
    pub coverage_after: f64,
    /// Circuits torn down plus circuits newly patched.
    pub circuits_changed: usize,
    /// Reconfiguration latency paid at the synchronization point.
    pub reconfig_time_ns: u64,
}

impl ReconfigStep {
    /// The outcome of a *fault-driven* mid-run re-provisioning: `circuits`
    /// failed circuits are repatched through spare switch ports at a
    /// synchronization point, paying one parallel
    /// [`CircuitSwitch::RECONFIG_LATENCY_NS`] when anything moved at all.
    ///
    /// [`observe_and_adapt`](ReconfigEngine::observe_and_adapt) covers the
    /// planned case (traffic drifted, re-match the measured graph); this
    /// constructor covers the unplanned one (a component died mid-run) with
    /// the same accounting, so the simulator's runtime fault events and the
    /// engine's sync-point steps export through one `ReconfigStep` shape.
    pub fn repatch(circuits: usize, coverage_before: f64, coverage_after: f64) -> ReconfigStep {
        ReconfigStep {
            coverage_before,
            coverage_after,
            circuits_changed: circuits,
            reconfig_time_ns: if circuits > 0 {
                CircuitSwitch::RECONFIG_LATENCY_NS
            } else {
                0
            },
        }
    }
}

impl hfast_obs::ToJsonl for ReconfigStep {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("event", "reconfig_step")
            .f64_p("coverage_before", self.coverage_before, 4)
            .f64_p("coverage_after", self.coverage_after, 4)
            .usize("circuits_changed", self.circuits_changed)
            .u64("reconfig_time_ns", self.reconfig_time_ns)
            .finish()
    }
}

/// Span-id namespace for sync-point adaptation spans: offset far past any
/// simulator flow or repatch index, so one [`TraceRecorder`] can hold a
/// reconfig engine and a netsim replay without id collisions.
const ADAPT_SPAN_OFFSET: u64 = 1 << 48;

/// Adaptive provisioning engine.
#[derive(Debug, Clone)]
pub struct ReconfigEngine {
    config: ProvisionConfig,
    current: Provisioning,
    steps: Vec<ReconfigStep>,
    obs: Option<ReconfigObs>,
    trace: Option<Arc<TraceRecorder>>,
}

impl ReconfigEngine {
    /// Starts with the default densely-packed 3D mesh provisioning for `n`
    /// nodes (§2.3's initial state).
    pub fn initial_mesh(n: usize, config: ProvisionConfig) -> Self {
        let dims = balanced_dims3(n);
        // Provision as though the application were a mesh of large messages.
        let assumed = mesh3d_graph(dims, config.cutoff.max(1));
        ReconfigEngine {
            config,
            current: Provisioning::per_node(&assumed, config),
            steps: Vec::new(),
            obs: hfast_obs::enabled().then(ReconfigObs::new),
            trace: None,
        }
    }

    /// Attaches an explicit [`ReconfigObs`] regardless of the `HFAST_OBS`
    /// switch (overwrites any implicit one).
    pub fn with_obs(mut self, obs: ReconfigObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The attached observability, if any.
    pub fn obs(&self) -> Option<&ReconfigObs> {
        self.obs.as_ref()
    }

    /// Records one `adapt` span per synchronization point into `recorder`
    /// on the reconfig track: `t_ns` is the sync-point index (the engine's
    /// logical clock — it has no wall clock), the duration is the
    /// reconfiguration latency paid, and the fields carry circuit-change
    /// and coverage figures. Span ids derive from the sync-point index, so
    /// identical adaptation sequences trace identically.
    pub fn with_trace(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// The active provisioning.
    pub fn current(&self) -> &Provisioning {
        &self.current
    }

    /// Steps taken so far.
    pub fn steps(&self) -> &[ReconfigStep] {
        &self.steps
    }

    /// Fraction of `observed`'s above-cutoff bytes whose endpoints have a
    /// dedicated route in the current provisioning.
    pub fn coverage(&self, observed: &CommGraph) -> f64 {
        let mut covered = 0u64;
        let mut total = 0u64;
        for a in 0..observed.n() {
            for (b, e) in observed.neighbors(a) {
                if b <= a || e.max_msg < self.config.cutoff {
                    continue;
                }
                total += e.bytes;
                if self.current.route(a, b).is_some() {
                    covered += e.bytes;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Adapts the provisioning to an observed communication graph at a
    /// synchronization point.
    ///
    /// The circuit-change count models the MEMS mirrors that must move: each
    /// changed circuit pays [`CircuitSwitch::RECONFIG_LATENCY_NS`], though
    /// mirrors move in parallel so wall-clock cost is one reconfiguration
    /// latency when anything changed at all — both figures are reported.
    pub fn observe_and_adapt(&mut self, observed: &CommGraph) -> ReconfigStep {
        let coverage_before = self.coverage(observed);
        let old_circuits: std::collections::BTreeSet<_> = self.current.circuit.circuits().collect();
        let next = Provisioning::per_node(observed, self.config);
        let new_circuits: std::collections::BTreeSet<_> = next.circuit.circuits().collect();
        let removed = old_circuits.difference(&new_circuits).count();
        let added = new_circuits.difference(&old_circuits).count();
        self.current = next;
        let coverage_after = self.coverage(observed);
        let step = ReconfigStep {
            coverage_before,
            coverage_after,
            circuits_changed: removed + added,
            reconfig_time_ns: if removed + added > 0 {
                CircuitSwitch::RECONFIG_LATENCY_NS
            } else {
                0
            },
        };
        self.steps.push(step);
        let idx = self.steps.len() as u64 - 1;
        if let Some(obs) = &self.obs {
            obs.record_step(idx, &step);
        }
        if let Some(tr) = &self.trace {
            tr.record_span(
                Track::Reconfig,
                "adapt",
                idx,
                step.reconfig_time_ns,
                engine_span_id(ADAPT_SPAN_OFFSET + idx),
                0,
                vec![
                    ("circuits_changed", step.circuits_changed as u64),
                    (
                        "coverage_before_permille",
                        (step.coverage_before * 1000.0) as u64,
                    ),
                    (
                        "coverage_after_permille",
                        (step.coverage_after * 1000.0) as u64,
                    ),
                ],
            );
        }
        step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{mesh3d_graph, ring_graph};

    fn cfg() -> ProvisionConfig {
        ProvisionConfig::default()
    }

    #[test]
    fn repatch_step_accounts_like_adaptation() {
        let step = ReconfigStep::repatch(3, 0.4, 1.0);
        assert_eq!(step.circuits_changed, 3);
        assert_eq!(step.reconfig_time_ns, CircuitSwitch::RECONFIG_LATENCY_NS);
        assert!((step.coverage_after - 1.0).abs() < 1e-12);
        let noop = ReconfigStep::repatch(0, 1.0, 1.0);
        assert_eq!(noop.reconfig_time_ns, 0, "nothing moved, nothing paid");
    }

    #[test]
    fn initial_mesh_covers_mesh_traffic() {
        let engine = ReconfigEngine::initial_mesh(64, cfg());
        let observed = mesh3d_graph((4, 4, 4), 300 << 10);
        assert!(
            (engine.coverage(&observed) - 1.0).abs() < 1e-12,
            "a mesh application needs no adaptation"
        );
    }

    #[test]
    fn scattered_pattern_starts_uncovered_then_adapts() {
        // LBMHD-like scattered partners do not match the default mesh.
        let n = 64;
        let mut observed = CommGraph::new(n);
        for v in 0..n {
            for j in [11usize, 17, 23] {
                let u = (v + j) % n;
                observed.add_message(v, u, 800 << 10);
            }
        }
        let mut engine = ReconfigEngine::initial_mesh(n, cfg());
        let before = engine.coverage(&observed);
        assert!(
            before < 0.5,
            "mesh default misses scattered traffic: {before}"
        );
        let step = engine.observe_and_adapt(&observed);
        assert!((step.coverage_after - 1.0).abs() < 1e-12);
        assert!(step.circuits_changed > 0);
        assert!(step.reconfig_time_ns > 0);
        assert_eq!(engine.steps().len(), 1);
    }

    #[test]
    fn stable_pattern_converges_to_zero_changes() {
        let observed = ring_graph(32, 1 << 20);
        let mut engine = ReconfigEngine::initial_mesh(32, cfg());
        engine.observe_and_adapt(&observed);
        let second = engine.observe_and_adapt(&observed);
        assert_eq!(second.circuits_changed, 0, "fixed point reached");
        assert_eq!(second.reconfig_time_ns, 0);
        assert!((second.coverage_before - 1.0).abs() < 1e-12);
    }

    #[test]
    fn attached_obs_records_each_sync_point() {
        let n = 16;
        let mut engine =
            ReconfigEngine::initial_mesh(n, cfg()).with_obs(crate::obs::ReconfigObs::new());
        let ring = ring_graph(n, 1 << 20);
        engine.observe_and_adapt(&ring);
        engine.observe_and_adapt(&ring);
        let obs = engine.obs().expect("explicitly attached");
        assert_eq!(obs.adapts.get(), 2);
        assert_eq!(
            obs.circuits_changed.get() as usize,
            engine.steps()[0].circuits_changed
        );
        let evs = obs.timeline.snapshot();
        assert_eq!(evs[0].t_ns, 0, "timeline stamped with sync-point index");
        assert_eq!(evs[1].t_ns, 1);
    }

    #[test]
    fn attached_trace_records_adapt_spans() {
        let n = 16;
        let rec = Arc::new(TraceRecorder::new());
        let mut engine = ReconfigEngine::initial_mesh(n, cfg()).with_trace(Arc::clone(&rec));
        let ring = ring_graph(n, 1 << 20);
        engine.observe_and_adapt(&ring);
        engine.observe_and_adapt(&ring);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == Track::Reconfig));
        assert_eq!(spans[0].name, "adapt");
        assert_eq!(spans[0].t_ns, 0, "stamped with sync-point index");
        assert_eq!(spans[1].t_ns, 1);
        assert_eq!(spans[0].span_id, engine_span_id(ADAPT_SPAN_OFFSET));
        assert!(spans[0].dur_ns > 0, "first adaptation moved circuits");
        assert_eq!(spans[1].dur_ns, 0, "fixed point pays nothing");
        let circuits = spans[0]
            .fields
            .iter()
            .find(|(k, _)| *k == "circuits_changed")
            .expect("field present")
            .1;
        assert_eq!(circuits as usize, engine.steps()[0].circuits_changed);
    }

    #[test]
    fn empty_observation_is_fully_covered() {
        let engine = ReconfigEngine::initial_mesh(8, cfg());
        assert_eq!(engine.coverage(&CommGraph::new(8)), 1.0);
    }

    #[test]
    fn adaptation_tracks_phase_changes() {
        // Phase 1: ring. Phase 2: shifted pattern. Both adapt to full
        // coverage; the second adaptation changes circuits again.
        let n = 16;
        let mut engine = ReconfigEngine::initial_mesh(n, cfg());
        let ring = ring_graph(n, 1 << 20);
        let s1 = engine.observe_and_adapt(&ring);
        assert!((s1.coverage_after - 1.0).abs() < 1e-12);
        let mut shifted = CommGraph::new(n);
        for v in 0..n {
            shifted.add_message(v, (v + 5) % n, 1 << 20);
        }
        let s2 = engine.observe_and_adapt(&shifted);
        assert!(s2.circuits_changed > 0);
        assert!((s2.coverage_after - 1.0).abs() < 1e-12);
    }
}
