//! Runtime topology adaptation (paper §2.3).
//!
//! "Initially, the circuit switches can be used to provision densely-packed
//! 3D mesh communication topologies … as data about messaging patterns is
//! accumulated, the topology can be adjusted at discrete synchronization
//! points to better match the measured communication requirements."
//!
//! [`ReconfigEngine`] starts from that default mesh provisioning, measures
//! how much of the observed above-cutoff traffic actually has a dedicated
//! circuit, and re-provisions at synchronization points through a pluggable
//! [`Provisioner`] strategy. Traffic observed between sync points
//! accumulates as a [`GraphDelta`], so strategies with an incremental
//! `reprovision` path (the default [`Strategy::PaperLinear`]) adapt in
//! O(changed edges) rather than O(graph).

use std::sync::Arc;

use hfast_topology::generators::{balanced_dims3, mesh3d_graph};
use hfast_topology::CommGraph;
use hfast_trace::{engine_span_id, TraceRecorder, Track};

use crate::obs::ReconfigObs;
use crate::provision::{ProvisionConfig, Provisioning};
use crate::provisioner::{GraphDelta, Provisioner, Strategy};
use crate::switch::CircuitSwitch;

/// One adaptation step's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigStep {
    /// Fraction of observed above-cutoff bytes with a dedicated route
    /// before adapting.
    pub coverage_before: f64,
    /// The same fraction after adapting (1.0 unless capacity was exceeded).
    pub coverage_after: f64,
    /// Circuits torn down plus circuits newly patched. Full rebuilds diff
    /// the complete crossbar state; incremental steps count re-patched
    /// edge circuits.
    pub circuits_changed: usize,
    /// Reconfiguration latency paid at the synchronization point.
    pub reconfig_time_ns: u64,
    /// Which [`Provisioner`] produced the step (`"repatch"` for
    /// fault-driven mid-run repairs).
    pub strategy: &'static str,
    /// Provisioned edges whose circuits were added, removed, or moved.
    pub edges_touched: usize,
}

impl ReconfigStep {
    /// The outcome of a *fault-driven* mid-run re-provisioning: `circuits`
    /// failed circuits are repatched through spare switch ports at a
    /// synchronization point, paying one parallel
    /// [`CircuitSwitch::RECONFIG_LATENCY_NS`] when anything moved at all.
    ///
    /// [`observe_and_adapt`](ReconfigEngine::observe_and_adapt) covers the
    /// planned case (traffic drifted, re-match the measured graph); this
    /// constructor covers the unplanned one (a component died mid-run) with
    /// the same accounting, so the simulator's runtime fault events and the
    /// engine's sync-point steps export through one `ReconfigStep` shape.
    pub fn repatch(circuits: usize, coverage_before: f64, coverage_after: f64) -> ReconfigStep {
        ReconfigStep {
            coverage_before,
            coverage_after,
            circuits_changed: circuits,
            reconfig_time_ns: if circuits > 0 {
                CircuitSwitch::RECONFIG_LATENCY_NS
            } else {
                0
            },
            strategy: "repatch",
            edges_touched: circuits,
        }
    }
}

impl hfast_obs::ToJsonl for ReconfigStep {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("event", "reconfig_step")
            .str("strategy", self.strategy)
            .f64_p("coverage_before", self.coverage_before, 4)
            .f64_p("coverage_after", self.coverage_after, 4)
            .usize("circuits_changed", self.circuits_changed)
            .usize("edges_touched", self.edges_touched)
            .u64("reconfig_time_ns", self.reconfig_time_ns)
            .finish()
    }
}

/// How much cached routing state an adaptation step invalidated: everything,
/// or just the listed node pairs (the payoff of an incremental
/// [`Provisioner::reprovision`] — netsim's `PathCache` can evict exactly
/// these pairs instead of flushing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdaptScope {
    /// The provisioning was rebuilt from scratch; all routes may differ.
    Full,
    /// Only these `(min, max)` pairs' routes may differ.
    Pairs(Vec<(usize, usize)>),
}

/// Span-id namespace for sync-point adaptation spans: offset far past any
/// simulator flow or repatch index, so one [`TraceRecorder`] can hold a
/// reconfig engine and a netsim replay without id collisions.
const ADAPT_SPAN_OFFSET: u64 = 1 << 48;

/// Builds a [`ReconfigEngine`]: one path folding the strategy selection,
/// observability, and tracing options that used to be scattered across
/// `with_*` methods.
///
/// ```
/// use hfast_core::{ProvisionConfig, ReconfigEngine, Strategy};
/// let engine = ReconfigEngine::builder(64, ProvisionConfig::default())
///     .strategy(Strategy::PaperLinear)
///     .build();
/// assert_eq!(engine.strategy_name(), "paper_linear");
/// ```
#[derive(Debug)]
pub struct ReconfigBuilder {
    n: usize,
    config: ProvisionConfig,
    provisioner: Box<dyn Provisioner>,
    obs: Option<ReconfigObs>,
    trace: Option<Arc<TraceRecorder>>,
}

impl ReconfigBuilder {
    /// Selects a built-in strategy (default: [`Strategy::PaperLinear`], the
    /// paper's heuristic).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.provisioner = strategy.provisioner();
        self
    }

    /// Installs a custom [`Provisioner`] implementation.
    pub fn provisioner(mut self, provisioner: Box<dyn Provisioner>) -> Self {
        self.provisioner = provisioner;
        self
    }

    /// Attaches an explicit [`ReconfigObs`] regardless of the `HFAST_OBS`
    /// switch (overwrites any implicit one).
    pub fn obs(mut self, obs: ReconfigObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Records one `adapt` span per synchronization point into `recorder`
    /// on the reconfig track: `t_ns` is the sync-point index (the engine's
    /// logical clock — it has no wall clock), the duration is the
    /// reconfiguration latency paid, and the fields carry circuit-change
    /// and coverage figures. Span ids derive from the sync-point index, so
    /// identical adaptation sequences trace identically.
    pub fn trace(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// Provisions §2.3's initial densely-packed 3D mesh assumption through
    /// the selected strategy and returns the ready engine.
    pub fn build(self) -> ReconfigEngine {
        let dims = balanced_dims3(self.n);
        // Provision as though the application were a mesh of large messages.
        let assumed = mesh3d_graph(dims, self.config.cutoff.max(1));
        let current = self.provisioner.provision(&assumed, self.config);
        ReconfigEngine {
            config: self.config,
            provisioner: self.provisioner,
            current,
            observed: assumed,
            pending: GraphDelta::new(),
            steps: Vec::new(),
            obs: self
                .obs
                .or_else(|| hfast_obs::enabled().then(ReconfigObs::new)),
            trace: self.trace,
        }
    }
}

/// Adaptive provisioning engine.
#[derive(Debug, Clone)]
pub struct ReconfigEngine {
    config: ProvisionConfig,
    provisioner: Box<dyn Provisioner>,
    current: Provisioning,
    /// The engine's running view of the application's traffic: the last
    /// full observation plus everything [`ingest`](Self::ingest)ed since.
    observed: CommGraph,
    /// Changes accumulated since the last synchronization point.
    pending: GraphDelta,
    steps: Vec<ReconfigStep>,
    obs: Option<ReconfigObs>,
    trace: Option<Arc<TraceRecorder>>,
}

impl ReconfigEngine {
    /// One builder path for strategy, observability, and tracing.
    pub fn builder(n: usize, config: ProvisionConfig) -> ReconfigBuilder {
        ReconfigBuilder {
            n,
            config,
            provisioner: Strategy::PaperLinear.provisioner(),
            obs: None,
            trace: None,
        }
    }

    /// Starts with the default densely-packed 3D mesh provisioning for `n`
    /// nodes (§2.3's initial state) under the default strategy — shorthand
    /// for `ReconfigEngine::builder(n, config).build()`.
    pub fn initial_mesh(n: usize, config: ProvisionConfig) -> Self {
        Self::builder(n, config).build()
    }

    /// Attaches an explicit [`ReconfigObs`].
    #[deprecated(since = "0.7.0", note = "use `ReconfigEngine::builder(..).obs(..)`")]
    pub fn with_obs(mut self, obs: ReconfigObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a trace recorder.
    #[deprecated(since = "0.7.0", note = "use `ReconfigEngine::builder(..).trace(..)`")]
    pub fn with_trace(mut self, recorder: Arc<TraceRecorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// The attached observability, if any.
    pub fn obs(&self) -> Option<&ReconfigObs> {
        self.obs.as_ref()
    }

    /// The active provisioning.
    pub fn current(&self) -> &Provisioning {
        &self.current
    }

    /// The active strategy's name.
    pub fn strategy_name(&self) -> &'static str {
        self.provisioner.name()
    }

    /// Steps taken so far.
    pub fn steps(&self) -> &[ReconfigStep] {
        &self.steps
    }

    /// Changed pairs waiting for the next synchronization point.
    pub fn pending_changes(&self) -> usize {
        self.pending.len()
    }

    /// Fraction of `observed`'s above-cutoff bytes whose endpoints have a
    /// dedicated route in the current provisioning.
    pub fn coverage(&self, observed: &CommGraph) -> f64 {
        let mut covered = 0u64;
        let mut total = 0u64;
        for a in 0..observed.n() {
            for (b, e) in observed.neighbors(a) {
                if b <= a || e.max_msg < self.config.cutoff {
                    continue;
                }
                total += e.bytes;
                if self.current.route(a, b).is_some() {
                    covered += e.bytes;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Folds one observed message into the engine's running comm graph and
    /// the delta pending for the next [`sync`](Self::sync) point.
    pub fn ingest(&mut self, a: usize, b: usize, bytes: u64) {
        if a == b || a >= self.observed.n() || b >= self.observed.n() {
            return;
        }
        self.observed.add_message(a, b, bytes);
        self.pending.note(a, b, *self.observed.edge(a, b));
    }

    /// Synchronization point: adapts the provisioning to everything
    /// [`ingest`](Self::ingest)ed since the last sync, through the
    /// strategy's incremental path when it has one. Returns the step and
    /// the route-invalidation scope (the pairs a path cache must evict).
    pub fn sync(&mut self) -> (ReconfigStep, AdaptScope) {
        let delta = std::mem::take(&mut self.pending);
        self.adapt_with(&delta)
    }

    /// Adapts the provisioning to an observed communication graph at a
    /// synchronization point.
    ///
    /// The observation replaces the engine's running view; the difference
    /// between the two feeds the strategy's incremental path. The
    /// circuit-change count models the MEMS mirrors that must move: each
    /// changed circuit pays [`CircuitSwitch::RECONFIG_LATENCY_NS`], though
    /// mirrors move in parallel so wall-clock cost is one reconfiguration
    /// latency when anything changed at all — both figures are reported.
    pub fn observe_and_adapt(&mut self, observed: &CommGraph) -> ReconfigStep {
        let delta = GraphDelta::diff(&self.observed, observed);
        self.observed = observed.clone();
        self.pending = GraphDelta::new();
        self.adapt_with(&delta).0
    }

    fn adapt_with(&mut self, delta: &GraphDelta) -> (ReconfigStep, AdaptScope) {
        let coverage_before = self.coverage(&self.observed);
        let placeholder =
            crate::provision::build_clustered(&CommGraph::new(0), self.config, Vec::new());
        let prev = std::mem::replace(&mut self.current, placeholder);
        let (circuits_changed, outcome) = if delta.is_empty() {
            // Nothing moved; skip the strategy entirely.
            self.current = prev;
            (0, None)
        } else {
            let old_circuits: std::collections::BTreeSet<_> = prev.circuit.circuits().collect();
            let out = self.provisioner.reprovision(prev, &self.observed, delta);
            let changed = if out.full_rebuild {
                let new_circuits: std::collections::BTreeSet<_> =
                    out.provisioning.circuit.circuits().collect();
                old_circuits.symmetric_difference(&new_circuits).count()
            } else {
                out.edges_touched
            };
            self.current = out.provisioning.clone();
            (changed, Some(out))
        };
        let coverage_after = self.coverage(&self.observed);
        let (strategy, edges_touched, scope) = match outcome {
            None => (self.provisioner.name(), 0, AdaptScope::Pairs(Vec::new())),
            Some(out) if out.full_rebuild => (out.strategy, out.edges_touched, AdaptScope::Full),
            Some(out) => (
                out.strategy,
                out.edges_touched,
                AdaptScope::Pairs(out.touched_pairs),
            ),
        };
        let step = ReconfigStep {
            coverage_before,
            coverage_after,
            circuits_changed,
            reconfig_time_ns: if circuits_changed > 0 {
                CircuitSwitch::RECONFIG_LATENCY_NS
            } else {
                0
            },
            strategy,
            edges_touched,
        };
        self.steps.push(step);
        let idx = self.steps.len() as u64 - 1;
        if let Some(obs) = &self.obs {
            obs.record_step(idx, &step);
        }
        if let Some(tr) = &self.trace {
            tr.record_span(
                Track::Reconfig,
                "adapt",
                idx,
                step.reconfig_time_ns,
                engine_span_id(ADAPT_SPAN_OFFSET + idx),
                0,
                vec![
                    ("circuits_changed", step.circuits_changed as u64),
                    ("edges_touched", step.edges_touched as u64),
                    (
                        "coverage_before_permille",
                        (step.coverage_before * 1000.0) as u64,
                    ),
                    (
                        "coverage_after_permille",
                        (step.coverage_after * 1000.0) as u64,
                    ),
                ],
            );
        }
        (step, scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{mesh3d_graph, ring_graph};

    fn cfg() -> ProvisionConfig {
        ProvisionConfig::default()
    }

    #[test]
    fn repatch_step_accounts_like_adaptation() {
        let step = ReconfigStep::repatch(3, 0.4, 1.0);
        assert_eq!(step.circuits_changed, 3);
        assert_eq!(step.reconfig_time_ns, CircuitSwitch::RECONFIG_LATENCY_NS);
        assert!((step.coverage_after - 1.0).abs() < 1e-12);
        assert_eq!(step.strategy, "repatch");
        assert_eq!(step.edges_touched, 3);
        let noop = ReconfigStep::repatch(0, 1.0, 1.0);
        assert_eq!(noop.reconfig_time_ns, 0, "nothing moved, nothing paid");
    }

    #[test]
    fn initial_mesh_covers_mesh_traffic() {
        let engine = ReconfigEngine::initial_mesh(64, cfg());
        let observed = mesh3d_graph((4, 4, 4), 300 << 10);
        assert!(
            (engine.coverage(&observed) - 1.0).abs() < 1e-12,
            "a mesh application needs no adaptation"
        );
    }

    #[test]
    fn scattered_pattern_starts_uncovered_then_adapts() {
        // LBMHD-like scattered partners do not match the default mesh.
        let n = 64;
        let mut observed = CommGraph::new(n);
        for v in 0..n {
            for j in [11usize, 17, 23] {
                let u = (v + j) % n;
                observed.add_message(v, u, 800 << 10);
            }
        }
        let mut engine = ReconfigEngine::initial_mesh(n, cfg());
        let before = engine.coverage(&observed);
        assert!(
            before < 0.5,
            "mesh default misses scattered traffic: {before}"
        );
        let step = engine.observe_and_adapt(&observed);
        assert!((step.coverage_after - 1.0).abs() < 1e-12);
        assert!(step.circuits_changed > 0);
        assert!(step.reconfig_time_ns > 0);
        assert_eq!(step.strategy, "paper_linear");
        assert!(step.edges_touched > 0);
        assert_eq!(engine.steps().len(), 1);
    }

    #[test]
    fn stable_pattern_converges_to_zero_changes() {
        let observed = ring_graph(32, 1 << 20);
        let mut engine = ReconfigEngine::initial_mesh(32, cfg());
        engine.observe_and_adapt(&observed);
        let second = engine.observe_and_adapt(&observed);
        assert_eq!(second.circuits_changed, 0, "fixed point reached");
        assert_eq!(second.reconfig_time_ns, 0);
        assert_eq!(second.edges_touched, 0);
        assert!((second.coverage_before - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ingest_then_sync_adapts_incrementally() {
        let n = 32;
        let ring = ring_graph(n, 1 << 20);
        let mut engine = ReconfigEngine::initial_mesh(n, cfg());
        engine.observe_and_adapt(&ring);
        // A new heavy chord appears between sync points.
        engine.ingest(3, 19, 1 << 20);
        assert_eq!(engine.pending_changes(), 1);
        let (step, scope) = engine.sync();
        assert_eq!(engine.pending_changes(), 0);
        assert!(step.edges_touched >= 1);
        assert_eq!(step.strategy, "paper_linear");
        match scope {
            AdaptScope::Pairs(pairs) => {
                assert!(pairs.contains(&(3, 19)), "touched pairs include the chord")
            }
            AdaptScope::Full => panic!("one chord must not trigger a full rebuild"),
        }
        assert!(engine.current().route(3, 19).is_some());
        // An idle sync is free.
        let (idle, idle_scope) = engine.sync();
        assert_eq!(idle.circuits_changed, 0);
        assert_eq!(idle_scope, AdaptScope::Pairs(Vec::new()));
    }

    #[test]
    fn builder_selects_strategy() {
        let n = 16;
        let ring = ring_graph(n, 1 << 20);
        for s in Strategy::ALL {
            let mut engine = ReconfigEngine::builder(n, cfg()).strategy(s).build();
            assert_eq!(engine.strategy_name(), s.as_str());
            let step = engine.observe_and_adapt(&ring);
            assert_eq!(step.strategy, s.as_str());
            assert!(
                (step.coverage_after - 1.0).abs() < 1e-12,
                "{s} covers a ring"
            );
            engine.current().validate(&ring).unwrap();
        }
    }

    #[test]
    fn attached_obs_records_each_sync_point() {
        let n = 16;
        let mut engine = ReconfigEngine::builder(n, cfg())
            .obs(crate::obs::ReconfigObs::new())
            .build();
        let ring = ring_graph(n, 1 << 20);
        engine.observe_and_adapt(&ring);
        engine.observe_and_adapt(&ring);
        let obs = engine.obs().expect("explicitly attached");
        assert_eq!(obs.adapts.get(), 2);
        assert_eq!(
            obs.circuits_changed.get() as usize,
            engine.steps()[0].circuits_changed
        );
        let evs = obs.timeline.snapshot();
        assert_eq!(evs[0].t_ns, 0, "timeline stamped with sync-point index");
        assert_eq!(evs[1].t_ns, 1);
    }

    #[test]
    fn attached_trace_records_adapt_spans() {
        let n = 16;
        let rec = Arc::new(TraceRecorder::new());
        let mut engine = ReconfigEngine::builder(n, cfg())
            .trace(Arc::clone(&rec))
            .build();
        let ring = ring_graph(n, 1 << 20);
        engine.observe_and_adapt(&ring);
        engine.observe_and_adapt(&ring);
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.track == Track::Reconfig));
        assert_eq!(spans[0].name, "adapt");
        assert_eq!(spans[0].t_ns, 0, "stamped with sync-point index");
        assert_eq!(spans[1].t_ns, 1);
        assert_eq!(spans[0].span_id, engine_span_id(ADAPT_SPAN_OFFSET));
        assert!(spans[0].dur_ns > 0, "first adaptation moved circuits");
        assert_eq!(spans[1].dur_ns, 0, "fixed point pays nothing");
        let circuits = spans[0]
            .fields
            .iter()
            .find(|(k, _)| *k == "circuits_changed")
            .expect("field present")
            .1;
        assert_eq!(circuits as usize, engine.steps()[0].circuits_changed);
    }

    #[test]
    fn empty_observation_is_fully_covered() {
        let engine = ReconfigEngine::initial_mesh(8, cfg());
        assert_eq!(engine.coverage(&CommGraph::new(8)), 1.0);
    }

    #[test]
    fn adaptation_tracks_phase_changes() {
        // Phase 1: ring. Phase 2: shifted pattern. Both adapt to full
        // coverage; the second adaptation changes circuits again.
        let n = 16;
        let mut engine = ReconfigEngine::initial_mesh(n, cfg());
        let ring = ring_graph(n, 1 << 20);
        let s1 = engine.observe_and_adapt(&ring);
        assert!((s1.coverage_after - 1.0).abs() < 1e-12);
        let mut shifted = CommGraph::new(n);
        for v in 0..n {
            shifted.add_message(v, (v + 5) % n, 1 << 20);
        }
        let s2 = engine.observe_and_adapt(&shifted);
        assert!(s2.circuits_changed > 0);
        assert!((s2.coverage_after - 1.0).abs() < 1e-12);
    }
}
