//! Switch component models: the passive circuit-switch crossbar and the
//! active packet-switch blocks (paper §2.1, §2.3).

/// An endpoint a circuit-switch port can patch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Endpoint {
    /// A compute node's network adapter.
    Node(usize),
    /// Port `port` of packet switch block `block`.
    BlockPort {
        /// Switch block id.
        block: usize,
        /// Port index within the block.
        port: usize,
    },
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Node(n) => write!(f, "node{n}"),
            Endpoint::BlockPort { block, port } => write!(f, "SB{block}.{port}"),
        }
    }
}

/// Errors from circuit-switch operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// Endpoint already patched to something else.
    EndpointBusy(Endpoint),
    /// Endpoint is not currently patched.
    NotConnected(Endpoint),
    /// A circuit cannot connect an endpoint to itself.
    SelfLoop(Endpoint),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::EndpointBusy(e) => write!(f, "endpoint {e} already patched"),
            SwitchError::NotConnected(e) => write!(f, "endpoint {e} not connected"),
            SwitchError::SelfLoop(e) => write!(f, "cannot patch {e} to itself"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// A passive (layer-1) circuit-switch crossbar: a dynamic patch panel.
///
/// Creates hard circuits between endpoint pairs in response to an external
/// control plane (paper §2.1: "just like an old telephone system operator's
/// patch panel"). It adds no per-message latency beyond propagation, but
/// reconfiguration takes milliseconds, during which no traffic may be in
/// flight on the affected light paths.
#[derive(Debug, Clone, Default)]
pub struct CircuitSwitch {
    /// Symmetric pairing of endpoints.
    circuits: std::collections::BTreeMap<Endpoint, Endpoint>,
    /// Number of reconfiguration operations performed (connect/disconnect).
    reconfigurations: u64,
}

impl CircuitSwitch {
    /// MEMS optical switch reconfiguration latency (order of milliseconds,
    /// §2.2); used by simulation and reconfiguration cost accounting.
    pub const RECONFIG_LATENCY_NS: u64 = 3_000_000;

    /// An empty crossbar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Patches a bidirectional circuit between two endpoints.
    pub fn connect(&mut self, a: Endpoint, b: Endpoint) -> Result<(), SwitchError> {
        if a == b {
            return Err(SwitchError::SelfLoop(a));
        }
        if self.circuits.contains_key(&a) {
            return Err(SwitchError::EndpointBusy(a));
        }
        if self.circuits.contains_key(&b) {
            return Err(SwitchError::EndpointBusy(b));
        }
        self.circuits.insert(a, b);
        self.circuits.insert(b, a);
        self.reconfigurations += 1;
        Ok(())
    }

    /// Tears down the circuit at an endpoint, returning its former peer.
    pub fn disconnect(&mut self, a: Endpoint) -> Result<Endpoint, SwitchError> {
        let b = self
            .circuits
            .remove(&a)
            .ok_or(SwitchError::NotConnected(a))?;
        let back = self.circuits.remove(&b);
        debug_assert_eq!(back, Some(a), "pairing invariant");
        self.reconfigurations += 1;
        Ok(b)
    }

    /// The endpoint a given endpoint is patched to, if any.
    pub fn peer(&self, a: Endpoint) -> Option<Endpoint> {
        self.circuits.get(&a).copied()
    }

    /// Number of active circuits.
    pub fn circuit_count(&self) -> usize {
        self.circuits.len() / 2
    }

    /// Number of ports in use (2× circuits).
    pub fn ports_in_use(&self) -> usize {
        self.circuits.len()
    }

    /// Total reconfiguration operations so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Cumulative reconfiguration latency in nanoseconds.
    pub fn reconfiguration_time_ns(&self) -> u64 {
        self.reconfigurations * Self::RECONFIG_LATENCY_NS
    }

    /// Iterates over circuits (each pair reported once, ordered ends).
    pub fn circuits(&self) -> impl Iterator<Item = (Endpoint, Endpoint)> + '_ {
        self.circuits
            .iter()
            .filter(|(a, b)| a < b)
            .map(|(&a, &b)| (a, b))
    }

    /// Verifies the symmetric-pairing invariant.
    pub fn is_consistent(&self) -> bool {
        self.circuits
            .iter()
            .all(|(a, b)| self.circuits.get(b) == Some(a))
    }
}

/// An active (layer-2) packet switch block: a small crossbar that switches
/// individual messages at line rate.
///
/// HFAST treats these as "a flexibly assignable pool of resources" (§2.3) —
/// the provisioning layer allocates whole blocks and decides what each port
/// faces (a node, or another block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchBlock {
    /// Block id within the pool.
    pub id: usize,
    /// Total ports.
    pub ports: usize,
    /// Ports already allocated by provisioning.
    allocated: usize,
}

impl SwitchBlock {
    /// Per-hop latency contributed by a packet switch (≤ 50 ns per §5.3).
    pub const HOP_LATENCY_NS: u64 = 50;

    /// A fresh block with all ports free.
    pub fn new(id: usize, ports: usize) -> Self {
        assert!(ports >= 2, "a switch block needs at least 2 ports");
        SwitchBlock {
            id,
            ports,
            allocated: 0,
        }
    }

    /// Ports not yet allocated.
    pub fn free_ports(&self) -> usize {
        self.ports - self.allocated
    }

    /// Allocates the next free port, returning its index.
    pub fn allocate_port(&mut self) -> Option<usize> {
        if self.allocated < self.ports {
            let idx = self.allocated;
            self.allocated += 1;
            Some(idx)
        } else {
            None
        }
    }

    /// Number of ports allocated so far.
    pub fn allocated_ports(&self) -> usize {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N0: Endpoint = Endpoint::Node(0);
    const N1: Endpoint = Endpoint::Node(1);
    const B0P0: Endpoint = Endpoint::BlockPort { block: 0, port: 0 };

    #[test]
    fn connect_disconnect_cycle() {
        let mut cs = CircuitSwitch::new();
        cs.connect(N0, B0P0).unwrap();
        assert_eq!(cs.peer(N0), Some(B0P0));
        assert_eq!(cs.peer(B0P0), Some(N0));
        assert_eq!(cs.circuit_count(), 1);
        assert!(cs.is_consistent());
        let peer = cs.disconnect(N0).unwrap();
        assert_eq!(peer, B0P0);
        assert_eq!(cs.circuit_count(), 0);
        assert_eq!(cs.reconfigurations(), 2);
    }

    #[test]
    fn busy_endpoint_rejected() {
        let mut cs = CircuitSwitch::new();
        cs.connect(N0, N1).unwrap();
        assert_eq!(cs.connect(N0, B0P0), Err(SwitchError::EndpointBusy(N0)));
        assert_eq!(cs.connect(B0P0, N1), Err(SwitchError::EndpointBusy(N1)));
    }

    #[test]
    fn self_loop_rejected() {
        let mut cs = CircuitSwitch::new();
        assert_eq!(cs.connect(N0, N0), Err(SwitchError::SelfLoop(N0)));
    }

    #[test]
    fn disconnect_unpatched_rejected() {
        let mut cs = CircuitSwitch::new();
        assert_eq!(cs.disconnect(N0), Err(SwitchError::NotConnected(N0)));
    }

    #[test]
    fn circuits_iterate_once_per_pair() {
        let mut cs = CircuitSwitch::new();
        cs.connect(N0, N1).unwrap();
        cs.connect(Endpoint::Node(2), Endpoint::Node(3)).unwrap();
        let pairs: Vec<_> = cs.circuits().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn reconfiguration_time_accumulates() {
        let mut cs = CircuitSwitch::new();
        cs.connect(N0, N1).unwrap();
        cs.disconnect(N0).unwrap();
        assert_eq!(
            cs.reconfiguration_time_ns(),
            2 * CircuitSwitch::RECONFIG_LATENCY_NS
        );
    }

    #[test]
    fn block_port_allocation() {
        let mut b = SwitchBlock::new(0, 4);
        assert_eq!(b.free_ports(), 4);
        assert_eq!(b.allocate_port(), Some(0));
        assert_eq!(b.allocate_port(), Some(1));
        assert_eq!(b.allocate_port(), Some(2));
        assert_eq!(b.allocate_port(), Some(3));
        assert_eq!(b.allocate_port(), None);
        assert_eq!(b.free_ports(), 0);
        assert_eq!(b.allocated_ports(), 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn degenerate_block_rejected() {
        SwitchBlock::new(0, 1);
    }

    #[test]
    fn endpoint_display() {
        assert_eq!(N0.to_string(), "node0");
        assert_eq!(B0P0.to_string(), "SB0.0");
    }
}
