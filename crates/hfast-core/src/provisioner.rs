//! Pluggable provisioning strategies and online incremental re-provisioning.
//!
//! The paper's §5.3 linear-time heuristic is one point in a design space:
//! "Better Algorithms for Hybrid Circuit and Packet Switching in Data
//! Centers" (arXiv 1712.06634) frames circuit provisioning as scheduling the
//! demand matrix onto crossbar configurations, with stable-matching (BFF)
//! and Birkhoff–von-Neumann decomposition as the two algorithm families.
//! This module makes the choice pluggable:
//!
//! * [`Provisioner`] — the strategy trait: `provision` from scratch, plus an
//!   incremental [`Provisioner::reprovision`] fed the comm-graph delta
//!   accumulated since the last synchronization point (default: recompute
//!   from scratch).
//! * [`PaperLinear`] — the paper's §5.3 heuristic, extracted verbatim from
//!   the former `Provisioning::per_node` (digests unchanged), with a true
//!   O(changed-edges) incremental path.
//! * [`BffCircuit`] — stable-matching / best-fit-first circuit scheduling:
//!   repeatedly dedicate the heaviest remaining demand pair a shared chain.
//! * [`DemandDecomp`] — BvN-style decomposition: peel maximal matchings off
//!   the demand matrix and merge them into bounded clusters.
//! * [`Clustered`] — an explicit clustering (clique/anneal output) behind
//!   the same trait, replacing the free `Provisioning::build` constructor.

use std::collections::{BTreeMap, BTreeSet};
use std::str::FromStr;

use hfast_topology::{CommGraph, EdgeStat};

use crate::provision::{build_clustered, EdgeCircuit, ProvisionConfig, Provisioning};
use crate::switch::{Endpoint, SwitchBlock};

/// Built-in strategy selector, threaded through netsim, bench, and serve.
///
/// The wire/CLI names are the `snake_case` strings from
/// [`Strategy::as_str`]; absent means [`Strategy::PaperLinear`] everywhere,
/// preserving pre-trait behavior byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// The paper's §5.3 linear-time per-node heuristic.
    PaperLinear,
    /// Stable-matching / best-fit-first circuit scheduling (arXiv 1712.06634).
    BffCircuit,
    /// Birkhoff–von-Neumann-style demand-matrix decomposition.
    DemandDecomp,
}

impl Strategy {
    /// Every built-in strategy, in bake-off order.
    pub const ALL: [Strategy; 3] = [
        Strategy::PaperLinear,
        Strategy::BffCircuit,
        Strategy::DemandDecomp,
    ];

    /// Canonical wire/CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Strategy::PaperLinear => "paper_linear",
            Strategy::BffCircuit => "bff_circuit",
            Strategy::DemandDecomp => "demand_decomp",
        }
    }

    /// Instantiates the strategy.
    pub fn provisioner(&self) -> Box<dyn Provisioner> {
        match self {
            Strategy::PaperLinear => Box::new(PaperLinear),
            Strategy::BffCircuit => Box::new(BffCircuit),
            Strategy::DemandDecomp => Box::new(DemandDecomp),
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Strategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "paper_linear" => Ok(Strategy::PaperLinear),
            "bff_circuit" => Ok(Strategy::BffCircuit),
            "demand_decomp" => Ok(Strategy::DemandDecomp),
            other => Err(format!(
                "unknown strategy {other:?} (expected paper_linear, bff_circuit, or demand_decomp)"
            )),
        }
    }
}

/// Comm-graph changes accumulated between synchronization points.
///
/// Each entry carries the *post-delta* cumulative [`EdgeStat`] for the pair,
/// so a provisioner can classify the pair's new cutoff status without
/// consulting the full graph. Pairs are normalized `(min, max)`; self-edges
/// are ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    changes: BTreeMap<(usize, usize), EdgeStat>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the post-delta statistics for edge `(a, b)`.
    pub fn note(&mut self, a: usize, b: usize, stat: EdgeStat) {
        if a == b {
            return;
        }
        let key = (a.min(b), a.max(b));
        self.changes.insert(key, stat);
    }

    /// The delta between two snapshots of the same node set: every pair
    /// whose statistics differ, annotated with the `after` value.
    pub fn diff(before: &CommGraph, after: &CommGraph) -> Self {
        assert_eq!(before.n(), after.n(), "snapshots must cover the same nodes");
        let mut delta = GraphDelta::new();
        for a in 0..after.n() {
            for (b, e) in after.neighbors(a) {
                if b > a && before.edge(a, b) != e {
                    delta.note(a, b, *e);
                }
            }
            // Edges active before but inactive after (a fresh observation
            // window dropped them) are changes too.
            for (b, e) in before.neighbors(a) {
                if b > a && !after.edge(a, b).is_active() {
                    let _ = e;
                    delta.note(a, b, EdgeStat::default());
                }
            }
        }
        delta
    }

    /// Number of changed pairs.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Iterates `((a, b), post-delta stat)` in pair order.
    pub fn iter(&self) -> impl Iterator<Item = (&(usize, usize), &EdgeStat)> {
        self.changes.iter()
    }

    /// The changed pairs in order.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.changes.keys().copied()
    }
}

/// What an incremental [`Provisioner::reprovision`] call produced.
#[derive(Debug, Clone)]
pub struct ReprovisionOutcome {
    /// The updated provisioning.
    pub provisioning: Provisioning,
    /// Which strategy produced it (its [`Provisioner::name`]).
    pub strategy: &'static str,
    /// Provisioned edges added, removed, or re-patched. Zero means the
    /// delta changed no edge's cutoff status and the layout is untouched.
    pub edges_touched: usize,
    /// The node pairs whose routes may have changed, sorted. Empty on a
    /// full rebuild (every pair may have changed — see
    /// [`full_rebuild`](Self::full_rebuild)).
    pub touched_pairs: Vec<(usize, usize)>,
    /// True when the strategy recomputed from scratch: callers must treat
    /// every cached route as stale.
    pub full_rebuild: bool,
}

/// A provisioning strategy: maps a measured communication graph onto HFAST
/// switch blocks and circuits (see [`Provisioning`]).
///
/// Strategies are stateless; the incremental entry point threads the
/// previous [`Provisioning`] through by value so an in-place update needs no
/// clone of the block pool.
pub trait Provisioner: Send + Sync {
    /// Canonical strategy name (matches [`Strategy::as_str`] for built-ins).
    fn name(&self) -> &'static str;

    /// Provisions `graph` from scratch.
    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning;

    /// Adapts `prev` to `graph` (the post-delta snapshot), given the
    /// [`GraphDelta`] accumulated since `prev` was computed.
    ///
    /// The default recomputes from scratch, which is always correct;
    /// strategies override it when they can do better (see
    /// [`PaperLinear`]'s O(changed-edges) path).
    fn reprovision(
        &self,
        prev: Provisioning,
        graph: &CommGraph,
        delta: &GraphDelta,
    ) -> ReprovisionOutcome {
        let config = prev.config;
        drop(prev);
        ReprovisionOutcome {
            provisioning: self.provision(graph, config),
            strategy: self.name(),
            edges_touched: delta.len(),
            touched_pairs: Vec::new(),
            full_rebuild: true,
        }
    }

    /// Clones the strategy behind the trait object (all built-ins are
    /// zero-sized; [`Clustered`] clones its clustering).
    fn clone_box(&self) -> Box<dyn Provisioner>;
}

impl Clone for Box<dyn Provisioner> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl std::fmt::Debug for dyn Provisioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Provisioner({})", self.name())
    }
}

/// The paper's §5.3 linear-time algorithm: one cluster (hence one block
/// chain) per node. Extracted verbatim from the former
/// `Provisioning::per_node`; outputs are bit-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperLinear;

impl Provisioner for PaperLinear {
    fn name(&self) -> &'static str {
        Strategy::PaperLinear.as_str()
    }

    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        let clusters = (0..graph.n()).map(|v| vec![v]).collect();
        build_clustered(graph, config, clusters)
    }

    /// O(changed-edges) incremental adaptation.
    ///
    /// Under per-node clustering every cluster's chain layout is a pure
    /// function of its sorted incident above-cutoff edge list: the node
    /// always attaches at chain position 0, and the nearest-free-port rule
    /// fills positions in ascending order. So a delta only perturbs the
    /// clusters whose incident edge set changed cutoff status; everything
    /// else is structurally untouched. The rebuild tears down exactly the
    /// affected chains, resizes them, and re-patches their incident edges
    /// in the same global sorted order the from-scratch pass uses — the
    /// `incremental_reprovision_matches_scratch` property test pins the
    /// structural equivalence.
    fn reprovision(
        &self,
        prev: Provisioning,
        graph: &CommGraph,
        delta: &GraphDelta,
    ) -> ReprovisionOutcome {
        let config = prev.config;
        let n = graph.n();
        // The incremental path leans on per-node clustering invariants;
        // anything else (offline nodes, shared chains, size change) falls
        // back to the always-correct scratch rebuild.
        let per_node_shape = prev.n_nodes == n
            && prev.clusters.len() == n
            && prev.intra_edges.is_empty()
            && prev
                .clusters
                .iter()
                .enumerate()
                .all(|(cid, c)| c.id == cid && c.nodes.as_slice() == [cid]);
        if !per_node_shape {
            return Provisioner::reprovision(&ScratchOnly(*self), prev, graph, delta);
        }

        let cutoff = config.cutoff;
        let mut p = prev;
        let mut affected: BTreeSet<usize> = BTreeSet::new();
        let mut removed: Vec<(usize, usize)> = Vec::new();
        let mut unprov_add: Vec<(usize, usize)> = Vec::new();
        let mut unprov_del: Vec<(usize, usize)> = Vec::new();
        for (&pair, stat) in delta.iter() {
            let (a, b) = pair;
            if a >= n || b >= n {
                return Provisioner::reprovision(&ScratchOnly(*self), p, graph, delta);
            }
            let was_above = p.edge_circuits.contains_key(&pair);
            let now_above = stat.is_active() && stat.max_msg >= cutoff;
            if was_above != now_above {
                affected.insert(a);
                affected.insert(b);
                if was_above {
                    removed.push(pair);
                }
            }
            // Keep the unprovisioned (below-cutoff) ledger in sync.
            let in_unprov = p.unprovisioned.binary_search(&pair).is_ok();
            let should_be = stat.is_active() && !now_above;
            if should_be && !in_unprov {
                unprov_add.push(pair);
            } else if !should_be && in_unprov {
                unprov_del.push(pair);
            }
        }
        for pair in unprov_del {
            if let Ok(i) = p.unprovisioned.binary_search(&pair) {
                p.unprovisioned.remove(i);
            }
        }
        for pair in unprov_add {
            if let Err(i) = p.unprovisioned.binary_search(&pair) {
                p.unprovisioned.insert(i, pair);
            }
        }
        if affected.is_empty() {
            return ReprovisionOutcome {
                provisioning: p,
                strategy: self.name(),
                edges_touched: 0,
                touched_pairs: Vec::new(),
                full_rebuild: false,
            };
        }
        // When most of the machine moved, scratch is both simpler and
        // cheaper than surgically rebuilding nearly every chain.
        if affected.len() * 2 > n {
            return Provisioner::reprovision(&ScratchOnly(*self), p, graph, delta);
        }

        // Every above-cutoff edge incident to an affected cluster must be
        // re-patched (its near-side chain position may shift).
        let mut e_fix: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &v in &affected {
            for (u, _) in graph.neighbors_thresholded(v, cutoff) {
                e_fix.insert((v.min(u), v.max(u)));
            }
        }
        // Far-side endpoints of edges whose other cluster is untouched keep
        // their port and chain position; remember them before teardown.
        let mut kept_far: BTreeMap<(usize, usize), EdgeCircuit> = BTreeMap::new();
        for &pair in &e_fix {
            if let Some(ec) = p.edge_circuits.get(&pair) {
                kept_far.insert(pair, *ec);
            }
        }

        // Tear down: every circuit with an endpoint on an affected chain
        // (chain links, the node attachment, and incident edge circuits).
        for &v in &affected {
            for i in 0..p.clusters[v].blocks.len() {
                let bid = p.clusters[v].blocks[i];
                for port in 0..p.blocks[bid].allocated_ports() {
                    let ep = Endpoint::BlockPort { block: bid, port };
                    if p.circuit.peer(ep).is_some() {
                        let _ = p.circuit.disconnect(ep);
                    }
                }
            }
        }
        for &pair in &e_fix {
            p.edge_circuits.remove(&pair);
        }
        for &pair in &removed {
            p.edge_circuits.remove(&pair);
        }

        // Rebuild the affected chains exactly as the scratch pass would:
        // chain links first, then the node attachment at position 0.
        let mut spare = std::mem::take(&mut p.spare_blocks);
        for &v in &affected {
            let deg = graph.degree_thresholded(v, cutoff);
            let need = config.blocks_needed(1, deg);
            let mut chain = std::mem::take(&mut p.clusters[v].blocks);
            while chain.len() > need {
                spare.push(chain.pop().expect("len checked"));
            }
            while chain.len() < need {
                let id = spare.pop().unwrap_or_else(|| {
                    p.blocks
                        .push(SwitchBlock::new(p.blocks.len(), config.block_ports));
                    p.blocks.len() - 1
                });
                chain.push(id);
            }
            for &id in &chain {
                p.blocks[id] = SwitchBlock::new(id, config.block_ports);
            }
            for w in chain.windows(2) {
                let pa = p.blocks[w[0]].allocate_port().expect("fresh block");
                let pb = p.blocks[w[1]].allocate_port().expect("fresh block");
                p.circuit
                    .connect(
                        Endpoint::BlockPort {
                            block: w[0],
                            port: pa,
                        },
                        Endpoint::BlockPort {
                            block: w[1],
                            port: pb,
                        },
                    )
                    .expect("ports were just freed");
            }
            let block = chain[0];
            let port = p.blocks[block].allocate_port().expect("k >= 3");
            p.circuit
                .connect(Endpoint::Node(v), Endpoint::BlockPort { block, port })
                .expect("attachment was just freed");
            p.attach[v] = (block, 0);
            p.clusters[v].blocks = chain;
        }
        for &id in &spare {
            p.blocks[id] = SwitchBlock::new(id, config.block_ports);
        }
        p.spare_blocks = spare;

        // Re-patch in global sorted order — the same relative order the
        // scratch pass processes each cluster's incident edges in, which is
        // what makes the resulting chain positions identical.
        for &(a, b) in &e_fix {
            let near = |p: &mut Provisioning, v: usize| -> (Endpoint, usize) {
                let chain = &p.clusters[p.node_cluster[v]].blocks;
                let home = p.attach[v].1;
                let pos = (0..chain.len())
                    .filter(|&i| p.blocks[chain[i]].free_ports() > 0)
                    .min_by_key(|&i| (i as isize - home as isize).unsigned_abs())
                    .expect("blocks_needed sized the chain");
                let block = chain[pos];
                let port = p.blocks[block].allocate_port().expect("checked free");
                (Endpoint::BlockPort { block, port }, pos)
            };
            let (ea, pos_a) = if affected.contains(&a) {
                near(&mut p, a)
            } else {
                let ec = kept_far[&(a, b)];
                (ec.ports.0, ec.a_chain_pos)
            };
            let (eb, pos_b) = if affected.contains(&b) {
                near(&mut p, b)
            } else {
                let ec = kept_far[&(a, b)];
                (ec.ports.1, ec.b_chain_pos)
            };
            p.circuit
                .connect(ea, eb)
                .expect("ports free after teardown");
            p.edge_circuits.insert(
                (a, b),
                EdgeCircuit {
                    a_chain_pos: pos_a,
                    b_chain_pos: pos_b,
                    ports: (ea, eb),
                },
            );
        }

        let mut touched: Vec<(usize, usize)> = e_fix.into_iter().collect();
        for &pair in &removed {
            if let Err(i) = touched.binary_search(&pair) {
                touched.insert(i, pair);
            }
        }
        ReprovisionOutcome {
            provisioning: p,
            strategy: self.name(),
            edges_touched: touched.len(),
            touched_pairs: touched,
            full_rebuild: false,
        }
    }

    fn clone_box(&self) -> Box<dyn Provisioner> {
        Box::new(*self)
    }
}

/// Adapter that forces the trait's default (from-scratch) `reprovision`
/// while reporting the wrapped strategy's name — used by [`PaperLinear`]'s
/// fallback paths without recursing into its own override.
struct ScratchOnly(PaperLinear);

impl Provisioner for ScratchOnly {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        self.0.provision(graph, config)
    }

    fn clone_box(&self) -> Box<dyn Provisioner> {
        Box::new(ScratchOnly(self.0))
    }
}

/// Stable-matching / best-fit-first circuit scheduling (arXiv 1712.06634's
/// BFF family): sort the above-cutoff demand pairs by weight and greedily
/// marry unmatched endpoints, so each heavy pair shares one chain (its edge
/// becomes an intra-cluster hop, the 2-traversal minimum) instead of
/// spending two external crossbar ports.
#[derive(Debug, Clone, Copy, Default)]
pub struct BffCircuit;

impl Provisioner for BffCircuit {
    fn name(&self) -> &'static str {
        Strategy::BffCircuit.as_str()
    }

    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        let n = graph.n();
        // Heaviest-first, endpoints as deterministic tie-breakers: this is
        // the greedy maximal matching that 2-approximates max-weight
        // matching — the "best fit first" step of the BFF schedule.
        let mut edges: Vec<(u64, usize, usize)> = Vec::new();
        for a in 0..n {
            for (b, e) in graph.neighbors_thresholded(a, config.cutoff) {
                if b > a {
                    edges.push((e.bytes, a, b));
                }
            }
        }
        edges.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
        let mut partner = vec![usize::MAX; n];
        for &(_, a, b) in &edges {
            if partner[a] == usize::MAX && partner[b] == usize::MAX {
                partner[a] = b;
                partner[b] = a;
            }
        }
        let mut clusters: Vec<Vec<usize>> = Vec::with_capacity(n);
        for (v, &p) in partner.iter().enumerate() {
            if p == usize::MAX {
                clusters.push(vec![v]);
            } else if p > v {
                clusters.push(vec![v, p]);
            }
        }
        build_clustered(graph, config, clusters)
    }

    fn clone_box(&self) -> Box<dyn Provisioner> {
        Box::new(*self)
    }
}

/// Birkhoff–von-Neumann-style decomposition: peel maximal matchings
/// (crossbar configurations) off the residual demand matrix, and union the
/// pairs each round matches into clusters bounded by chain capacity. Heavy
/// mutually-communicating groups coalesce onto shared chains; sparse
/// traffic stays per-node.
#[derive(Debug, Clone, Copy, Default)]
pub struct DemandDecomp;

/// Matching rounds to peel — each round is one BvN "permutation" term.
const DECOMP_ROUNDS: usize = 3;

impl Provisioner for DemandDecomp {
    fn name(&self) -> &'static str {
        Strategy::DemandDecomp.as_str()
    }

    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        let n = graph.n();
        let cap = (config.block_ports / 4).max(2);
        let mut residual: Vec<(u64, usize, usize)> = Vec::new();
        for a in 0..n {
            for (b, e) in graph.neighbors_thresholded(a, config.cutoff) {
                if b > a {
                    residual.push((e.bytes, a, b));
                }
            }
        }
        // Union-find over nodes; cluster size capped so a chain stays short.
        let mut parent: Vec<usize> = (0..n).collect();
        let mut size = vec![1usize; n];
        fn find(parent: &mut [usize], mut v: usize) -> usize {
            while parent[v] != v {
                parent[v] = parent[parent[v]];
                v = parent[v];
            }
            v
        }
        for _ in 0..DECOMP_ROUNDS {
            residual.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));
            let mut matched = vec![false; n];
            for entry in residual.iter_mut() {
                let (w, a, b) = *entry;
                if w == 0 || matched[a] || matched[b] {
                    continue;
                }
                matched[a] = true;
                matched[b] = true;
                // This pair rides the round's crossbar configuration:
                // consume its demand and, capacity permitting, fuse the
                // endpoints' clusters.
                entry.0 = 0;
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb && size[ra] + size[rb] <= cap {
                    let (hi, lo) = if size[ra] >= size[rb] {
                        (ra, rb)
                    } else {
                        (rb, ra)
                    };
                    parent[lo] = hi;
                    size[hi] += size[lo];
                }
            }
        }
        let mut members: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for v in 0..n {
            let r = find(&mut parent, v);
            members.entry(r).or_default().push(v);
        }
        // Order clusters by smallest member for deterministic ids.
        let mut clusters: Vec<Vec<usize>> = members.into_values().collect();
        clusters.sort_by_key(|c| c[0]);
        build_clustered(graph, config, clusters)
    }

    fn clone_box(&self) -> Box<dyn Provisioner> {
        Box::new(*self)
    }
}

/// An explicit node clustering (e.g. [`crate::clique::cluster_nodes`] or
/// [`crate::anneal::optimize_clusters`] output) behind the [`Provisioner`]
/// trait — the replacement for the free `Provisioning::build` constructor.
#[derive(Debug, Clone)]
pub struct Clustered {
    clusters: Vec<Vec<usize>>,
}

impl Clustered {
    /// Wraps an explicit clustering. Nodes in no cluster are treated as
    /// offline, exactly as `Provisioning::build` did.
    pub fn new(clusters: Vec<Vec<usize>>) -> Self {
        Clustered { clusters }
    }
}

impl Provisioner for Clustered {
    fn name(&self) -> &'static str {
        "clustered"
    }

    fn provision(&self, graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        build_clustered(graph, config, self.clusters.clone())
    }

    fn clone_box(&self) -> Box<dyn Provisioner> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{complete_graph, mesh3d_graph, ring_graph};

    fn cfg() -> ProvisionConfig {
        ProvisionConfig {
            block_ports: 16,
            cutoff: 2048,
        }
    }

    #[test]
    fn strategy_round_trips_names() {
        for s in Strategy::ALL {
            assert_eq!(s.as_str().parse::<Strategy>().unwrap(), s);
            assert_eq!(s.provisioner().name(), s.as_str());
        }
        assert!("fastest_possible".parse::<Strategy>().is_err());
    }

    #[test]
    fn paper_linear_matches_former_per_node() {
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let via_trait = PaperLinear.provision(&g, cfg());
        #[allow(deprecated)]
        let direct = Provisioning::per_node(&g, cfg());
        assert_eq!(via_trait.digest(), direct.digest());
    }

    #[test]
    fn bff_pairs_heavy_partners_onto_shared_chains() {
        // Disjoint heavy pairs: BFF puts each pair on one chain (one block),
        // halving blocks vs per-node and hitting the 2-traversal minimum.
        let n = 8;
        let mut g = CommGraph::new(n);
        for i in 0..n / 2 {
            g.add_message(2 * i, 2 * i + 1, 1 << 20);
        }
        let bff = BffCircuit.provision(&g, cfg());
        let pl = PaperLinear.provision(&g, cfg());
        bff.validate(&g).unwrap();
        assert_eq!(bff.total_blocks(), n / 2);
        assert_eq!(pl.total_blocks(), n);
        let r = bff.route(0, 1).unwrap();
        assert_eq!(r.circuit_traversals, 2);
        assert_eq!(r.switch_hops, 1);
    }

    #[test]
    fn bff_is_deterministic_under_ties() {
        let g = complete_graph(12, 1 << 20);
        let a = BffCircuit.provision(&g, cfg());
        let b = BffCircuit.provision(&g, cfg());
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn demand_decomp_coalesces_cliques() {
        // Four 4-cliques of heavy traffic: three matching rounds fuse each
        // clique into one bounded cluster (cap = 16/4 = 4).
        let n = 16;
        let mut g = CommGraph::new(n);
        for c in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_message(4 * c + i, 4 * c + j, 1 << 20);
                }
            }
        }
        let dd = DemandDecomp.provision(&g, cfg());
        dd.validate(&g).unwrap();
        let pl = PaperLinear.provision(&g, cfg());
        assert!(
            dd.total_blocks() < pl.total_blocks(),
            "decomposition shares chains: {} vs {}",
            dd.total_blocks(),
            pl.total_blocks()
        );
    }

    #[test]
    fn all_strategies_validate_on_apps_shapes() {
        let graphs = [
            ring_graph(32, 1 << 20),
            mesh3d_graph((4, 4, 2), 300 << 10),
            complete_graph(16, 1 << 20),
        ];
        for g in &graphs {
            for s in Strategy::ALL {
                let p = s.provisioner().provision(g, cfg());
                p.validate(g).unwrap_or_else(|e| panic!("{s}: {e}"));
            }
        }
    }

    #[test]
    fn clustered_behind_trait_matches_former_build() {
        let g = complete_graph(8, 1 << 20);
        let clusters: Vec<Vec<usize>> = vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]];
        let via_trait = Clustered::new(clusters.clone()).provision(&g, cfg());
        #[allow(deprecated)]
        let direct = Provisioning::build(&g, cfg(), clusters);
        assert_eq!(via_trait.digest(), direct.digest());
    }

    #[test]
    fn default_reprovision_recomputes_from_scratch() {
        let mut g = ring_graph(8, 1 << 20);
        let prev = BffCircuit.provision(&g, cfg());
        let mut delta = GraphDelta::new();
        g.add_message(0, 4, 1 << 20);
        delta.note(0, 4, *g.edge(0, 4));
        let out = BffCircuit.reprovision(prev, &g, &delta);
        assert!(out.full_rebuild);
        assert_eq!(out.strategy, "bff_circuit");
        out.provisioning.validate(&g).unwrap();
        assert!(out.provisioning.route(0, 4).is_some());
    }

    #[test]
    fn incremental_noop_when_status_unchanged() {
        let mut g = ring_graph(16, 1 << 20);
        let prev = PaperLinear.provision(&g, cfg());
        let digest = prev.digest();
        // More traffic on an existing circuit: no structural change.
        let mut delta = GraphDelta::new();
        g.add_message(3, 4, 1 << 20);
        delta.note(3, 4, *g.edge(3, 4));
        let out = PaperLinear.reprovision(prev, &g, &delta);
        assert!(!out.full_rebuild);
        assert_eq!(out.edges_touched, 0);
        assert_eq!(out.provisioning.digest(), digest);
    }

    #[test]
    fn incremental_adds_a_circuit() {
        let mut g = ring_graph(16, 1 << 20);
        let prev = PaperLinear.provision(&g, cfg());
        let mut delta = GraphDelta::new();
        g.add_message(2, 9, 1 << 20);
        delta.note(2, 9, *g.edge(2, 9));
        let out = PaperLinear.reprovision(prev, &g, &delta);
        assert!(!out.full_rebuild);
        assert!(out.edges_touched >= 1);
        assert!(out.touched_pairs.contains(&(2, 9)));
        out.provisioning.validate(&g).unwrap();
        // Structurally equivalent to scratch.
        let scratch = PaperLinear.provision(&g, cfg());
        assert_eq!(
            out.provisioning.total_blocks(),
            scratch.total_blocks(),
            "incremental and scratch agree on the pool"
        );
        assert_eq!(
            out.provisioning
                .edge_circuits
                .iter()
                .map(|(k, ec)| (*k, ec.a_chain_pos, ec.b_chain_pos))
                .collect::<Vec<_>>(),
            scratch
                .edge_circuits
                .iter()
                .map(|(k, ec)| (*k, ec.a_chain_pos, ec.b_chain_pos))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn incremental_grows_a_chain() {
        // Node 0 takes on enough partners to need more chain blocks.
        let mut g = CommGraph::new(40);
        for i in 1..10 {
            g.add_message(0, i, 1 << 20);
        }
        let prev = PaperLinear.provision(&g, cfg());
        assert_eq!(prev.clusters[0].blocks.len(), 1);
        let mut delta = GraphDelta::new();
        for i in 10..40 {
            g.add_message(0, i, 1 << 20);
            delta.note(0, i, *g.edge(0, i));
        }
        let out = PaperLinear.reprovision(prev, &g, &delta);
        out.provisioning.validate(&g).unwrap();
        let scratch = PaperLinear.provision(&g, cfg());
        assert_eq!(
            out.provisioning.clusters[0].blocks.len(),
            scratch.clusters[0].blocks.len()
        );
        assert_eq!(out.provisioning.total_blocks(), scratch.total_blocks());
    }

    #[test]
    fn incremental_removal_shrinks_back() {
        // A fresh observation window without the chord: the circuit is torn
        // down and the pair (still active, below cutoff) rides the tree.
        let mut g = ring_graph(16, 1 << 20);
        g.add_message(2, 9, 1 << 20);
        let prev = PaperLinear.provision(&g, cfg());
        assert!(prev.edge_circuits.contains_key(&(2, 9)));
        // New window: the chord only carries tiny messages now.
        let mut g2 = ring_graph(16, 1 << 20);
        g2.add_message(2, 9, 64);
        let delta = GraphDelta::diff(&g, &g2);
        let out = PaperLinear.reprovision(prev, &g2, &delta);
        assert!(!out.full_rebuild);
        assert!(!out.provisioning.edge_circuits.contains_key(&(2, 9)));
        assert!(out.provisioning.unprovisioned.contains(&(2, 9)));
        out.provisioning.validate(&g2).unwrap();
        let scratch = PaperLinear.provision(&g2, cfg());
        assert_eq!(out.provisioning.total_blocks(), scratch.total_blocks());
    }

    #[test]
    fn delta_diff_catches_all_changes() {
        let mut before = ring_graph(8, 1 << 20);
        before.add_message(0, 4, 4096);
        let mut after = ring_graph(8, 1 << 20);
        after.add_message(1, 5, 4096);
        let delta = GraphDelta::diff(&before, &after);
        let pairs: Vec<_> = delta.pairs().collect();
        assert!(pairs.contains(&(0, 4)), "dropped edge noted");
        assert!(pairs.contains(&(1, 5)), "new edge noted");
        assert!(!pairs.contains(&(0, 1)), "unchanged edge not noted");
    }
}
