//! SMP-node analysis — the paper's §5 deferred problem, implemented.
//!
//! "While most practical systems will likely use SMP nodes, the analysis
//! would need to consider bandwidth localization algorithms for assigning
//! processes to nodes in addition to the analysis of the interconnection
//! network requirements. … we focus exclusively on single-processor nodes
//! in this paper, and leave the analysis of SMP nodes for future work."
//!
//! This module supplies that missing piece: fold a per-rank communication
//! graph down to a per-node graph under a rank→node assignment (intra-node
//! traffic rides shared memory and leaves the interconnect entirely), score
//! assignments by the interconnect bytes they avoid, and search for good
//! assignments with a greedy pass plus local refinement.

use hfast_topology::{CommGraph, CsrGraph};

/// A rank→node placement for `ranks_per_node`-way SMP nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpAssignment {
    /// Node index per rank.
    pub node_of: Vec<usize>,
    /// Ranks per node (the SMP width).
    pub ranks_per_node: usize,
    /// Number of nodes.
    pub nodes: usize,
}

impl SmpAssignment {
    /// The natural blocked placement: ranks `0..w` on node 0, `w..2w` on
    /// node 1, … — what a batch scheduler does by default.
    pub fn blocked(ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node >= 1);
        let nodes = ranks.div_ceil(ranks_per_node);
        SmpAssignment {
            node_of: (0..ranks).map(|r| r / ranks_per_node).collect(),
            ranks_per_node,
            nodes,
        }
    }

    /// Round-robin placement: rank `r` on node `r mod nodes` — the
    /// pessimal choice for nearest-neighbour codes, kept as a baseline.
    pub fn round_robin(ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks_per_node >= 1);
        let nodes = ranks.div_ceil(ranks_per_node);
        SmpAssignment {
            node_of: (0..ranks).map(|r| r % nodes).collect(),
            ranks_per_node,
            nodes,
        }
    }

    /// Validates the per-node occupancy bound.
    pub fn is_feasible(&self) -> bool {
        let mut counts = vec![0usize; self.nodes];
        for &n in &self.node_of {
            if n >= self.nodes {
                return false;
            }
            counts[n] += 1;
        }
        counts.iter().all(|&c| c <= self.ranks_per_node)
    }

    /// Bytes that stay inside shared memory under this placement.
    pub fn localized_bytes(&self, graph: &CommGraph) -> u64 {
        let mut local = 0;
        for a in 0..graph.n() {
            for (b, e) in graph.neighbors(a) {
                if b > a && self.node_of[a] == self.node_of[b] {
                    local += e.bytes;
                }
            }
        }
        local
    }

    /// Fraction of total traffic the placement keeps off the interconnect.
    pub fn locality(&self, graph: &CommGraph) -> f64 {
        let total = graph.total_bytes();
        if total == 0 {
            return 1.0;
        }
        self.localized_bytes(graph) as f64 / total as f64
    }

    /// The node-level communication graph: rank traffic folded onto nodes,
    /// intra-node edges dropped. This graph is what HFAST provisioning and
    /// TDC analysis operate on for an SMP machine.
    pub fn fold(&self, graph: &CommGraph) -> CommGraph {
        let mut directed = Vec::new();
        for a in 0..graph.n() {
            for (b, e) in graph.neighbors(a) {
                let (na, nb) = (self.node_of[a], self.node_of[b]);
                if b > a && na != nb {
                    directed.push((na, nb, *e));
                }
            }
        }
        CommGraph::from_directed(self.nodes, directed)
    }
}

/// Greedy bandwidth localization: grow each node's rank set around the
/// heaviest remaining edges (the "bandwidth localization algorithm" the
/// paper names), then improve with pairwise swap refinement.
pub fn localize(graph: &CommGraph, ranks_per_node: usize, swap_passes: usize) -> SmpAssignment {
    let ranks = graph.n();
    assert!(ranks_per_node >= 1);
    let nodes = ranks.div_ceil(ranks_per_node);
    let csr = CsrGraph::from_graph(graph, 0);

    // Greedy seeding: repeatedly start a node from the heaviest unassigned
    // rank and add the unassigned rank with the most bytes into the set.
    let mut node_of = vec![usize::MAX; ranks];
    let mut order: Vec<usize> = (0..ranks).collect();
    order.sort_by_key(|&v| {
        std::cmp::Reverse(
            csr.neighbors_with_stats(v)
                .map(|(_, e)| e.bytes)
                .sum::<u64>(),
        )
    });
    let mut node = 0usize;
    for &seed in &order {
        if node_of[seed] != usize::MAX {
            continue;
        }
        let mut members = vec![seed];
        node_of[seed] = node;
        while members.len() < ranks_per_node {
            let mut best: Option<(u64, usize)> = None;
            for &m in &members {
                for (u, e) in csr.neighbors_with_stats(m) {
                    if node_of[u] == usize::MAX {
                        let gain = e.bytes;
                        if best.is_none_or(|(g, bu)| gain > g || (gain == g && u < bu)) {
                            best = Some((gain, u));
                        }
                    }
                }
            }
            let Some((_, pick)) = best else { break };
            node_of[pick] = node;
            members.push(pick);
        }
        node += 1;
        if node == nodes {
            break;
        }
    }
    // Any stragglers (disconnected ranks) fill remaining slots.
    let mut counts = vec![0usize; nodes];
    for &n in node_of.iter().filter(|&&n| n != usize::MAX) {
        counts[n] += 1;
    }
    for slot in node_of.iter_mut() {
        if *slot == usize::MAX {
            let target = (0..nodes)
                .find(|&n| counts[n] < ranks_per_node)
                .expect("capacity equals rank count");
            *slot = target;
            counts[target] += 1;
        }
    }

    let mut assignment = SmpAssignment {
        node_of,
        ranks_per_node,
        nodes,
    };

    // Pairwise swap refinement: accept any rank swap that localizes more
    // bytes. O(passes · ranks²) — fine at study sizes.
    for _ in 0..swap_passes {
        let mut improved = false;
        for a in 0..ranks {
            for b in (a + 1)..ranks {
                if assignment.node_of[a] == assignment.node_of[b] {
                    continue;
                }
                let before = cut_delta(graph, &assignment, a) + cut_delta(graph, &assignment, b);
                assignment.node_of.swap(a, b);
                let after = cut_delta(graph, &assignment, a) + cut_delta(graph, &assignment, b);
                if after < before {
                    improved = true;
                } else {
                    assignment.node_of.swap(a, b);
                }
            }
        }
        if !improved {
            break;
        }
    }
    assignment
}

/// Interconnect bytes rank `v` contributes under the assignment.
fn cut_delta(graph: &CommGraph, asg: &SmpAssignment, v: usize) -> u64 {
    graph
        .neighbors(v)
        .filter(|(u, _)| asg.node_of[*u] != asg.node_of[v])
        .map(|(_, e)| e.bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{mesh3d_graph, ring_graph};
    use hfast_topology::tdc;

    #[test]
    fn blocked_placement_localizes_ring_traffic() {
        let g = ring_graph(16, 1 << 20);
        let blocked = SmpAssignment::blocked(16, 4);
        let rr = SmpAssignment::round_robin(16, 4);
        assert!(blocked.is_feasible() && rr.is_feasible());
        // Blocked: 3 of 4 ring edges per node internal; RR: none.
        assert!(blocked.locality(&g) > 0.7, "{}", blocked.locality(&g));
        assert_eq!(rr.locality(&g), 0.0);
    }

    #[test]
    fn fold_produces_node_level_graph() {
        let g = ring_graph(16, 1 << 20);
        let blocked = SmpAssignment::blocked(16, 4);
        let folded = blocked.fold(&g);
        assert_eq!(folded.n(), 4);
        // Node-level topology of a blocked ring is a 4-ring.
        let s = tdc(&folded, 0);
        assert_eq!((s.max, s.min), (2, 2));
        // Only boundary edges survive: one per node pair.
        assert_eq!(folded.edge(0, 1).bytes, g.edge(3, 4).bytes);
    }

    #[test]
    fn localize_beats_round_robin_and_matches_blocked_on_rings() {
        let g = ring_graph(32, 1 << 20);
        let found = localize(&g, 4, 4);
        assert!(found.is_feasible());
        let blocked = SmpAssignment::blocked(32, 4);
        assert!(
            found.locality(&g) >= blocked.locality(&g) - 1e-9,
            "search must reach the natural optimum: {} vs {}",
            found.locality(&g),
            blocked.locality(&g)
        );
    }

    #[test]
    fn localize_handles_meshes() {
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let found = localize(&g, 8, 3);
        assert!(found.is_feasible());
        let rr = SmpAssignment::round_robin(64, 8);
        assert!(found.locality(&g) > rr.locality(&g));
        // Folding shrinks the provisioning problem 8-fold.
        let folded = found.fold(&g);
        assert_eq!(folded.n(), 8);
        assert!(folded.total_bytes() < g.total_bytes());
    }

    #[test]
    fn degenerate_widths() {
        let g = ring_graph(8, 1000);
        // Width 1: nothing localizes; fold is the identity topology.
        let one = localize(&g, 1, 1);
        assert_eq!(one.locality(&g), 0.0);
        assert_eq!(one.fold(&g).edge_count(), g.edge_count());
        // Width ≥ n: everything localizes.
        let all = SmpAssignment::blocked(8, 8);
        assert_eq!(all.locality(&g), 1.0);
        assert_eq!(all.fold(&g).edge_count(), 0);
    }

    #[test]
    fn empty_graph_locality_is_trivially_full() {
        let g = CommGraph::new(4);
        let asg = SmpAssignment::blocked(4, 2);
        assert_eq!(asg.locality(&g), 1.0);
    }
}
