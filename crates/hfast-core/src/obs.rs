//! Provisioning and reconfiguration observability.
//!
//! [`ReconfigObs`] records one timeline event per synchronization point —
//! coverage before/after and circuits changed, exactly the quantities §2.3
//! says the runtime accumulates — stamped with the *sync-point index* as its
//! logical timestamp, so the timeline is deterministic and replayable.
//! [`ProvisionObs`] counts provisioning builds process-wide when `HFAST_OBS`
//! is on.

use hfast_obs::{Counter, Histogram, JsonObj, ToJsonl, Tracer, Val};

use crate::reconfig::ReconfigStep;

/// Per-engine reconfiguration observability.
#[derive(Debug, Clone, Default)]
pub struct ReconfigObs {
    /// Synchronization points observed.
    pub adapts: Counter,
    /// Total circuits torn down or newly patched across all steps.
    pub circuits_changed: Counter,
    /// One `sync_point` event per adaptation, `t_ns` = sync-point index.
    pub timeline: Tracer,
}

impl ReconfigObs {
    /// A fresh instance.
    pub fn new() -> Self {
        ReconfigObs::default()
    }

    /// Records one adaptation at sync point `index`.
    pub fn record_step(&self, index: u64, step: &ReconfigStep) {
        self.adapts.inc();
        self.circuits_changed.add(step.circuits_changed as u64);
        self.timeline.record_at(
            index,
            step.reconfig_time_ns,
            "sync_point",
            vec![
                ("coverage_before", Val::F(step.coverage_before)),
                ("coverage_after", Val::F(step.coverage_after)),
                ("circuits_changed", Val::U(step.circuits_changed as u64)),
            ],
        );
    }

    /// One-line JSON summary.
    pub fn summary_jsonl(&self) -> String {
        JsonObj::new()
            .str("event", "reconfig_summary")
            .u64("adapts", self.adapts.get())
            .u64("circuits_changed", self.circuits_changed.get())
            .u64("timeline_events", self.timeline.len() as u64)
            .u64("timeline_dropped", self.timeline.dropped())
            .finish()
    }

    /// Exports the summary plus the coverage timeline to the `HFAST_OBS`
    /// sink.
    pub fn export(&self) {
        let mut lines = vec![self.summary_jsonl()];
        lines.extend(self.timeline.jsonl_lines());
        hfast_obs::emit_lines(lines);
    }
}

impl ToJsonl for ReconfigObs {
    fn to_jsonl(&self) -> String {
        self.summary_jsonl()
    }
}

/// Process-wide provisioning counters (active when `HFAST_OBS` is on).
#[derive(Debug, Default)]
pub struct ProvisionObs {
    /// Provisionings built.
    pub builds: Counter,
    /// Switch blocks allocated per build.
    pub blocks: Histogram,
    /// Dedicated circuits patched per build.
    pub circuits: Histogram,
}

impl ProvisionObs {
    /// One-line JSON summary.
    pub fn summary_jsonl(&self) -> String {
        JsonObj::new()
            .str("event", "provision_summary")
            .u64("builds", self.builds.get())
            .u64("blocks_p50", self.blocks.quantile_bound(0.5))
            .u64("blocks_max", self.blocks.quantile_bound(1.0))
            .u64("circuits_p50", self.circuits.quantile_bound(0.5))
            .finish()
    }
}

impl ToJsonl for ProvisionObs {
    fn to_jsonl(&self) -> String {
        self.summary_jsonl()
    }
}

/// The process-wide [`ProvisionObs`] instance.
pub fn provision_obs() -> &'static ProvisionObs {
    static GLOBAL: std::sync::OnceLock<ProvisionObs> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(ProvisionObs::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfig_timeline_carries_coverage() {
        let obs = ReconfigObs::new();
        let step = ReconfigStep {
            coverage_before: 0.25,
            coverage_after: 1.0,
            circuits_changed: 12,
            reconfig_time_ns: 5_000_000,
            strategy: "paper_linear",
            edges_touched: 12,
        };
        obs.record_step(0, &step);
        obs.record_step(1, &step);
        assert_eq!(obs.adapts.get(), 2);
        assert_eq!(obs.circuits_changed.get(), 24);
        let evs = obs.timeline.snapshot();
        assert_eq!(evs[0].t_ns, 0);
        assert_eq!(evs[1].t_ns, 1);
        let line = evs[0].to_jsonl();
        assert!(line.contains(r#""coverage_before":0.25"#));
        assert!(line.contains(r#""circuits_changed":12"#));
    }

    #[test]
    fn summaries_are_wellformed() {
        let obs = ReconfigObs::new();
        assert!(obs
            .to_jsonl()
            .starts_with(r#"{"event":"reconfig_summary","adapts":0"#));
        let p = ProvisionObs::default();
        p.builds.inc();
        p.blocks.record(64);
        assert!(p.to_jsonl().contains(r#""builds":1"#));
    }
}
