//! # hfast-core — the Hybrid Flexibly Assignable Switch Topology
//!
//! The paper's primary contribution (Shalf, Kamil, Oliker, Skinner, SC|05):
//! an interconnect that places a passive circuit-switch crossbar between
//! compute nodes and a pool of commodity packet-switch blocks, provisioning
//! blocks to match each application's *measured* communication topology
//! instead of paying for a fully connected network.
//!
//! * [`bdp`] — bandwidth-delay products and the 2 KB circuit-worthiness
//!   threshold (Table 1).
//! * [`switch`] — the circuit-switch crossbar and packet-switch block
//!   component models.
//! * [`provision`] — the §5.3 linear-time block-assignment algorithm and the
//!   resulting routed fabric.
//! * [`clique`] — the clique-aware clustering heuristic the paper proposes
//!   as future work, which shares blocks inside tightly coupled node groups.
//! * [`icn`] — the bounded-degree Interconnection Cached Network the paper
//!   compares against (embeds case-ii codes, overflows on case iii).
//! * [`anneal`] — iterative embedding refinement (§6's adaptive
//!   optimization direction).
//! * [`smp`] — SMP-node bandwidth localization (§5's deferred analysis).
//! * [`cost`] — fat-tree versus HFAST cost models and comparisons.
//! * [`classify`](mod@classify) — the §2.5 case i-iv application taxonomy.
//! * [`reconfig`] — runtime topology adaptation at synchronization points.
//! * [`fault`] — node-failure impact, mesh/torus versus HFAST.
//!
//! ```
//! use hfast_core::{CostModel, PaperLinear, ProvisionConfig, Provisioner};
//! use hfast_core::cost::AnalyticHfast;
//! use hfast_topology::generators::mesh3d_graph;
//!
//! // A Cactus-like stencil topology at P = 512.
//! let graph = mesh3d_graph((8, 8, 8), 300 << 10);
//! let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
//! assert_eq!(prov.total_blocks(), 512); // one 16-port block per node
//!
//! // At ultra scale, HFAST's linear packet-port cost undercuts the fat tree.
//! let config = ProvisionConfig { block_ports: 8, cutoff: 2048 };
//! let crossover = AnalyticHfast::crossover_p(6, config, &CostModel::default());
//! assert!(crossover.is_some());
//! ```

#![warn(missing_docs)]

pub mod anneal;
pub mod bdp;
pub mod classify;
pub mod clique;
pub mod cost;
pub mod fault;
pub mod icn;
pub mod obs;
pub mod provision;
pub mod provisioner;
pub mod reconfig;
pub mod smp;
pub mod switch;

pub use anneal::{optimize_clusters, AnnealOutcome};
pub use bdp::{InterconnectSpec, TABLE1_SYSTEMS, TARGET_BDP_BYTES};
pub use classify::{classify, CaseClass, Classification, ClassifyConfig};
pub use clique::cluster_nodes;
pub use cost::{hfast_cost, AnalyticHfast, CostComparison, CostModel, FatTree};
pub use fault::{hfast_fault_impact, remove_nodes, seeded_failures, torus_fault_impact};
pub use icn::{embed as icn_embed, IcnConfig, IcnEmbedding, IcnError};
pub use obs::{ProvisionObs, ReconfigObs};
pub use provision::{Cluster, EdgeCircuit, ProvisionConfig, Provisioning, Route};
pub use provisioner::{
    BffCircuit, Clustered, DemandDecomp, GraphDelta, PaperLinear, Provisioner, ReprovisionOutcome,
    Strategy,
};
pub use reconfig::{AdaptScope, ReconfigBuilder, ReconfigEngine, ReconfigStep};
pub use smp::{localize, SmpAssignment};
pub use switch::{CircuitSwitch, Endpoint, SwitchBlock, SwitchError};
