//! The paper's §2.5 application taxonomy: cases i-iv.
//!
//! * **Case i** — isotropic, low bounded TDC: maps onto a fixed mesh/torus.
//! * **Case ii** — anisotropic (irregular) but low bounded TDC: needs an
//!   adaptive interconnect; a bounded-degree approach (ICN) suffices.
//! * **Case iii** — low *average* TDC but arbitrarily large maximum: needs
//!   HFAST's flexibly assignable switch pool.
//! * **Case iv** — TDC ≈ P: only a fully connected network serves it.

use hfast_topology::{detect_structure, tdc, CommGraph, StructureClass};

/// The four interconnect-requirement classes of paper §2.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseClass {
    /// Isotropic, bounded low TDC → fixed mesh/torus suffices.
    CaseI,
    /// Anisotropic, bounded low TDC → bounded-degree adaptive (ICN).
    CaseII,
    /// Low average TDC, unbounded max TDC → HFAST.
    CaseIII,
    /// TDC ≈ P → fully connected network required.
    CaseIV,
}

impl CaseClass {
    /// The interconnect family the paper prescribes for this class.
    pub fn prescription(self) -> &'static str {
        match self {
            CaseClass::CaseI => "fixed mesh/torus (or any adaptive network)",
            CaseClass::CaseII => "bounded-degree adaptive network (ICN or HFAST)",
            CaseClass::CaseIII => "HFAST (flexibly assignable switch blocks)",
            CaseClass::CaseIV => "fully connected network (fat tree/crossbar)",
        }
    }
}

impl std::fmt::Display for CaseClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseClass::CaseI => write!(f, "case i"),
            CaseClass::CaseII => write!(f, "case ii"),
            CaseClass::CaseIII => write!(f, "case iii"),
            CaseClass::CaseIV => write!(f, "case iv"),
        }
    }
}

/// Classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifyConfig {
    /// Message-size cutoff applied before classification (the 2 KB BDP).
    pub cutoff: u64,
    /// "Low bounded TDC" bound — the switch-block partner capacity is the
    /// natural choice (15 for 16-port blocks).
    pub low_tdc: usize,
    /// Fraction of `P − 1` above which the average TDC is "full": case iv.
    pub full_fraction: f64,
    /// Max-over-average TDC ratio beyond which the pattern counts as
    /// non-uniform (case iii): "the average TDC is bounded by a small
    /// number, while the maximum TDC is arbitrarily large".
    pub divergence: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            cutoff: crate::bdp::TARGET_BDP_BYTES,
            low_tdc: 15,
            full_fraction: 0.5,
            divergence: 2.0,
        }
    }
}

/// Detailed classification result.
#[derive(Debug, Clone, PartialEq)]
pub struct Classification {
    /// The assigned class.
    pub case: CaseClass,
    /// Thresholded max TDC.
    pub max_tdc: usize,
    /// Thresholded average TDC.
    pub avg_tdc: f64,
    /// Detected regular structure, if any.
    pub structure: StructureClass,
    /// Human-readable reasoning.
    pub rationale: String,
}

/// Classifies a communication graph into the paper's case i-iv taxonomy.
pub fn classify(graph: &CommGraph, config: &ClassifyConfig) -> Classification {
    let n = graph.n();
    let summary = tdc(graph, config.cutoff);
    let structure = detect_structure(graph, config.cutoff);
    let full = (n.saturating_sub(1)) as f64 * config.full_fraction;

    let (case, rationale) = if n > 1 && summary.avg >= full {
        (
            CaseClass::CaseIV,
            format!(
                "average TDC {:.1} ≈ P−1 = {}: full bisection required",
                summary.avg,
                n - 1
            ),
        )
    } else if matches!(
        structure,
        StructureClass::Ring
            | StructureClass::Mesh3D(..)
            | StructureClass::Torus3D(..)
            | StructureClass::Hypercube(..)
    ) {
        (
            CaseClass::CaseI,
            format!("isotropic {structure} pattern with max TDC {}", summary.max),
        )
    } else if summary.max <= config.low_tdc
        && (summary.max as f64) <= config.divergence * summary.avg.max(1.0)
    {
        (
            CaseClass::CaseII,
            format!(
                "irregular but uniformly bounded: max TDC {} ≤ {} and within {}x of avg {:.1}",
                summary.max, config.low_tdc, config.divergence, summary.avg
            ),
        )
    } else {
        (
            CaseClass::CaseIII,
            format!(
                "average TDC {:.1} low but max TDC {} diverges (block degree {}, {}x bound)",
                summary.avg, summary.max, config.low_tdc, config.divergence
            ),
        )
    };

    Classification {
        case,
        max_tdc: summary.max,
        avg_tdc: summary.avg,
        structure,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::*;

    fn classify_default(g: &CommGraph) -> Classification {
        classify(g, &ClassifyConfig::default())
    }

    #[test]
    fn mesh_is_case_i() {
        // Cactus-like regular stencil.
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let c = classify_default(&g);
        assert_eq!(c.case, CaseClass::CaseI);
        assert_eq!(c.structure, StructureClass::Mesh3D(4, 4, 4));
    }

    #[test]
    fn irregular_bounded_is_case_ii() {
        // LBMHD-like: 12 scattered partners each, not a mesh.
        let n = 64;
        let mut g = CommGraph::new(n);
        for v in 0..n {
            for j in 1..=6usize {
                let u = (v + j * 7 + 3) % n; // scattered but regular-degree
                if u != v {
                    g.add_message(v, u, 800 << 10);
                }
            }
        }
        let c = classify_default(&g);
        assert_eq!(c.structure, StructureClass::Irregular);
        assert!(c.max_tdc <= 15, "bounded: {}", c.max_tdc);
        assert_eq!(c.case, CaseClass::CaseII);
    }

    #[test]
    fn divergent_max_is_case_iii() {
        // GTC/PMEMD-like: ring plus a few very-high-degree nodes.
        let n = 64;
        let mut g = ring_graph(n, 128 << 10);
        for u in 1..40 {
            g.add_message(0, u, 4096);
        }
        let c = classify_default(&g);
        assert_eq!(c.case, CaseClass::CaseIII);
        assert!(c.max_tdc > 15);
        assert!(c.avg_tdc < 8.0);
    }

    #[test]
    fn full_connectivity_is_case_iv() {
        let g = complete_graph(32, 32 << 10);
        let c = classify_default(&g);
        assert_eq!(c.case, CaseClass::CaseIV);
    }

    #[test]
    fn cutoff_can_change_the_class() {
        // Fully connected by tiny messages + a big-message ring: case iv
        // without thresholding (cutoff 0), case i at the BDP cutoff.
        let n = 16;
        let mut g = ring_graph(n, 1 << 20);
        for a in 0..n {
            for b in (a + 1)..n {
                g.add_message(a, b, 64);
            }
        }
        let uncut = classify(
            &g,
            &ClassifyConfig {
                cutoff: 0,
                ..Default::default()
            },
        );
        assert_eq!(uncut.case, CaseClass::CaseIV);
        let cut = classify_default(&g);
        assert_eq!(cut.case, CaseClass::CaseI);
        assert_eq!(cut.structure, StructureClass::Ring);
    }

    #[test]
    fn prescriptions_are_distinct() {
        let all = [
            CaseClass::CaseI,
            CaseClass::CaseII,
            CaseClass::CaseIII,
            CaseClass::CaseIV,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.prescription(), b.prescription());
            }
        }
        assert_eq!(CaseClass::CaseIII.to_string(), "case iii");
    }
}
