//! Clique-aware node clustering — the paper's stated future work (§5.3/§6).
//!
//! The optimal switch-block assignment reduces to clique cover, which is
//! NP-complete in general [Kou, Stockmeyer, Wong 1978]; the paper proposes
//! "heuristics that provide sub-optimal solutions in polynomial time". This
//! module implements such a heuristic: greedy BFS clustering that grows a
//! cluster around a seed node, admitting the candidate with the most edges
//! into the cluster while the cluster still fits a single switch block
//! (attachments plus external edge ports ≤ block ports).
//!
//! Edges interior to a cluster ride the block's internal crossbar for free —
//! "exercising the full internal bisection connectivity of these switch
//! blocks" — which is precisely what the per-node mapping wastes.

use hfast_topology::{CommGraph, CsrGraph};

use crate::provision::ProvisionConfig;

/// Port demand of a candidate cluster: one attachment per member plus one
/// port per edge leaving the cluster.
fn port_demand(csr: &CsrGraph, members: &[usize], in_cluster: &[bool]) -> usize {
    let mut external = 0;
    for &v in members {
        for &u in csr.neighbors(v) {
            if !in_cluster[u] {
                external += 1;
            }
        }
    }
    members.len() + external
}

/// Greedily clusters nodes so that each cluster fits one switch block.
///
/// Polynomial time (O(V·E) worst case at study sizes). Returns a disjoint
/// cover of all nodes; isolated nodes get singleton clusters.
pub fn cluster_nodes(graph: &CommGraph, config: &ProvisionConfig) -> Vec<Vec<usize>> {
    let csr = CsrGraph::from_graph(graph, config.cutoff);
    let n = csr.n();
    let k = config.block_ports;
    let mut assigned = vec![false; n];
    let mut clusters = Vec::new();

    // Seed from highest-degree nodes: dense neighbourhoods benefit most
    // from internal bisection.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(csr.degree(v)));

    let mut in_cluster = vec![false; n];
    for &seed in &order {
        if assigned[seed] {
            continue;
        }
        let mut members = vec![seed];
        in_cluster[seed] = true;

        loop {
            // Candidate: unassigned neighbour of the cluster with the most
            // internal edges.
            let mut best: Option<(usize, usize)> = None; // (internal_edges, node)
            for &v in &members {
                for &u in csr.neighbors(v) {
                    if assigned[u] || in_cluster[u] {
                        continue;
                    }
                    let internal = csr.neighbors(u).iter().filter(|&&w| in_cluster[w]).count();
                    if best.is_none_or(|(bi, bn)| internal > bi || (internal == bi && u < bn)) {
                        best = Some((internal, u));
                    }
                }
            }
            let Some((_, candidate)) = best else { break };
            // Admit only if the grown cluster still fits one block.
            members.push(candidate);
            in_cluster[candidate] = true;
            if port_demand(&csr, &members, &in_cluster) > k {
                members.pop();
                in_cluster[candidate] = false;
                break;
            }
        }

        for &v in &members {
            assigned[v] = true;
            in_cluster[v] = false;
        }
        members.sort_unstable();
        clusters.push(members);
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provisioner::{Clustered, PaperLinear, Provisioner};
    use hfast_topology::generators::{complete_graph, ring_graph};

    fn cfg(k: usize) -> ProvisionConfig {
        ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        }
    }

    fn is_disjoint_cover(clusters: &[Vec<usize>], n: usize) -> bool {
        let mut seen = vec![false; n];
        for c in clusters {
            for &v in c {
                if seen[v] {
                    return false;
                }
                seen[v] = true;
            }
        }
        seen.iter().all(|&s| s)
    }

    #[test]
    fn clusters_cover_all_nodes() {
        let g = ring_graph(12, 100_000);
        let clusters = cluster_nodes(&g, &cfg(8));
        assert!(is_disjoint_cover(&clusters, 12));
    }

    #[test]
    fn clique_fits_one_block() {
        // A 5-clique with k=16: 5 attachments + 0 external = 5 ≤ 16.
        let g = complete_graph(5, 1 << 20);
        let clusters = cluster_nodes(&g, &cfg(16));
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clustering_beats_per_node_on_cliques() {
        // Four disjoint 4-cliques.
        let n = 16;
        let mut g = CommGraph::new(n);
        for c in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_message(4 * c + i, 4 * c + j, 1 << 20);
                }
            }
        }
        let config = cfg(16);
        let clusters = cluster_nodes(&g, &config);
        let clustered = Clustered::new(clusters).provision(&g, config);
        let per_node = PaperLinear.provision(&g, config);
        clustered.validate(&g).unwrap();
        assert!(
            clustered.total_blocks() < per_node.total_blocks(),
            "clique clustering must save blocks: {} vs {}",
            clustered.total_blocks(),
            per_node.total_blocks()
        );
        assert_eq!(clustered.total_blocks(), 4);
    }

    #[test]
    fn isolated_nodes_get_singletons() {
        let g = CommGraph::new(3);
        let clusters = cluster_nodes(&g, &cfg(16));
        assert_eq!(clusters.len(), 3);
        assert!(is_disjoint_cover(&clusters, 3));
    }

    #[test]
    fn oversubscribed_neighbourhood_splits() {
        // Star of 20 leaves, k=8: hub cluster cannot hold everyone.
        let mut g = CommGraph::new(21);
        for i in 1..21 {
            g.add_message(0, i, 1 << 20);
        }
        let clusters = cluster_nodes(&g, &cfg(8));
        assert!(is_disjoint_cover(&clusters, 21));
        assert!(clusters.len() > 1);
        // The provisioning built from it must still route every edge.
        let p = Clustered::new(clusters).provision(&g, cfg(8));
        p.validate(&g).unwrap();
    }

    #[test]
    fn clustered_ring_validates_and_saves_ports() {
        let g = ring_graph(16, 100_000);
        let config = cfg(16);
        let clusters = cluster_nodes(&g, &config);
        let p = Clustered::new(clusters).provision(&g, config);
        p.validate(&g).unwrap();
        let per_node = PaperLinear.provision(&g, config);
        assert!(p.total_blocks() <= per_node.total_blocks());
    }
}
