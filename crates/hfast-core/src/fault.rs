//! Fault-tolerance analysis: node failures in fixed meshes versus HFAST.
//!
//! Paper §1: "individual link or node failures in a lower-degree
//! interconnection network are far more disruptive … any failure of a node
//! within a mesh will create a gap in the interconnect topology", whereas a
//! reconfigurable fabric simply re-provisions around the failed component.
//! These routines quantify both sides.

use hfast_topology::generators::torus3d_neighbors;
use hfast_topology::CommGraph;

use crate::provision::ProvisionConfig;
use crate::provisioner::{Clustered, PaperLinear, Provisioner};

/// Impact of node failures on a fixed 3D-torus interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshFaultReport {
    /// Nodes failed.
    pub failed: usize,
    /// Surviving node pairs with no route at all.
    pub unreachable_pairs: usize,
    /// Mean path dilation over surviving reachable pairs (post/pre hops).
    pub avg_dilation: f64,
    /// Worst path dilation.
    pub max_dilation: f64,
}

/// Impact of node failures on an HFAST fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HfastFaultReport {
    /// Nodes failed.
    pub failed: usize,
    /// Circuits repatched to drop the failed nodes.
    pub circuits_changed: usize,
    /// Whether any *surviving* pair lost its dedicated route.
    pub survivors_degraded: bool,
    /// Switch blocks freed back to the pool.
    pub blocks_freed: usize,
}

impl hfast_obs::ToJsonl for MeshFaultReport {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("event", "mesh_fault_report")
            .usize("failed", self.failed)
            .usize("unreachable_pairs", self.unreachable_pairs)
            .f64_p("avg_dilation", self.avg_dilation, 4)
            .f64_p("max_dilation", self.max_dilation, 4)
            .finish()
    }
}

impl hfast_obs::ToJsonl for HfastFaultReport {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("event", "hfast_fault_report")
            .usize("failed", self.failed)
            .usize("circuits_changed", self.circuits_changed)
            .bool("survivors_degraded", self.survivors_degraded)
            .usize("blocks_freed", self.blocks_freed)
            .finish()
    }
}

/// Draws `k` distinct indices from `0..n` deterministically from `seed`
/// (SplitMix64 over a shrinking candidate pool), returned in ascending
/// order.
///
/// This is the shared sampling primitive behind every seeded fault
/// scenario: the analytic reports here, `hfast-netsim`'s runtime
/// `FaultPlan` schedules, and the `faults_replay` sweep all pick failed
/// components through it, so "the same seed" means the same components
/// everywhere.
pub fn seeded_failures(k: usize, n: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut picked = Vec::with_capacity(k);
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for _ in 0..k {
        let idx = (next() % pool.len() as u64) as usize;
        picked.push(pool.swap_remove(idx));
    }
    picked.sort_unstable();
    picked
}

fn all_pairs_torus_distances(dims: (usize, usize, usize), alive: &[bool]) -> Vec<Vec<usize>> {
    let n = dims.0 * dims.1 * dims.2;
    let mut out = Vec::with_capacity(n);
    for src in 0..n {
        let mut dist = vec![usize::MAX; n];
        if alive[src] {
            let mut q = std::collections::VecDeque::new();
            dist[src] = 0;
            q.push_back(src);
            while let Some(v) = q.pop_front() {
                for u in torus3d_neighbors(dims, v) {
                    if alive[u] && dist[u] == usize::MAX {
                        dist[u] = dist[v] + 1;
                        q.push_back(u);
                    }
                }
            }
        }
        out.push(dist);
    }
    out
}

/// Quantifies failures on a 3D torus by comparing all-pairs hop counts with
/// and without the failed nodes (fault-free minimal routing, i.e. the best
/// any adaptive routing could do).
pub fn torus_fault_impact(dims: (usize, usize, usize), failed: &[usize]) -> MeshFaultReport {
    let n = dims.0 * dims.1 * dims.2;
    let mut alive = vec![true; n];
    for &f in failed {
        assert!(f < n, "failed node out of range");
        alive[f] = false;
    }
    let before = all_pairs_torus_distances(dims, &vec![true; n]);
    let after = all_pairs_torus_distances(dims, &alive);

    let mut unreachable = 0usize;
    let mut dil_sum = 0.0;
    let mut dil_count = 0usize;
    let mut dil_max: f64 = 0.0;
    for a in 0..n {
        if !alive[a] {
            continue;
        }
        for b in (a + 1)..n {
            if !alive[b] {
                continue;
            }
            let d0 = before[a][b];
            let d1 = after[a][b];
            if d1 == usize::MAX {
                unreachable += 1;
            } else if d0 > 0 {
                let dil = d1 as f64 / d0 as f64;
                dil_sum += dil;
                dil_count += 1;
                dil_max = dil_max.max(dil);
            }
        }
    }
    MeshFaultReport {
        failed: failed.len(),
        unreachable_pairs: unreachable,
        avg_dilation: if dil_count == 0 {
            1.0
        } else {
            dil_sum / dil_count as f64
        },
        max_dilation: if dil_count == 0 { 1.0 } else { dil_max },
    }
}

/// Returns `graph` with all edges incident to `failed` nodes removed
/// (indices are preserved so rank identities stay stable).
pub fn remove_nodes(graph: &CommGraph, failed: &[usize]) -> CommGraph {
    let n = graph.n();
    let dead = {
        let mut d = vec![false; n];
        for &f in failed {
            d[f] = true;
        }
        d
    };
    let mut survivors = Vec::new();
    for a in 0..n {
        if dead[a] {
            continue;
        }
        for (b, e) in graph.neighbors(a) {
            if b > a && !dead[b] {
                survivors.push((a, b, *e));
            }
        }
    }
    CommGraph::from_directed(n, survivors)
}

/// Quantifies failures on HFAST: re-provision the surviving communication
/// graph and report what changed. Surviving pairs keep dedicated routes —
/// the paper's claim that "when a node fails in an FCN, it can be taken
/// offline without compromising the messaging requirements for the
/// remaining nodes" carries over to HFAST.
pub fn hfast_fault_impact(
    graph: &CommGraph,
    config: ProvisionConfig,
    failed: &[usize],
) -> HfastFaultReport {
    let before = PaperLinear.provision(graph, config);
    let surviving = remove_nodes(graph, failed);
    // Re-provision only the alive nodes: failed nodes are offline, so their
    // blocks return to the pool.
    let dead = {
        let mut d = vec![false; graph.n()];
        for &f in failed {
            d[f] = true;
        }
        d
    };
    let alive_clusters: Vec<Vec<usize>> = (0..graph.n())
        .filter(|&v| !dead[v])
        .map(|v| vec![v])
        .collect();
    let after = Clustered::new(alive_clusters).provision(&surviving, config);

    let old: std::collections::BTreeSet<_> = before.circuit.circuits().collect();
    let new: std::collections::BTreeSet<_> = after.circuit.circuits().collect();
    let changed = old.symmetric_difference(&new).count();

    // Check every surviving above-cutoff pair still routes.
    let mut degraded = false;
    for a in 0..surviving.n() {
        for (b, e) in surviving.neighbors(a) {
            if b > a && e.max_msg >= config.cutoff && after.route(a, b).is_none() {
                degraded = true;
            }
        }
    }
    HfastFaultReport {
        failed: failed.len(),
        circuits_changed: changed,
        survivors_degraded: degraded,
        blocks_freed: before.total_blocks().saturating_sub(after.total_blocks()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{mesh3d_graph, ring_graph};
    use hfast_topology::tdc::tdc;

    #[test]
    fn seeded_failures_are_deterministic_and_distinct() {
        let a = seeded_failures(8, 64, 42);
        let b = seeded_failures(8, 64, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup, a, "sorted and distinct");
        assert!(a.iter().all(|&v| v < 64));
        let c = seeded_failures(8, 64, 43);
        assert_ne!(a, c, "different seeds draw different components");
        assert_eq!(seeded_failures(10, 3, 7), vec![0, 1, 2], "k clamps to n");
        assert!(seeded_failures(0, 10, 7).is_empty());
    }

    #[test]
    fn torus_single_failure_routes_around() {
        let report = torus_fault_impact((4, 4, 4), &[21]);
        assert_eq!(report.failed, 1);
        assert_eq!(
            report.unreachable_pairs, 0,
            "a torus routes around one loss"
        );
        assert!(report.avg_dilation >= 1.0);
    }

    #[test]
    fn ring_single_failure_dilates_paths() {
        // A 1x1x8 torus is a ring: neighbours of the failed node must now
        // route the long way around.
        let report = torus_fault_impact((1, 1, 8), &[1]);
        assert_eq!(report.unreachable_pairs, 0);
        assert!(report.max_dilation >= 3.0, "0-2 goes from 2 to 6 hops");
        assert!(report.avg_dilation > 1.0);
    }

    #[test]
    fn torus_no_failures_is_identity() {
        let report = torus_fault_impact((3, 3, 3), &[]);
        assert_eq!(report.unreachable_pairs, 0);
        assert!((report.avg_dilation - 1.0).abs() < 1e-12);
        assert!((report.max_dilation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_ring_partition() {
        // A 1x1xN torus is a ring: two failures partition it.
        let report = torus_fault_impact((1, 1, 8), &[1, 5]);
        assert!(report.unreachable_pairs > 0, "severed ring yields islands");
    }

    #[test]
    fn remove_nodes_preserves_other_edges() {
        let g = ring_graph(6, 4096);
        let cut = remove_nodes(&g, &[2]);
        assert_eq!(cut.degree(2), 0);
        assert_eq!(cut.degree(0), 2);
        assert_eq!(cut.degree(1), 1, "lost its link to node 2");
        assert_eq!(cut.edge(0, 1).bytes, g.edge(0, 1).bytes);
        assert!(cut.is_symmetric());
    }

    #[test]
    fn hfast_survivors_keep_routes() {
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let report = hfast_fault_impact(&g, ProvisionConfig::default(), &[13, 37]);
        assert_eq!(report.failed, 2);
        assert!(!report.survivors_degraded);
        assert!(
            report.blocks_freed >= 2,
            "failed nodes' blocks return to pool"
        );
        assert!(report.circuits_changed > 0);
    }

    #[test]
    fn hfast_no_failures_changes_nothing() {
        let g = ring_graph(8, 1 << 20);
        let report = hfast_fault_impact(&g, ProvisionConfig::default(), &[]);
        assert_eq!(report.circuits_changed, 0);
        assert_eq!(report.blocks_freed, 0);
        assert!(!report.survivors_degraded);
    }

    #[test]
    fn contrast_story_holds() {
        // The paper's argument: a fixed low-degree network degrades under
        // failures (here a ring severed into islands) while HFAST simply
        // re-provisions the survivors. Verify both on the same footprint.
        let dims = (1, 1, 16);
        let g = mesh3d_graph(dims, 1 << 20);
        assert!(tdc(&g, 0).max <= 2);
        let fixed = torus_fault_impact(dims, &[2, 9]);
        let hfast = hfast_fault_impact(&g, ProvisionConfig::default(), &[2, 9]);
        assert!(
            fixed.unreachable_pairs > 0,
            "two ring failures partition it"
        );
        assert!(!hfast.survivors_degraded);
        assert!(hfast.blocks_freed >= 2);
    }
}
