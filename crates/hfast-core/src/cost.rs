//! Interconnect cost models (paper §5.3).
//!
//! Fat trees built from N-port packet switches support `P = 2·(N/2)^L`
//! processors with `L` layers, consuming `1 + 2(L−1)` switch ports per
//! processor — superlinear total cost. HFAST buys `N_active` packet-switch
//! blocks (linear in P for bounded TDC), one circuit-switch port per patched
//! endpoint (cheap per port), and a low-bandwidth tree for collectives:
//!
//! ```text
//! Cost_HFAST = N_active·Cost_active + Cost_passive + Cost_collective
//! ```

use crate::provision::Provisioning;

/// Relative per-port / per-node component prices.
///
/// Only *ratios* matter for the paper's conclusions; the defaults encode the
/// paper's qualitative claims — circuit-switch ports are far cheaper than
/// leading-edge packet-switch ports (MEMS mirrors vs line-rate ASICs, §2.1),
/// and the collective tree uses "considerably less expensive hardware
/// components" (§2.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of one packet-switch port (normalized to 1.0).
    pub packet_port: f64,
    /// Price of one circuit-switch (MEMS) port.
    pub circuit_port: f64,
    /// Per-node price of the low-bandwidth collective tree network.
    pub collective_per_node: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            packet_port: 1.0,
            circuit_port: 0.25,
            collective_per_node: 0.25,
        }
    }
}

/// Fat-tree dimensioning for `p` processors built from `n_ports`-port
/// switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    /// Processors supported.
    pub p: usize,
    /// Switch port count per switch.
    pub n_ports: usize,
    /// Layers.
    pub layers: usize,
}

impl FatTree {
    /// Smallest fat tree of `n_ports`-port switches covering `p` processors:
    /// the minimum `L` with `2·(N/2)^L ≥ p` (paper §5.3 formula).
    pub fn for_processors(p: usize, n_ports: usize) -> Self {
        assert!(n_ports >= 4, "fat-tree switches need at least 4 ports");
        assert!(p >= 1);
        let half = n_ports / 2;
        let mut layers = 1;
        let mut capacity = 2 * half;
        while capacity < p {
            capacity = capacity.saturating_mul(half);
            layers += 1;
        }
        FatTree { p, n_ports, layers }
    }

    /// Processors a fat tree of `layers` layers supports: `2·(N/2)^L`.
    pub fn capacity(n_ports: usize, layers: usize) -> usize {
        let half = n_ports / 2;
        2usize.saturating_mul(half.saturating_pow(layers as u32))
    }

    /// Switch ports consumed per processor: `1 + 2(L−1)` (paper §5.3 —
    /// e.g. 11 ports per processor for a 6-layer tree of 8-port switches).
    pub fn ports_per_processor(&self) -> usize {
        1 + 2 * (self.layers - 1)
    }

    /// Total switch ports in the interconnect.
    pub fn total_ports(&self) -> usize {
        self.p * self.ports_per_processor()
    }

    /// Worst-case packet switches traversed: up `L` and down `L−1`.
    pub fn max_switch_hops(&self) -> usize {
        2 * self.layers - 1
    }

    /// Interconnect cost: every port is a packet-switch port.
    pub fn cost(&self, model: &CostModel) -> f64 {
        self.total_ports() as f64 * model.packet_port
    }
}

/// Closed-form HFAST resource estimate for a uniform-degree application at
/// scales too large to materialize a dense communication graph.
///
/// Matches [`hfast_cost`] exactly for regular topologies where every node
/// has the same thresholded TDC (verified by tests), which is how the
/// paper's §5.3 per-node scaling argument is framed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticHfast {
    /// Processors.
    pub p: usize,
    /// Thresholded TDC per node (uniform).
    pub tdc: usize,
    /// Provisioning parameters.
    pub config: crate::provision::ProvisionConfig,
}

impl AnalyticHfast {
    /// Packet-switch ports purchased: blocks per node × ports per block.
    pub fn packet_ports(&self) -> usize {
        self.p * self.config.blocks_needed(1, self.tdc) * self.config.block_ports
    }

    /// Circuit-switch ports in use: 2 per node attachment (node side +
    /// block side) plus 2 per provisioned edge (one block port each side),
    /// with `p·tdc/2` edges.
    pub fn circuit_ports(&self) -> usize {
        2 * self.p + self.p * self.tdc
    }

    /// Total cost under a component price model.
    pub fn cost(&self, model: &CostModel) -> f64 {
        self.packet_ports() as f64 * model.packet_port
            + self.circuit_ports() as f64 * model.circuit_port
            + self.p as f64 * model.collective_per_node
    }

    /// Smallest power-of-two processor count at which HFAST becomes cheaper
    /// than a fat tree of same-port-count switches, or `None` if it never
    /// does below 2³⁰ (a case-iv style workload).
    pub fn crossover_p(
        tdc: usize,
        config: crate::provision::ProvisionConfig,
        model: &CostModel,
    ) -> Option<usize> {
        let mut p = 2usize;
        while p <= (1 << 30) {
            let analytic = AnalyticHfast { p, tdc, config };
            let ft = FatTree::for_processors(p, config.block_ports);
            if analytic.cost(model) < ft.cost(model) {
                return Some(p);
            }
            p *= 2;
        }
        None
    }
}

/// Cost of an HFAST provisioning under a component price model.
pub fn hfast_cost(prov: &Provisioning, model: &CostModel) -> f64 {
    let active = prov.total_block_ports() as f64 * model.packet_port;
    // The passive crossbar provides a port for every patched endpoint
    // (nodes + block ports); it must be sized like an FCN, but at the
    // circuit-port price (§5.3: "the number of ports required for the
    // passive circuit switch grows by the same proportion as a full FCN …
    // the cost per port is far less").
    let passive = prov.circuit_ports_used() as f64 * model.circuit_port;
    let collective = prov.n_nodes as f64 * model.collective_per_node;
    active + passive + collective
}

/// Side-by-side comparison for one application topology at one scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostComparison {
    /// HFAST total cost.
    pub hfast: f64,
    /// Fat-tree total cost.
    pub fat_tree: f64,
    /// Packet-switch ports per node under HFAST.
    pub hfast_ports_per_node: f64,
    /// Packet-switch ports per node under the fat tree.
    pub fat_tree_ports_per_node: usize,
}

impl CostComparison {
    /// Compares a provisioning against the equivalent fat tree built from
    /// switches of the same port count.
    pub fn of(prov: &Provisioning, model: &CostModel) -> Self {
        let ft = FatTree::for_processors(prov.n_nodes, prov.config.block_ports);
        CostComparison {
            hfast: hfast_cost(prov, model),
            fat_tree: ft.cost(model),
            hfast_ports_per_node: prov.block_ports_per_node(),
            fat_tree_ports_per_node: ft.ports_per_processor(),
        }
    }

    /// True where the paper's thesis holds: HFAST is the cheaper build.
    pub fn hfast_wins(&self) -> bool {
        self.hfast < self.fat_tree
    }

    /// HFAST cost as a fraction of fat-tree cost.
    pub fn ratio(&self) -> f64 {
        self.hfast / self.fat_tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::ProvisionConfig;
    use crate::provisioner::{PaperLinear, Provisioner};
    use hfast_topology::generators::{complete_graph, mesh3d_graph};

    #[test]
    fn fat_tree_formula_examples() {
        // 2·(8/2)^L: L=1 → 8, L=2 → 32, … L=6 → 8192.
        assert_eq!(FatTree::capacity(8, 1), 8);
        assert_eq!(FatTree::capacity(8, 2), 32);
        assert_eq!(FatTree::capacity(8, 6), 8192);
        let ft = FatTree::for_processors(2048, 8);
        // NOTE: the paper's prose pairs "6 layers" with 2048 processors,
        // which its own formula does not produce (L=5 already covers 2048);
        // we implement the formula and document the delta in EXPERIMENTS.md.
        assert_eq!(ft.layers, 5);
        let ft6 = FatTree {
            p: 8192,
            n_ports: 8,
            layers: 6,
        };
        assert_eq!(
            ft6.ports_per_processor(),
            11,
            "the paper's 11 ports/processor example"
        );
    }

    #[test]
    fn fat_tree_ports_grow_superlinearly_per_node() {
        let small = FatTree::for_processors(64, 16);
        let big = FatTree::for_processors(65536, 16);
        assert!(big.ports_per_processor() > small.ports_per_processor());
    }

    #[test]
    fn fat_tree_hops() {
        let ft = FatTree::for_processors(64, 16);
        assert_eq!(ft.max_switch_hops(), 2 * ft.layers - 1);
    }

    #[test]
    fn hfast_beats_fat_tree_for_low_tdc_at_ultra_scale() {
        // The paper's peta-scale argument: HFAST's packet ports stay
        // constant per node while the fat tree's grow with log P. For a
        // TDC-6 stencil on 8-port components the crossover lands at
        // achievable machine sizes; at small P the fat tree is cheaper.
        let config = ProvisionConfig {
            block_ports: 8,
            cutoff: 2048,
        };
        let model = CostModel::default();
        let crossover =
            AnalyticHfast::crossover_p(6, config, &model).expect("low-TDC apps must cross over");
        assert!(
            crossover <= 1 << 17,
            "crossover {crossover} should be at ultra-scale sizes"
        );
        // Before the crossover the fat tree wins; after it, HFAST does.
        let small = AnalyticHfast {
            p: 64,
            tdc: 6,
            config,
        };
        let ft_small = FatTree::for_processors(64, 8);
        assert!(small.cost(&model) >= ft_small.cost(&model));
        let big = AnalyticHfast {
            p: crossover * 4,
            tdc: 6,
            config,
        };
        let ft_big = FatTree::for_processors(crossover * 4, 8);
        assert!(big.cost(&model) < ft_big.cost(&model));
    }

    #[test]
    fn analytic_matches_exact_provisioning_on_regular_graphs() {
        // A torus gives every node the same TDC (6): the closed form must
        // agree with the fully materialized provisioning.
        use hfast_topology::generators::torus3d_graph;
        let g = torus3d_graph((4, 4, 4), 300 << 10);
        let config = ProvisionConfig::default();
        let prov = PaperLinear.provision(&g, config);
        let analytic = AnalyticHfast {
            p: 64,
            tdc: 6,
            config,
        };
        assert_eq!(analytic.packet_ports(), prov.total_block_ports());
        assert_eq!(analytic.circuit_ports(), prov.circuit_ports_used());
        let model = CostModel::default();
        assert!((analytic.cost(&model) - hfast_cost(&prov, &model)).abs() < 1e-9);
    }

    #[test]
    fn fcn_class_apps_do_not_favor_hfast() {
        // PARATEC-like: fully connected at P=64 with big messages. The
        // per-node mapping needs block trees for degree 63 ≫ 15.
        let g = complete_graph(64, 32 << 10);
        let p = PaperLinear.provision(&g, ProvisionConfig::default());
        let cmp = CostComparison::of(&p, &CostModel::default());
        assert!(
            !cmp.hfast_wins(),
            "case-iv app: hfast {} vs fat tree {}",
            cmp.hfast,
            cmp.fat_tree
        );
    }

    #[test]
    fn hfast_packet_ports_scale_linearly() {
        // Same per-node TDC at two scales → identical ports/node.
        let small = PaperLinear.provision(
            &mesh3d_graph((4, 4, 4), 300 << 10),
            ProvisionConfig::default(),
        );
        let large = PaperLinear.provision(
            &mesh3d_graph((8, 8, 8), 300 << 10),
            ProvisionConfig::default(),
        );
        assert!((small.block_ports_per_node() - large.block_ports_per_node()).abs() < 1e-12);
    }

    #[test]
    fn cost_model_components_add_up() {
        let g = mesh3d_graph((2, 2, 2), 1 << 20);
        let prov = PaperLinear.provision(&g, ProvisionConfig::default());
        let model = CostModel {
            packet_port: 1.0,
            circuit_port: 0.0,
            collective_per_node: 0.0,
        };
        assert_eq!(hfast_cost(&prov, &model), prov.total_block_ports() as f64);
        let model2 = CostModel {
            packet_port: 0.0,
            circuit_port: 1.0,
            collective_per_node: 0.0,
        };
        assert_eq!(hfast_cost(&prov, &model2), prov.circuit_ports_used() as f64);
    }

    #[test]
    #[should_panic(expected = "at least 4 ports")]
    fn tiny_switches_rejected() {
        FatTree::for_processors(8, 2);
    }
}
