//! Bandwidth-delay products (paper §2.4, Table 1).
//!
//! The bandwidth-delay product of a link is the number of bytes that must be
//! in flight to saturate it — equivalently, the smallest non-pipelined
//! message that can fully utilize the link. The paper uses 2 KB (the best of
//! the surveyed interconnects) as the threshold below which a message gains
//! nothing from a dedicated HFAST circuit.

/// Peak characteristics of an interconnect technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectSpec {
    /// System name.
    pub system: &'static str,
    /// Interconnect technology.
    pub technology: &'static str,
    /// MPI latency in microseconds.
    pub mpi_latency_us: f64,
    /// Peak unidirectional bandwidth per CPU in GB/s.
    pub peak_bandwidth_gbs: f64,
}

impl InterconnectSpec {
    /// Bandwidth-delay product in bytes: latency × bandwidth.
    pub fn bdp_bytes(&self) -> f64 {
        self.mpi_latency_us * 1e-6 * self.peak_bandwidth_gbs * 1e9
    }

    /// The vendor `N½` metric: the message size achieving half of peak
    /// bandwidth, typically half the bandwidth-delay product (§2.4).
    pub fn n_half_bytes(&self) -> f64 {
        self.bdp_bytes() / 2.0
    }
}

/// The five systems of Table 1.
pub const TABLE1_SYSTEMS: [InterconnectSpec; 5] = [
    InterconnectSpec {
        system: "SGI Altix",
        technology: "Numalink-4",
        mpi_latency_us: 1.1,
        peak_bandwidth_gbs: 1.9,
    },
    InterconnectSpec {
        system: "Cray X1",
        technology: "Cray Custom",
        mpi_latency_us: 7.3,
        peak_bandwidth_gbs: 6.3,
    },
    InterconnectSpec {
        system: "NEC Earth Simulator",
        technology: "NEC Custom",
        mpi_latency_us: 5.6,
        peak_bandwidth_gbs: 1.5,
    },
    InterconnectSpec {
        system: "Myrinet Cluster",
        technology: "Myrinet 2000",
        mpi_latency_us: 5.7,
        peak_bandwidth_gbs: 0.5,
    },
    InterconnectSpec {
        system: "Cray XD1",
        technology: "RapidArray/IB4x",
        mpi_latency_us: 1.7,
        peak_bandwidth_gbs: 2.0,
    },
];

/// The paper's chosen threshold: 2 KB, "the state of the art in current
/// switch technology and an aggressive goal for future leading-edge switch
/// technologies".
pub const TARGET_BDP_BYTES: u64 = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1's BDP column, in bytes (2 KB, 46 KB, 8.4 KB, 2.8 KB,
    /// 3.4 KB).
    const PAPER_BDP_KB: [f64; 5] = [2.0, 46.0, 8.4, 2.8, 3.4];

    #[test]
    fn bdp_matches_table1() {
        for (spec, &paper_kb) in TABLE1_SYSTEMS.iter().zip(&PAPER_BDP_KB) {
            let kb = spec.bdp_bytes() / 1024.0;
            // The paper rounds to 2 significant figures.
            assert!(
                (kb - paper_kb).abs() / paper_kb < 0.05,
                "{}: computed {kb:.2} KB vs paper {paper_kb} KB",
                spec.system
            );
        }
    }

    #[test]
    fn altix_is_the_best_and_near_2kb() {
        let best = TABLE1_SYSTEMS
            .iter()
            .min_by(|a, b| a.bdp_bytes().total_cmp(&b.bdp_bytes()))
            .unwrap();
        assert_eq!(best.system, "SGI Altix");
        assert!((best.bdp_bytes() - TARGET_BDP_BYTES as f64).abs() < 100.0);
    }

    #[test]
    fn n_half_is_half_bdp() {
        let s = TABLE1_SYSTEMS[0];
        assert!((s.n_half_bytes() * 2.0 - s.bdp_bytes()).abs() < 1e-9);
    }
}
