//! ICN — the Interconnection Cached Network (Gupta & Schenfeld), the
//! bounded-degree alternative the paper contrasts HFAST against (§2.2).
//!
//! An ICN organizes processing elements into blocks of size *k* joined by
//! small crossbars, with the k-blocks linked through a circuit switch — the
//! *inverse* of HFAST ("the processors are connected to the packet switch
//! via the circuit switch, whereas the ICN uses processors that are
//! connected to the circuit switch via an intervening packet switch").
//! An ICN can embed a communication graph only if the *bounded contraction*
//! of the topology — the degree of every node group — stays below *k*;
//! finding such an embedding is NP-complete for general graphs when k > 2.
//!
//! This module implements a polynomial-time embedding heuristic plus the
//! checks that make the paper's case analysis concrete: case-ii codes
//! (bounded uniform degree) embed; case-iii codes (divergent max TDC)
//! overflow the fixed per-PE crossbar and fail.

use hfast_topology::{CommGraph, CsrGraph};

use crate::clique;
use crate::provision::ProvisionConfig;

/// ICN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcnConfig {
    /// Processing elements per block (the crossbar size *k*).
    pub block_size: usize,
    /// Message-size cutoff for the embedded topology.
    pub cutoff: u64,
}

impl Default for IcnConfig {
    fn default() -> Self {
        IcnConfig {
            block_size: 16,
            cutoff: crate::bdp::TARGET_BDP_BYTES,
        }
    }
}

/// Why an embedding attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcnError {
    /// A node's thresholded degree exceeds what one PE's crossbar share can
    /// carry without multi-path sharing (the paper: "if the communication
    /// topology has nodes with degree greater than k, some of the messages
    /// will need to take more than one path … bandwidth is reduced").
    DegreeOverflow {
        /// The offending node.
        node: usize,
        /// Its thresholded degree.
        degree: usize,
        /// The block size it must fit under.
        k: usize,
    },
}

impl std::fmt::Display for IcnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IcnError::DegreeOverflow { node, degree, k } => write!(
                f,
                "node {node} has degree {degree} ≥ block size {k}: messages must share paths"
            ),
        }
    }
}

/// A successful ICN embedding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcnEmbedding {
    /// Block index per node.
    pub node_block: Vec<usize>,
    /// Number of k-blocks used.
    pub blocks: usize,
    /// Inter-block circuit connections required (unique block pairs with
    /// at least one edge between them).
    pub circuit_links: usize,
    /// Edges served inside one block's crossbar.
    pub intra_edges: usize,
}

/// Attempts to embed `graph` into an ICN of `config.block_size`-PE blocks.
///
/// Heuristic (polynomial): nodes are clustered into blocks with the same
/// greedy neighbourhood packing used for HFAST clique mapping; the
/// embedding is accepted iff every node's thresholded degree is below the
/// block size — the necessary condition the paper states, and the one that
/// separates case ii from case iii. (The full bounded-contraction test is
/// NP-complete; this heuristic can reject embeddable graphs but never
/// accepts an overflowing one.)
pub fn embed(graph: &CommGraph, config: &IcnConfig) -> Result<IcnEmbedding, IcnError> {
    let k = config.block_size;
    let csr = CsrGraph::from_graph(graph, config.cutoff);
    for node in 0..csr.n() {
        let degree = csr.degree(node);
        if degree >= k {
            return Err(IcnError::DegreeOverflow { node, degree, k });
        }
    }
    // Reuse the clique clustering: ICN blocks are fixed-size PE groups, so
    // cap clusters at k members (port feasibility in the HFAST heuristic
    // already bounds them more tightly; split any oversize remainder).
    let prov_config = ProvisionConfig {
        block_ports: k,
        cutoff: config.cutoff,
    };
    let mut clusters = clique::cluster_nodes(graph, &prov_config);
    let mut fixed = Vec::new();
    for c in clusters.drain(..) {
        if c.len() <= k {
            fixed.push(c);
        } else {
            for chunk in c.chunks(k) {
                fixed.push(chunk.to_vec());
            }
        }
    }
    let mut node_block = vec![usize::MAX; csr.n()];
    for (b, members) in fixed.iter().enumerate() {
        for &v in members {
            node_block[v] = b;
        }
    }
    let mut intra = 0usize;
    let mut links = std::collections::BTreeSet::new();
    for a in 0..csr.n() {
        for &b in csr.neighbors(a) {
            if b <= a {
                continue;
            }
            if node_block[a] == node_block[b] {
                intra += 1;
            } else {
                let (lo, hi) = (
                    node_block[a].min(node_block[b]),
                    node_block[a].max(node_block[b]),
                );
                links.insert((lo, hi));
            }
        }
    }
    Ok(IcnEmbedding {
        blocks: fixed.len(),
        node_block,
        circuit_links: links.len(),
        intra_edges: intra,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::{mesh3d_graph, ring_graph};
    use hfast_topology::CommGraph;

    #[test]
    fn bounded_degree_pattern_embeds() {
        // LBMHD-class (case ii): uniform degree 12 < k = 16.
        let mut g = CommGraph::new(64);
        for v in 0..64usize {
            for j in [5usize, 11, 17, 23, 29, 35] {
                g.add_message(v, (v + j) % 64, 800 << 10);
            }
        }
        let emb = embed(&g, &IcnConfig::default()).expect("case-ii embeds");
        assert!(emb.blocks >= 4);
        assert!(emb.node_block.iter().all(|&b| b < emb.blocks));
    }

    #[test]
    fn divergent_degree_overflows() {
        // GTC/PMEMD-class (case iii): one node with degree ≥ k.
        let mut g = ring_graph(64, 128 << 10);
        for u in 1..30usize {
            g.add_message(0, u, 4096);
        }
        let err = embed(&g, &IcnConfig::default()).unwrap_err();
        match err {
            IcnError::DegreeOverflow {
                node: 0,
                degree,
                k: 16,
            } => {
                assert!(degree >= 16);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(err.to_string().contains("share paths"));
    }

    #[test]
    fn mesh_embeds_with_intra_block_savings() {
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let emb = embed(&g, &IcnConfig::default()).expect("mesh embeds");
        assert!(
            emb.intra_edges > 0,
            "neighbourhood packing keeps some edges inside blocks"
        );
        assert!(emb.blocks <= 64);
    }

    #[test]
    fn cutoff_determines_embeddability() {
        // Full tiny-message connectivity + a big ring: overflowing uncut,
        // embeddable at the BDP cutoff.
        let mut g = ring_graph(32, 1 << 20);
        for a in 0..32usize {
            for b in (a + 1)..32 {
                g.add_message(a, b, 64);
            }
        }
        assert!(embed(
            &g,
            &IcnConfig {
                block_size: 16,
                cutoff: 0
            }
        )
        .is_err());
        assert!(embed(&g, &IcnConfig::default()).is_ok());
    }

    #[test]
    fn empty_graph_embeds_trivially() {
        let g = CommGraph::new(8);
        let emb = embed(&g, &IcnConfig::default()).unwrap();
        assert_eq!(emb.intra_edges, 0);
        assert_eq!(emb.circuit_links, 0);
    }
}
