//! Iterative clustering refinement — the paper's §6 optimization direction.
//!
//! "We may also adapt the genetic programming approaches used for optimizing
//! the fixed switch topology of the Flat Neighborhood Networks to optimize
//! the embedding. An even more promising approach is to apply runtime
//! iterative or adaptive approaches that incrementally arrive on an optimal
//! embedding."
//!
//! [`optimize_clusters`] refines an initial clustering by local moves
//! (relocate one node to a neighbouring cluster, or merge two small
//! clusters) under simulated annealing, minimizing the number of switch
//! blocks the provisioning needs. Deterministic for a given seed; the
//! greedy [`crate::clique::cluster_nodes`] result is both the usual seed
//! and the baseline the ablation bench compares against.

use hfast_topology::{CommGraph, CsrGraph};

use crate::provision::ProvisionConfig;

/// SplitMix64 — deterministic, dependency-free randomness for the search.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Cost of a clustering: total switch blocks, with total ports as a
/// tie-breaker (both are what the §5.3 cost function buys).
fn clustering_cost(
    csr: &CsrGraph,
    clusters: &[Vec<usize>],
    node_cluster: &[usize],
    config: &ProvisionConfig,
) -> (usize, usize) {
    let mut blocks = 0usize;
    let mut ports = 0usize;
    for members in clusters {
        if members.is_empty() {
            continue;
        }
        let mut external = 0usize;
        for &v in members {
            for &u in csr.neighbors(v) {
                if node_cluster[u] != node_cluster[v] {
                    external += 1;
                }
            }
        }
        let b = config.blocks_needed(members.len(), external);
        blocks += b;
        ports += members.len() + external + 2 * (b - 1);
    }
    (blocks, ports)
}

/// Outcome of an optimization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnealOutcome {
    /// The refined clustering (empty clusters removed).
    pub clusters: Vec<Vec<usize>>,
    /// Blocks needed by the initial clustering.
    pub initial_blocks: usize,
    /// Blocks needed by the refined clustering.
    pub final_blocks: usize,
    /// Local moves accepted.
    pub accepted_moves: usize,
}

/// Refines `initial` clustering for `iterations` proposed moves.
///
/// Every accepted state remains *feasible by construction*: the block-count
/// objective is computed with the same [`ProvisionConfig::blocks_needed`]
/// capacity rule the provisioner uses, so any clustering this returns can
/// be materialized by [`crate::provisioner::Clustered`].
pub fn optimize_clusters(
    graph: &CommGraph,
    config: &ProvisionConfig,
    initial: Vec<Vec<usize>>,
    iterations: usize,
    seed: u64,
) -> AnnealOutcome {
    let csr = CsrGraph::from_graph(graph, config.cutoff);
    let n = csr.n();
    let mut clusters = initial;
    let mut node_cluster = vec![usize::MAX; n];
    for (cid, members) in clusters.iter().enumerate() {
        for &v in members {
            node_cluster[v] = cid;
        }
    }
    assert!(
        node_cluster.iter().all(|&c| c != usize::MAX),
        "initial clustering must cover every node"
    );

    let mut rng = SplitMix64(seed ^ 0xC0FF_EE00_D15E_A5E5);
    let (initial_blocks, _) = clustering_cost(&csr, &clusters, &node_cluster, config);
    let mut current = clustering_cost(&csr, &clusters, &node_cluster, config);
    let mut accepted = 0usize;

    for step in 0..iterations {
        if n < 2 {
            break;
        }
        // Propose: move a random node into the cluster of one of its
        // neighbours (relocations along edges are the moves that can turn
        // inter-cluster ports into free intra-block paths).
        let v = rng.below(n);
        let neighbors = csr.neighbors(v);
        if neighbors.is_empty() {
            continue;
        }
        let target = node_cluster[neighbors[rng.below(neighbors.len())]];
        let source = node_cluster[v];
        if target == source {
            continue;
        }

        // Apply tentatively.
        clusters[source].retain(|&x| x != v);
        clusters[target].push(v);
        node_cluster[v] = target;

        let candidate = clustering_cost(&csr, &clusters, &node_cluster, config);
        // Annealing acceptance: always take improvements; take mild
        // regressions early in the schedule.
        let temperature = 1.0 - (step as f64 / iterations.max(1) as f64);
        let accept = candidate <= current
            || (candidate.0 == current.0
                && candidate.1 <= current.1 + 2
                && rng.chance(0.3 * temperature));
        if accept {
            current = candidate;
            accepted += 1;
        } else {
            // Revert.
            clusters[target].retain(|&x| x != v);
            clusters[source].push(v);
            node_cluster[v] = source;
        }
    }

    clusters.retain(|c| !c.is_empty());
    AnnealOutcome {
        initial_blocks,
        final_blocks: current.0,
        accepted_moves: accepted,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::cluster_nodes;
    use crate::provisioner::{Clustered, Provisioner};
    use hfast_topology::generators::{ring_graph, torus3d_graph};
    use hfast_topology::CommGraph;

    fn singletons(n: usize) -> Vec<Vec<usize>> {
        (0..n).map(|v| vec![v]).collect()
    }

    #[test]
    fn refinement_never_regresses() {
        let g = torus3d_graph((4, 4, 2), 1 << 20);
        let config = ProvisionConfig::default();
        let out = optimize_clusters(&g, &config, singletons(32), 2000, 1);
        assert!(out.final_blocks <= out.initial_blocks);
        // The result must be buildable.
        let prov = Clustered::new(out.clusters.clone()).provision(&g, config);
        prov.validate(&g).unwrap();
        assert_eq!(prov.total_blocks(), out.final_blocks);
    }

    #[test]
    fn improves_on_singletons_for_cliques() {
        // Four 4-cliques: singletons need 16 blocks, optimal needs 4.
        let n = 16;
        let mut g = CommGraph::new(n);
        for c in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_message(4 * c + i, 4 * c + j, 1 << 20);
                }
            }
        }
        let config = ProvisionConfig::default();
        let out = optimize_clusters(&g, &config, singletons(n), 4000, 7);
        assert_eq!(out.initial_blocks, 16);
        assert!(
            out.final_blocks <= 6,
            "annealing should approach the 4-block optimum: {}",
            out.final_blocks
        );
        assert!(out.accepted_moves > 0);
    }

    #[test]
    fn refining_the_greedy_seed_helps_or_holds() {
        let g = ring_graph(24, 1 << 20);
        let config = ProvisionConfig::default();
        let greedy = cluster_nodes(&g, &config);
        let greedy_blocks = Clustered::new(greedy.clone())
            .provision(&g, config)
            .total_blocks();
        let out = optimize_clusters(&g, &config, greedy, 3000, 3);
        assert!(out.final_blocks <= greedy_blocks);
        Clustered::new(out.clusters)
            .provision(&g, config)
            .validate(&g)
            .unwrap();
    }

    #[test]
    fn deterministic_for_a_seed() {
        let g = torus3d_graph((3, 3, 3), 1 << 20);
        let config = ProvisionConfig::default();
        let a = optimize_clusters(&g, &config, singletons(27), 1000, 99);
        let b = optimize_clusters(&g, &config, singletons(27), 1000, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_is_identity() {
        let g = ring_graph(8, 1 << 20);
        let config = ProvisionConfig::default();
        let out = optimize_clusters(&g, &config, singletons(8), 0, 0);
        assert_eq!(out.initial_blocks, out.final_blocks);
        assert_eq!(out.accepted_moves, 0);
        assert_eq!(out.clusters.len(), 8);
    }
}
