//! HFAST provisioning: assigning packet-switch blocks and circuit-switch
//! patches to realize a measured communication topology.
//!
//! The paper's §5.3 cost analysis uses a deliberately simple linear-time
//! algorithm: every node whose thresholded TDC fits in one switch block gets
//! one block; higher-degree nodes get a tree (here: a chain, the degenerate
//! tree) of blocks. The algorithm "uses potentially twice as many switch
//! ports as an optimal embedding, but … will complete in linear time". The
//! clique-mapping improvement the paper leaves as future work is implemented
//! in [`crate::clique`], producing the same [`Provisioning`] structure with
//! shared blocks.

use std::collections::BTreeMap;

use hfast_topology::{CommGraph, CsrGraph};

use crate::switch::{CircuitSwitch, Endpoint, SwitchBlock};

/// Provisioning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvisionConfig {
    /// Ports per packet switch block (paper §5: "a homogeneous active switch
    /// block size of 16 ports", leaving 15 for partners after the node
    /// attachment).
    pub block_ports: usize,
    /// Message-size cutoff: edges whose largest message is below this gain
    /// nothing from a circuit and are left to the low-bandwidth collective
    /// network (§2.4's 2 KB bandwidth-delay product).
    pub cutoff: u64,
}

impl Default for ProvisionConfig {
    fn default() -> Self {
        ProvisionConfig {
            block_ports: 16,
            cutoff: crate::bdp::TARGET_BDP_BYTES,
        }
    }
}

impl ProvisionConfig {
    /// Partner capacity of a chain of `b` blocks serving `attachments`
    /// nodes: total ports minus chain-internal links minus attachments.
    pub fn chain_capacity(&self, blocks: usize, attachments: usize) -> isize {
        let total = blocks * self.block_ports;
        let internal = 2 * (blocks.saturating_sub(1));
        total as isize - internal as isize - attachments as isize
    }

    /// Minimum blocks for a cluster with `attachments` nodes and
    /// `external_ports` edge endpoints.
    pub fn blocks_needed(&self, attachments: usize, external_ports: usize) -> usize {
        let k = self.block_ports;
        assert!(k >= 3, "chained blocks need at least 3 ports");
        let mut b = 1;
        while self.chain_capacity(b, attachments) < external_ports as isize {
            b += 1;
        }
        b
    }
}

/// A group of nodes sharing a chain of switch blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Cluster id.
    pub id: usize,
    /// Member nodes.
    pub nodes: Vec<usize>,
    /// Chain of block ids; consecutive blocks are circuit-linked.
    pub blocks: Vec<usize>,
}

/// Where a provisioned edge lands: chain positions of the blocks holding the
/// patched ports on each side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCircuit {
    /// Chain position (within the lower endpoint's cluster).
    pub a_chain_pos: usize,
    /// Chain position (within the higher endpoint's cluster).
    pub b_chain_pos: usize,
    /// The patched block ports.
    pub ports: (Endpoint, Endpoint),
}

/// Path cost of a message across the provisioned fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Crossings of the circuit-switch crossbar.
    pub circuit_traversals: usize,
    /// Packet switch blocks traversed.
    pub switch_hops: usize,
}

impl Route {
    /// End-to-end switching latency: packet-switch hops only (the passive
    /// circuit switch contributes nothing beyond propagation, §2.1).
    pub fn latency_ns(&self) -> u64 {
        self.switch_hops as u64 * SwitchBlock::HOP_LATENCY_NS
    }
}

/// A complete HFAST provisioning: block pool, circuit patches, and the
/// mapping from the application's communication graph onto them.
#[derive(Debug, Clone)]
pub struct Provisioning {
    /// Parameters used.
    pub config: ProvisionConfig,
    /// Number of compute nodes.
    pub n_nodes: usize,
    /// Node clusters sharing block chains.
    pub clusters: Vec<Cluster>,
    /// Cluster id per node.
    pub node_cluster: Vec<usize>,
    /// The block pool.
    pub blocks: Vec<SwitchBlock>,
    /// The circuit-switch state realizing the topology.
    pub circuit: CircuitSwitch,
    /// Attachment of each node: (block id, chain position).
    pub attach: Vec<(usize, usize)>,
    /// Provisioned inter-cluster edges, keyed `(min, max)`.
    pub edge_circuits: BTreeMap<(usize, usize), EdgeCircuit>,
    /// Edges served inside a shared block chain (no dedicated circuit).
    pub intra_edges: Vec<(usize, usize)>,
    /// Edges below the cutoff, relegated to the low-bandwidth network.
    pub unprovisioned: Vec<(usize, usize)>,
    /// Block-pool slots released by incremental re-provisioning (see
    /// [`crate::provisioner::Provisioner::reprovision`]): the ids stay in
    /// [`blocks`](Self::blocks) so every other id remains stable, but they
    /// hold no ports and are excluded from [`total_blocks`](Self::total_blocks).
    /// Always empty after a from-scratch build.
    pub spare_blocks: Vec<usize>,
}

/// Provisions `graph` with an explicit node clustering — the shared
/// algorithm behind every [`crate::provisioner::Provisioner`] strategy
/// (they differ only in the clustering they feed it).
pub(crate) fn build_clustered(
    graph: &CommGraph,
    config: ProvisionConfig,
    clustering: Vec<Vec<usize>>,
) -> Provisioning {
    let n = graph.n();

    // Validate the clustering assigns each node at most once. Nodes in
    // no cluster are *offline* (failed/absent): they get no attachment
    // and no routes — the mechanism behind fault re-provisioning.
    let mut node_cluster = vec![usize::MAX; n];
    for (cid, members) in clustering.iter().enumerate() {
        for &v in members {
            assert!(v < n, "cluster references node {v} out of range");
            assert_eq!(
                node_cluster[v],
                usize::MAX,
                "node {v} appears in two clusters"
            );
            node_cluster[v] = cid;
        }
    }

    // Classify edges, iterating a packed CSR snapshot of the active
    // adjacency rather than rescanning dense matrix rows.
    let csr = CsrGraph::from_graph(graph, 0);
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    let mut unprov = Vec::new();
    for a in 0..n {
        for (b, e) in csr.neighbors_with_stats(a) {
            if b <= a {
                continue;
            }
            if node_cluster[a] == usize::MAX || node_cluster[b] == usize::MAX {
                continue; // edges touching offline nodes are ignored
            }
            if e.max_msg < config.cutoff {
                unprov.push((a, b));
            } else if node_cluster[a] == node_cluster[b] {
                intra.push((a, b));
            } else {
                inter.push((a, b));
            }
        }
    }

    // External port demand per cluster.
    let mut external = vec![0usize; clustering.len()];
    for &(a, b) in &inter {
        external[node_cluster[a]] += 1;
        external[node_cluster[b]] += 1;
    }

    // Build block chains per cluster.
    let mut blocks: Vec<SwitchBlock> = Vec::new();
    let mut circuit = CircuitSwitch::new();
    let mut clusters = Vec::with_capacity(clustering.len());
    let mut attach = vec![(usize::MAX, usize::MAX); n];
    for (cid, members) in clustering.into_iter().enumerate() {
        let b = config.blocks_needed(members.len(), external[cid]);
        let first = blocks.len();
        for i in 0..b {
            blocks.push(SwitchBlock::new(first + i, config.block_ports));
        }
        let chain: Vec<usize> = (first..first + b).collect();
        // Chain links consume one port on each adjacent block.
        for w in chain.windows(2) {
            let pa = blocks[w[0]].allocate_port().expect("chain port");
            let pb = blocks[w[1]].allocate_port().expect("chain port");
            circuit
                .connect(
                    Endpoint::BlockPort {
                        block: w[0],
                        port: pa,
                    },
                    Endpoint::BlockPort {
                        block: w[1],
                        port: pb,
                    },
                )
                .expect("fresh ports cannot collide");
        }
        // Attach member nodes, spread across the chain.
        for (i, &v) in members.iter().enumerate() {
            let pos = i * chain.len() / members.len().max(1);
            // The chosen block may be full of chain links in pathological
            // configs; fall back to scanning.
            let pos = (0..chain.len())
                .map(|off| (pos + off) % chain.len())
                .find(|&p| blocks[chain[p]].free_ports() > 0)
                .expect("capacity accounted for attachments");
            let block = chain[pos];
            let port = blocks[block].allocate_port().expect("checked free");
            circuit
                .connect(Endpoint::Node(v), Endpoint::BlockPort { block, port })
                .expect("fresh ports cannot collide");
            attach[v] = (block, pos);
        }
        clusters.push(Cluster {
            id: cid,
            nodes: members,
            blocks: chain,
        });
    }

    // Patch a dedicated circuit per inter-cluster edge, placing each
    // port as close to its node's attachment block as possible.
    let mut edge_circuits = BTreeMap::new();
    let allocate_near =
        |clusters: &[Cluster], blocks: &mut [SwitchBlock], v: usize| -> (usize, usize, usize) {
            let chain = &clusters[node_cluster[v]].blocks;
            let home = attach[v].1;
            // Nearest chain block with a free port; one always exists
            // because blocks_needed() sized the chain for attachments
            // plus every external edge endpoint.
            let pos = (0..chain.len())
                .filter(|&p| blocks[chain[p]].free_ports() > 0)
                .min_by_key(|&p| (p as isize - home as isize).unsigned_abs())
                .expect("capacity accounted for external edges");
            let block = chain[pos];
            let port = blocks[block].allocate_port().expect("checked free");
            (block, port, pos)
        };
    for &(a, b) in &inter {
        let (blk_a, port_a, pos_a) = allocate_near(&clusters, &mut blocks, a);
        let (blk_b, port_b, pos_b) = allocate_near(&clusters, &mut blocks, b);
        let ea = Endpoint::BlockPort {
            block: blk_a,
            port: port_a,
        };
        let eb = Endpoint::BlockPort {
            block: blk_b,
            port: port_b,
        };
        circuit.connect(ea, eb).expect("fresh ports cannot collide");
        edge_circuits.insert(
            (a, b),
            EdgeCircuit {
                a_chain_pos: pos_a,
                b_chain_pos: pos_b,
                ports: (ea, eb),
            },
        );
    }

    let prov = Provisioning {
        config,
        n_nodes: n,
        clusters,
        node_cluster,
        blocks,
        circuit,
        attach,
        edge_circuits,
        intra_edges: intra,
        unprovisioned: unprov,
        spare_blocks: Vec::new(),
    };
    if hfast_obs::enabled() {
        let obs = crate::obs::provision_obs();
        obs.builds.inc();
        obs.blocks.record(prov.total_blocks() as u64);
        obs.circuits.record(prov.edge_circuits.len() as u64);
    }
    prov
}

impl Provisioning {
    /// The paper's linear-time algorithm: one cluster (hence one block
    /// chain) per node.
    #[deprecated(
        since = "0.7.0",
        note = "use `provisioner::PaperLinear.provision(graph, config)` (or \
                `Strategy::PaperLinear.provisioner()`); this shim is removed next release"
    )]
    pub fn per_node(graph: &CommGraph, config: ProvisionConfig) -> Self {
        crate::provisioner::Provisioner::provision(&crate::provisioner::PaperLinear, graph, config)
    }

    /// Provisions with an explicit node clustering (see
    /// [`crate::clique::cluster_nodes`] for the heuristic the paper proposes
    /// as future work).
    #[deprecated(
        since = "0.7.0",
        note = "use `provisioner::Clustered::new(clustering).provision(graph, config)`; \
                this shim is removed next release"
    )]
    pub fn build(graph: &CommGraph, config: ProvisionConfig, clustering: Vec<Vec<usize>>) -> Self {
        build_clustered(graph, config, clustering)
    }

    /// Number of packet switch blocks consumed (`N_active` in §5.3).
    ///
    /// Spare slots parked by incremental re-provisioning hold no ports and
    /// do not count.
    pub fn total_blocks(&self) -> usize {
        self.blocks.len() - self.spare_blocks.len()
    }

    /// Order-stable FNV-1a digest of the complete structure: config, pool,
    /// attachments, circuits, and edge ledgers. Two provisionings with the
    /// same digest route identically; the bake-off pins `PaperLinear`
    /// digests against pre-trait goldens with it.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        let ep = |e: &Endpoint| -> u64 {
            match *e {
                Endpoint::Node(v) => (v as u64) << 1,
                Endpoint::BlockPort { block, port } => {
                    ((block as u64) << 17 | port as u64) << 1 | 1
                }
            }
        };
        fold(self.config.block_ports as u64);
        fold(self.config.cutoff);
        fold(self.n_nodes as u64);
        fold(self.total_blocks() as u64);
        for c in &self.clusters {
            fold(c.id as u64);
            fold(c.nodes.len() as u64);
            for &v in &c.nodes {
                fold(v as u64);
            }
            fold(c.blocks.len() as u64);
        }
        for &(block, pos) in &self.attach {
            fold(block as u64);
            fold(pos as u64);
        }
        for b in &self.blocks {
            fold(b.allocated_ports() as u64);
        }
        for (&(a, b), ec) in &self.edge_circuits {
            fold(a as u64);
            fold(b as u64);
            fold(ec.a_chain_pos as u64);
            fold(ec.b_chain_pos as u64);
            fold(ep(&ec.ports.0));
            fold(ep(&ec.ports.1));
        }
        for &(a, b) in &self.intra_edges {
            fold(a as u64);
            fold(b as u64);
        }
        for &(a, b) in &self.unprovisioned {
            fold(a as u64);
            fold(b as u64);
        }
        h
    }

    /// Total packet-switch ports purchased (blocks × ports).
    pub fn total_block_ports(&self) -> usize {
        self.total_blocks() * self.config.block_ports
    }

    /// Circuit-switch ports in use (node attachments + block-side patches).
    pub fn circuit_ports_used(&self) -> usize {
        self.circuit.ports_in_use()
    }

    /// Packet-switch ports per node — the quantity whose linear scaling is
    /// HFAST's selling point against the fat-tree's `1 + 2(L−1)`.
    pub fn block_ports_per_node(&self) -> f64 {
        self.total_block_ports() as f64 / self.n_nodes.max(1) as f64
    }

    /// Route of a provisioned node pair, or `None` if the pair has no
    /// provisioned path (below-cutoff traffic rides the low-bandwidth
    /// network).
    pub fn route(&self, a: usize, b: usize) -> Option<Route> {
        if a == b || a >= self.n_nodes || b >= self.n_nodes {
            return None;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let ca = self.node_cluster[lo];
        let cb = self.node_cluster[hi];
        if ca == usize::MAX || cb == usize::MAX {
            return None; // offline endpoint
        }
        if ca == cb {
            // Same chain: up into the fabric, along the chain, back down —
            // but only if the pair is actually connected (intra edge) or
            // simply shares the chain (any pair in a cluster can talk).
            let pa = self.attach[lo].1;
            let pb = self.attach[hi].1;
            let chain_hops = pa.abs_diff(pb);
            return Some(Route {
                circuit_traversals: 2 + chain_hops,
                switch_hops: 1 + chain_hops,
            });
        }
        let ec = self.edge_circuits.get(&(lo, hi))?;
        let da = self.attach[lo].1.abs_diff(ec.a_chain_pos);
        let db = self.attach[hi].1.abs_diff(ec.b_chain_pos);
        Some(Route {
            circuit_traversals: 3 + da + db,
            switch_hops: 2 + da + db,
        })
    }

    /// Worst provisioned route in the fabric.
    pub fn max_route(&self) -> Option<Route> {
        let mut worst: Option<Route> = None;
        let consider = |worst: &mut Option<Route>, r: Route| {
            if worst.is_none_or(|w| r.switch_hops > w.switch_hops) {
                *worst = Some(r);
            }
        };
        for &(a, b) in self.edge_circuits.keys() {
            if let Some(r) = self.route(a, b) {
                consider(&mut worst, r);
            }
        }
        for &(a, b) in &self.intra_edges {
            if let Some(r) = self.route(a, b) {
                consider(&mut worst, r);
            }
        }
        worst
    }

    /// Structural invariants: every above-cutoff edge is served, circuits
    /// are consistent, and no block over-allocates. Used by tests.
    pub fn validate(&self, graph: &CommGraph) -> Result<(), String> {
        if !self.circuit.is_consistent() {
            return Err("circuit pairing inconsistent".into());
        }
        for b in &self.blocks {
            if b.allocated_ports() > b.ports {
                return Err(format!("block {} over-allocated", b.id));
            }
        }
        let csr = CsrGraph::from_graph(graph, self.config.cutoff);
        for a in 0..graph.n() {
            for (b, e) in csr.neighbors_with_stats(a) {
                if b <= a || e.max_msg < self.config.cutoff {
                    continue;
                }
                if self.node_cluster[a] == usize::MAX || self.node_cluster[b] == usize::MAX {
                    continue; // offline endpoints have no routes by design
                }
                if self.route(a, b).is_none() {
                    return Err(format!("edge ({a},{b}) above cutoff but unrouted"));
                }
            }
        }
        for (i, &(block, _pos)) in self.attach.iter().enumerate() {
            if self.node_cluster[i] == usize::MAX {
                continue; // offline node: no attachment expected
            }
            match self.circuit.peer(Endpoint::Node(i)) {
                Some(Endpoint::BlockPort { block: bb, .. }) if bb == block => {}
                other => return Err(format!("node {i} attachment wrong: {other:?}")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provisioner::{Clustered, PaperLinear, Provisioner};
    use hfast_topology::generators::{complete_graph, mesh3d_graph, ring_graph};

    fn per_node(graph: &CommGraph, config: ProvisionConfig) -> Provisioning {
        PaperLinear.provision(graph, config)
    }

    fn build(graph: &CommGraph, config: ProvisionConfig, c: Vec<Vec<usize>>) -> Provisioning {
        Clustered::new(c).provision(graph, config)
    }

    fn cfg(k: usize) -> ProvisionConfig {
        ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        }
    }

    #[test]
    fn blocks_needed_formula() {
        let c = cfg(16);
        // One node, up to 15 partners in one block.
        assert_eq!(c.blocks_needed(1, 15), 1);
        assert_eq!(c.blocks_needed(1, 16), 2);
        // Two chained blocks expose 2*16 - 2 - 1 = 29 partner ports.
        assert_eq!(c.blocks_needed(1, 29), 2);
        assert_eq!(c.blocks_needed(1, 30), 3);
        assert_eq!(c.blocks_needed(1, 0), 1);
        // Shared chain with 4 attachments.
        assert_eq!(c.blocks_needed(4, 12), 1);
        assert_eq!(c.blocks_needed(4, 13), 2);
    }

    #[test]
    fn per_node_ring_uses_one_block_each() {
        let g = ring_graph(8, 100_000);
        let p = per_node(&g, cfg(16));
        assert_eq!(p.total_blocks(), 8, "TDC 2 < 15: one block per node");
        p.validate(&g).unwrap();
        let r = p.route(0, 1).unwrap();
        assert_eq!(r.circuit_traversals, 3);
        assert_eq!(r.switch_hops, 2);
        assert_eq!(r.latency_ns(), 100);
    }

    #[test]
    fn mesh_provisioning_matches_paper_cactus_case() {
        // Cactus-like: 4x4x4 mesh, TDC ≤ 6 → N_active = P.
        let g = mesh3d_graph((4, 4, 4), 300 << 10);
        let p = per_node(&g, ProvisionConfig::default());
        assert_eq!(p.total_blocks(), 64);
        assert!((p.block_ports_per_node() - 16.0).abs() < 1e-12);
        p.validate(&g).unwrap();
    }

    #[test]
    fn high_degree_node_gets_block_tree() {
        // Star with 40 partners: needs ceil per chain capacity with k=16:
        // 1 block: 15, 2 blocks: 29, 3 blocks: 43 ≥ 40.
        let mut g = CommGraph::new(41);
        for i in 1..41 {
            g.add_message(0, i, 1 << 20);
        }
        let p = per_node(&g, cfg(16));
        let hub_cluster = &p.clusters[p.node_cluster[0]];
        assert_eq!(hub_cluster.blocks.len(), 3);
        // Leaves keep a single block.
        assert_eq!(p.clusters[p.node_cluster[1]].blocks.len(), 1);
        assert_eq!(p.total_blocks(), 3 + 40);
        p.validate(&g).unwrap();
        // Worst route crosses the hub's chain.
        let worst = p.max_route().unwrap();
        assert!(worst.switch_hops >= 2);
        assert!(worst.switch_hops <= 2 + 2, "chain adds at most 2 hops here");
    }

    #[test]
    fn below_cutoff_edges_are_not_provisioned() {
        let mut g = ring_graph(6, 100_000);
        g.add_message(0, 3, 64); // latency-bound chord
        let p = per_node(&g, cfg(16));
        assert_eq!(p.unprovisioned, vec![(0, 3)]);
        assert!(p.route(0, 3).is_none());
        assert!(p.route(0, 1).is_some());
        p.validate(&g).unwrap();
    }

    #[test]
    fn clustered_provisioning_shares_blocks() {
        // 4-cliques of big messages: per-node wastes ports, clusters don't.
        let n = 16;
        let mut g = CommGraph::new(n);
        for c in 0..4 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_message(4 * c + i, 4 * c + j, 1 << 20);
                }
            }
        }
        let clustering: Vec<Vec<usize>> = (0..4).map(|c| (4 * c..4 * c + 4).collect()).collect();
        let clustered = build(&g, cfg(16), clustering);
        let per_node = per_node(&g, cfg(16));
        clustered.validate(&g).unwrap();
        per_node.validate(&g).unwrap();
        assert_eq!(clustered.total_blocks(), 4, "one block per clique");
        assert_eq!(per_node.total_blocks(), 16);
        // Intra-cluster routes hit the paper's 2-traversal minimum.
        let r = clustered.route(0, 1).unwrap();
        assert_eq!(r.circuit_traversals, 2);
        assert_eq!(r.switch_hops, 1);
    }

    #[test]
    fn figure1_example_six_nodes_blocks_of_four() {
        // The paper's Figure 1 right panel: 6 nodes, block size 4,
        // nodes {1,2,3} on SB1 and {4,5,6} on SB2 (0-indexed here).
        let mut g = CommGraph::new(6);
        g.add_message(0, 1, 1 << 20); // intra-SB pair
        g.add_message(0, 5, 1 << 20); // crosses both blocks
        let clustering = vec![vec![0, 1, 2], vec![3, 4, 5]];
        let p = build(&g, cfg(4), clustering);
        p.validate(&g).unwrap();
        // node1→node2: through the circuit switch into SB1 and back: 2
        // traversals, 1 active hop.
        let r01 = p.route(0, 1).unwrap();
        assert_eq!(r01.circuit_traversals, 2);
        assert_eq!(r01.switch_hops, 1);
        // node1→node6: SB1 then SB2: 3 traversals, 2 hops (paper §2.3).
        let r05 = p.route(0, 5).unwrap();
        assert_eq!(r05.circuit_traversals, 3);
        assert_eq!(r05.switch_hops, 2);
    }

    #[test]
    fn fully_connected_strains_the_pool() {
        let g = complete_graph(8, 1 << 20);
        let p = per_node(&g, cfg(16));
        p.validate(&g).unwrap();
        // Degree 7 < 15: still one block per node, every port busy.
        assert_eq!(p.total_blocks(), 8);
        let used: usize = p.blocks.iter().map(|b| b.allocated_ports()).sum();
        assert_eq!(used, 8 * (1 + 7));
    }

    #[test]
    fn empty_graph_gets_attachments_only() {
        let g = CommGraph::new(4);
        let p = per_node(&g, cfg(16));
        assert_eq!(p.total_blocks(), 4);
        assert_eq!(p.edge_circuits.len(), 0);
        assert_eq!(p.circuit_ports_used(), 8, "4 node-block patches");
        p.validate(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn overlapping_clusters_rejected() {
        let g = ring_graph(4, 100_000);
        build(&g, cfg(16), vec![vec![0, 1], vec![1, 2, 3]]);
    }
}
