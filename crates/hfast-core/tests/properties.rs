//! Property-based tests for provisioning, clustering, and cost models.

use hfast_core::cost::AnalyticHfast;
use hfast_core::{
    cluster_nodes, hfast_fault_impact, remove_nodes, CostModel, FatTree, ProvisionConfig,
    Provisioning,
};
use hfast_par::{forall, Rng64};
use hfast_topology::CommGraph;

fn random_graph(rng: &mut Rng64, n: usize, max_msgs: usize) -> CommGraph {
    let mut g = CommGraph::new(n);
    for _ in 0..rng.range(0, max_msgs) {
        let a = rng.range(0, n);
        let b = rng.range(0, n);
        if a != b {
            g.add_message(a, b, rng.range_u64(1, 2 << 20));
        }
    }
    g
}

#[test]
fn per_node_provisioning_always_validates() {
    forall("per_node_provisioning_always_validates", 64, |rng| {
        let g = random_graph(rng, 14, 120);
        let k = rng.range(4, 24);
        let config = ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        };
        let prov = Provisioning::per_node(&g, config);
        assert!(prov.validate(&g).is_ok());
        // Every above-cutoff pair routes with ≥2 hops; symmetric.
        for a in 0..14 {
            for (b, e) in g.neighbors(a) {
                if e.max_msg >= 2048 {
                    let r1 = prov.route(a, b).expect("routed");
                    let r2 = prov.route(b, a).expect("routed");
                    assert_eq!(r1, r2, "routes are symmetric");
                    assert!(r1.switch_hops >= 2);
                    assert!(r1.circuit_traversals == r1.switch_hops + 1);
                }
            }
        }
    });
}

#[test]
fn clustered_provisioning_always_validates() {
    forall("clustered_provisioning_always_validates", 64, |rng| {
        let g = random_graph(rng, 14, 120);
        let k = rng.range(6, 24);
        let config = ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        };
        let clusters = cluster_nodes(&g, &config);
        // Disjoint cover.
        let mut seen = [false; 14];
        for c in &clusters {
            for &v in c {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let prov = Provisioning::build(&g, config, clusters);
        assert!(prov.validate(&g).is_ok());
    });
}

#[test]
fn clustering_never_needs_more_blocks_than_per_node() {
    forall(
        "clustering_never_needs_more_blocks_than_per_node",
        64,
        |rng| {
            let g = random_graph(rng, 12, 100);
            let config = ProvisionConfig::default();
            let clustered = Provisioning::build(&g, config, cluster_nodes(&g, &config));
            let per_node = Provisioning::per_node(&g, config);
            assert!(
                clustered.total_blocks() <= per_node.total_blocks(),
                "sharing blocks can only reduce the pool: {} vs {}",
                clustered.total_blocks(),
                per_node.total_blocks()
            );
        },
    );
}

#[test]
fn fault_survivors_never_degrade() {
    forall("fault_survivors_never_degrade", 64, |rng| {
        let g = random_graph(rng, 12, 80);
        let mut failed: Vec<usize> = (0..rng.range(0, 4)).map(|_| rng.range(0, 12)).collect();
        failed.sort_unstable();
        failed.dedup();
        let report = hfast_fault_impact(&g, ProvisionConfig::default(), &failed);
        assert!(!report.survivors_degraded);
        assert_eq!(report.failed, failed.len());
        // Removing nodes never adds traffic.
        let cut = remove_nodes(&g, &failed);
        assert!(cut.total_bytes() <= g.total_bytes());
        assert!(cut.is_symmetric());
    });
}

#[test]
fn fat_tree_formula_invariants() {
    forall("fat_tree_formula_invariants", 64, |rng| {
        let p = rng.range(1, 100_000);
        let n_ports = rng.range(2, 17) * 2;
        let ft = FatTree::for_processors(p, n_ports);
        // The chosen layer count covers P but L−1 does not.
        assert!(FatTree::capacity(n_ports, ft.layers) >= p);
        if ft.layers > 1 {
            assert!(FatTree::capacity(n_ports, ft.layers - 1) < p);
        }
        assert_eq!(ft.ports_per_processor(), 1 + 2 * (ft.layers - 1));
        assert_eq!(ft.max_switch_hops(), 2 * ft.layers - 1);
    });
}

#[test]
fn analytic_cost_is_monotone_in_tdc() {
    forall("analytic_cost_is_monotone_in_tdc", 64, |rng| {
        let p = rng.range(16, 4096);
        let tdc_a = rng.range(1, 10);
        let extra = rng.range(1, 20);
        let config = ProvisionConfig::default();
        let model = CostModel::default();
        let low = AnalyticHfast {
            p,
            tdc: tdc_a,
            config,
        };
        let high = AnalyticHfast {
            p,
            tdc: tdc_a + extra,
            config,
        };
        assert!(low.cost(&model) <= high.cost(&model));
        assert!(low.packet_ports() <= high.packet_ports());
    });
}

#[test]
fn blocks_needed_capacity_is_sufficient_and_tight() {
    forall(
        "blocks_needed_capacity_is_sufficient_and_tight",
        64,
        |rng| {
            let attach = rng.range(1, 8);
            let external = rng.range(0, 200);
            let k = rng.range(4, 32);
            let config = ProvisionConfig {
                block_ports: k,
                cutoff: 2048,
            };
            let b = config.blocks_needed(attach, external);
            assert!(config.chain_capacity(b, attach) >= external as isize);
            if b > 1 {
                assert!(
                    config.chain_capacity(b - 1, attach) < external as isize,
                    "minimal block count"
                );
            }
        },
    );
}
