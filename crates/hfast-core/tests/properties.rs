//! Property-based tests for provisioning, clustering, and cost models.

use proptest::prelude::*;

use hfast_core::cost::AnalyticHfast;
use hfast_core::{
    cluster_nodes, hfast_fault_impact, remove_nodes, CostModel, FatTree, ProvisionConfig,
    Provisioning,
};
use hfast_topology::CommGraph;

fn messages(n: usize, max_msgs: usize) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..n, 0..n, 1u64..(2 << 20)), 0..max_msgs)
}

fn build(n: usize, msgs: &[(usize, usize, u64)]) -> CommGraph {
    let mut g = CommGraph::new(n);
    for &(a, b, bytes) in msgs {
        if a != b {
            g.add_message(a, b, bytes);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_node_provisioning_always_validates(
        msgs in messages(14, 120),
        k in 4usize..24,
    ) {
        let g = build(14, &msgs);
        let config = ProvisionConfig { block_ports: k, cutoff: 2048 };
        let prov = Provisioning::per_node(&g, config);
        prop_assert!(prov.validate(&g).is_ok());
        // Every above-cutoff pair routes with ≥2 hops; symmetric.
        for a in 0..14 {
            for (b, e) in g.neighbors(a) {
                if e.max_msg >= 2048 {
                    let r1 = prov.route(a, b).expect("routed");
                    let r2 = prov.route(b, a).expect("routed");
                    prop_assert_eq!(r1, r2, "routes are symmetric");
                    prop_assert!(r1.switch_hops >= 2);
                    prop_assert!(r1.circuit_traversals == r1.switch_hops + 1);
                }
            }
        }
    }

    #[test]
    fn clustered_provisioning_always_validates(
        msgs in messages(14, 120),
        k in 6usize..24,
    ) {
        let g = build(14, &msgs);
        let config = ProvisionConfig { block_ports: k, cutoff: 2048 };
        let clusters = cluster_nodes(&g, &config);
        // Disjoint cover.
        let mut seen = [false; 14];
        for c in &clusters {
            for &v in c {
                prop_assert!(!seen[v]);
                seen[v] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let prov = Provisioning::build(&g, config, clusters);
        prop_assert!(prov.validate(&g).is_ok());
    }

    #[test]
    fn clustering_never_needs_more_blocks_than_per_node(
        msgs in messages(12, 100),
    ) {
        let g = build(12, &msgs);
        let config = ProvisionConfig::default();
        let clustered = Provisioning::build(&g, config, cluster_nodes(&g, &config));
        let per_node = Provisioning::per_node(&g, config);
        prop_assert!(
            clustered.total_blocks() <= per_node.total_blocks(),
            "sharing blocks can only reduce the pool: {} vs {}",
            clustered.total_blocks(),
            per_node.total_blocks()
        );
    }

    #[test]
    fn fault_survivors_never_degrade(
        msgs in messages(12, 80),
        failed in prop::collection::btree_set(0usize..12, 0..4),
    ) {
        let g = build(12, &msgs);
        let failed: Vec<usize> = failed.into_iter().collect();
        let report = hfast_fault_impact(&g, ProvisionConfig::default(), &failed);
        prop_assert!(!report.survivors_degraded);
        prop_assert_eq!(report.failed, failed.len());
        // Removing nodes never adds traffic.
        let cut = remove_nodes(&g, &failed);
        prop_assert!(cut.total_bytes() <= g.total_bytes());
        prop_assert!(cut.is_symmetric());
    }

    #[test]
    fn fat_tree_formula_invariants(p in 1usize..100_000, half_ports in 2usize..17) {
        let n_ports = half_ports * 2;
        let ft = FatTree::for_processors(p, n_ports);
        // The chosen layer count covers P but L−1 does not.
        prop_assert!(FatTree::capacity(n_ports, ft.layers) >= p);
        if ft.layers > 1 {
            prop_assert!(FatTree::capacity(n_ports, ft.layers - 1) < p);
        }
        prop_assert_eq!(ft.ports_per_processor(), 1 + 2 * (ft.layers - 1));
        prop_assert_eq!(ft.max_switch_hops(), 2 * ft.layers - 1);
    }

    #[test]
    fn analytic_cost_is_monotone_in_tdc(p in 16usize..4096, tdc_a in 1usize..10, extra in 1usize..20) {
        let config = ProvisionConfig::default();
        let model = CostModel::default();
        let low = AnalyticHfast { p, tdc: tdc_a, config };
        let high = AnalyticHfast { p, tdc: tdc_a + extra, config };
        prop_assert!(low.cost(&model) <= high.cost(&model));
        prop_assert!(low.packet_ports() <= high.packet_ports());
    }

    #[test]
    fn blocks_needed_capacity_is_sufficient_and_tight(
        attach in 1usize..8,
        external in 0usize..200,
        k in 4usize..32,
    ) {
        let config = ProvisionConfig { block_ports: k, cutoff: 2048 };
        let b = config.blocks_needed(attach, external);
        prop_assert!(config.chain_capacity(b, attach) >= external as isize);
        if b > 1 {
            prop_assert!(
                config.chain_capacity(b - 1, attach) < external as isize,
                "minimal block count"
            );
        }
    }
}
