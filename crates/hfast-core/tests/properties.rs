//! Property-based tests for provisioning, clustering, and cost models.

use hfast_core::cost::AnalyticHfast;
use hfast_core::{
    cluster_nodes, hfast_fault_impact, remove_nodes, Clustered, CostModel, FatTree, GraphDelta,
    PaperLinear, ProvisionConfig, Provisioner, Strategy,
};
use hfast_par::{forall, Rng64};
use hfast_topology::CommGraph;

fn random_graph(rng: &mut Rng64, n: usize, max_msgs: usize) -> CommGraph {
    let mut g = CommGraph::new(n);
    for _ in 0..rng.range(0, max_msgs) {
        let a = rng.range(0, n);
        let b = rng.range(0, n);
        if a != b {
            g.add_message(a, b, rng.range_u64(1, 2 << 20));
        }
    }
    g
}

#[test]
fn per_node_provisioning_always_validates() {
    forall("per_node_provisioning_always_validates", 64, |rng| {
        let g = random_graph(rng, 14, 120);
        let k = rng.range(4, 24);
        let config = ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        };
        let prov = PaperLinear.provision(&g, config);
        assert!(prov.validate(&g).is_ok());
        // Every above-cutoff pair routes with ≥2 hops; symmetric.
        for a in 0..14 {
            for (b, e) in g.neighbors(a) {
                if e.max_msg >= 2048 {
                    let r1 = prov.route(a, b).expect("routed");
                    let r2 = prov.route(b, a).expect("routed");
                    assert_eq!(r1, r2, "routes are symmetric");
                    assert!(r1.switch_hops >= 2);
                    assert!(r1.circuit_traversals == r1.switch_hops + 1);
                }
            }
        }
    });
}

#[test]
fn clustered_provisioning_always_validates() {
    forall("clustered_provisioning_always_validates", 64, |rng| {
        let g = random_graph(rng, 14, 120);
        let k = rng.range(6, 24);
        let config = ProvisionConfig {
            block_ports: k,
            cutoff: 2048,
        };
        let clusters = cluster_nodes(&g, &config);
        // Disjoint cover.
        let mut seen = [false; 14];
        for c in &clusters {
            for &v in c {
                assert!(!seen[v]);
                seen[v] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let prov = Clustered::new(clusters).provision(&g, config);
        assert!(prov.validate(&g).is_ok());
    });
}

#[test]
fn clustering_never_needs_more_blocks_than_per_node() {
    forall(
        "clustering_never_needs_more_blocks_than_per_node",
        64,
        |rng| {
            let g = random_graph(rng, 12, 100);
            let config = ProvisionConfig::default();
            let clustered = Clustered::new(cluster_nodes(&g, &config)).provision(&g, config);
            let per_node = PaperLinear.provision(&g, config);
            assert!(
                clustered.total_blocks() <= per_node.total_blocks(),
                "sharing blocks can only reduce the pool: {} vs {}",
                clustered.total_blocks(),
                per_node.total_blocks()
            );
        },
    );
}

#[test]
fn fault_survivors_never_degrade() {
    forall("fault_survivors_never_degrade", 64, |rng| {
        let g = random_graph(rng, 12, 80);
        let mut failed: Vec<usize> = (0..rng.range(0, 4)).map(|_| rng.range(0, 12)).collect();
        failed.sort_unstable();
        failed.dedup();
        let report = hfast_fault_impact(&g, ProvisionConfig::default(), &failed);
        assert!(!report.survivors_degraded);
        assert_eq!(report.failed, failed.len());
        // Removing nodes never adds traffic.
        let cut = remove_nodes(&g, &failed);
        assert!(cut.total_bytes() <= g.total_bytes());
        assert!(cut.is_symmetric());
    });
}

#[test]
fn fat_tree_formula_invariants() {
    forall("fat_tree_formula_invariants", 64, |rng| {
        let p = rng.range(1, 100_000);
        let n_ports = rng.range(2, 17) * 2;
        let ft = FatTree::for_processors(p, n_ports);
        // The chosen layer count covers P but L−1 does not.
        assert!(FatTree::capacity(n_ports, ft.layers) >= p);
        if ft.layers > 1 {
            assert!(FatTree::capacity(n_ports, ft.layers - 1) < p);
        }
        assert_eq!(ft.ports_per_processor(), 1 + 2 * (ft.layers - 1));
        assert_eq!(ft.max_switch_hops(), 2 * ft.layers - 1);
    });
}

#[test]
fn analytic_cost_is_monotone_in_tdc() {
    forall("analytic_cost_is_monotone_in_tdc", 64, |rng| {
        let p = rng.range(16, 4096);
        let tdc_a = rng.range(1, 10);
        let extra = rng.range(1, 20);
        let config = ProvisionConfig::default();
        let model = CostModel::default();
        let low = AnalyticHfast {
            p,
            tdc: tdc_a,
            config,
        };
        let high = AnalyticHfast {
            p,
            tdc: tdc_a + extra,
            config,
        };
        assert!(low.cost(&model) <= high.cost(&model));
        assert!(low.packet_ports() <= high.packet_ports());
    });
}

#[test]
fn blocks_needed_capacity_is_sufficient_and_tight() {
    forall(
        "blocks_needed_capacity_is_sufficient_and_tight",
        64,
        |rng| {
            let attach = rng.range(1, 8);
            let external = rng.range(0, 200);
            let k = rng.range(4, 32);
            let config = ProvisionConfig {
                block_ports: k,
                cutoff: 2048,
            };
            let b = config.blocks_needed(attach, external);
            assert!(config.chain_capacity(b, attach) >= external as isize);
            if b > 1 {
                assert!(
                    config.chain_capacity(b - 1, attach) < external as isize,
                    "minimal block count"
                );
            }
        },
    );
}

#[test]
fn every_strategy_validates_on_random_graphs() {
    forall("every_strategy_validates_on_random_graphs", 48, |rng| {
        let n = rng.range(4, 20);
        let g = random_graph(rng, n, 100);
        let config = ProvisionConfig {
            block_ports: rng.range(4, 24),
            cutoff: 2048,
        };
        for s in Strategy::ALL {
            let prov = s.provisioner().provision(&g, config);
            assert!(
                prov.validate(&g).is_ok(),
                "{s} must produce a valid provisioning"
            );
        }
    });
}

/// The paper heuristic's incremental path must land on the exact structure
/// a from-scratch pass over the updated graph produces: same block count,
/// same circuit ledger (keys *and* chain positions), same below-cutoff
/// ledger, same route for every pair — over an arbitrary sequence of
/// traffic deltas, not just one step.
#[test]
fn incremental_reprovision_matches_scratch() {
    forall("incremental_reprovision_matches_scratch", 32, |rng| {
        let n = rng.range(6, 18);
        let mut g = random_graph(rng, n, 60);
        let config = ProvisionConfig {
            block_ports: rng.range(4, 24),
            cutoff: 2048,
        };
        let mut prov = PaperLinear.provision(&g, config);
        for _ in 0..rng.range(1, 6) {
            let mut next = g.clone();
            for _ in 0..rng.range(1, 8) {
                let a = rng.range(0, n);
                let b = rng.range(0, n);
                if a != b {
                    next.add_message(a, b, rng.range_u64(1, 2 << 20));
                }
            }
            let delta = GraphDelta::diff(&g, &next);
            prov = PaperLinear.reprovision(prov, &next, &delta).provisioning;
            g = next;

            let scratch = PaperLinear.provision(&g, config);
            assert!(prov.validate(&g).is_ok());
            assert_eq!(prov.total_blocks(), scratch.total_blocks());
            assert_eq!(prov.unprovisioned, scratch.unprovisioned);
            assert_eq!(
                prov.edge_circuits.keys().collect::<Vec<_>>(),
                scratch.edge_circuits.keys().collect::<Vec<_>>()
            );
            for (pair, ec) in &prov.edge_circuits {
                let se = &scratch.edge_circuits[pair];
                assert_eq!(
                    (ec.a_chain_pos, ec.b_chain_pos),
                    (se.a_chain_pos, se.b_chain_pos),
                    "chain positions for {pair:?}"
                );
            }
            for a in 0..n {
                for b in 0..n {
                    assert_eq!(prov.route(a, b), scratch.route(a, b), "route {a}->{b}");
                }
            }
        }
    });
}
