//! Property tests for the observability primitives.

use hfast_obs::hist::{bucket_bound, bucket_index, BUCKETS};
use hfast_obs::{Histogram, ToJsonl, Tracer, Val};
use hfast_par::forall;

#[test]
fn histogram_bucket_counts_sum_to_observation_count() {
    forall("hist_buckets_sum_to_count", 64, |rng| {
        let h = Histogram::new();
        let n = rng.range(0, 2000);
        let mut sum = 0u64;
        for _ in 0..n {
            // Mix magnitudes so every bucket range gets exercised.
            let v = match rng.range(0, 4) {
                0 => 0,
                1 => rng.range_u64(1, 1 << 8),
                2 => rng.range_u64(1, 1 << 32),
                _ => rng.next_u64(),
            };
            sum = sum.wrapping_add(v);
            h.record(v);
        }
        assert_eq!(h.count(), n as u64);
        assert_eq!(
            h.bucket_counts().iter().sum::<u64>(),
            n as u64,
            "bucket counts must sum to the observation count"
        );
        assert_eq!(h.sum(), sum);
        let nz_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(nz_total, n as u64);
    });
}

#[test]
fn histogram_bucket_contains_its_values() {
    forall("hist_bucket_contains_value", 64, |rng| {
        let v = match rng.range(0, 3) {
            0 => rng.range_u64(0, 1 << 10),
            1 => rng.range_u64(0, 1 << 40),
            _ => rng.next_u64(),
        };
        let i = bucket_index(v);
        assert!(i < BUCKETS);
        assert!(v <= bucket_bound(i), "value {v} above its bucket bound");
        if i > 0 {
            assert!(v > bucket_bound(i - 1), "value {v} fits an earlier bucket");
        }
    });
}

#[test]
fn histogram_quantile_bound_is_an_upper_bound() {
    forall("hist_quantile_upper_bound", 48, |rng| {
        let h = Histogram::new();
        let n = rng.range(1, 500);
        let mut values: Vec<u64> = (0..n).map(|_| rng.range_u64(0, 1 << 48)).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 0.5, 0.95, 1.0] {
            let idx = ((values.len() as f64 - 1.0) * q).round() as usize;
            let exact = values[idx];
            let bound = h.quantile_bound(q);
            assert!(
                bound >= exact,
                "q={q}: bound {bound} below exact quantile {exact}"
            );
        }
    });
}

#[test]
fn tracer_is_concurrency_safe_and_bounded() {
    forall("tracer_bounded_under_threads", 16, |rng| {
        let cap = rng.range(1, 64);
        let writers = rng.range(1, 5);
        let per_writer = rng.range(0, 200) as u64;
        let t = Tracer::new(cap);
        std::thread::scope(|s| {
            for w in 0..writers {
                let t = &t;
                s.spawn(move || {
                    for i in 0..per_writer {
                        t.record_at(i, 0, "tick", vec![("writer", Val::U(w as u64))]);
                    }
                });
            }
        });
        let total = writers as u64 * per_writer;
        assert_eq!(t.len() as u64 + t.dropped(), total);
        assert!(t.len() <= cap);
    });
}

#[test]
fn trace_event_jsonl_roundtrips_field_order() {
    forall("trace_event_jsonl_shape", 32, |rng| {
        let t_ns = rng.next_u64() >> 1;
        let ev = hfast_obs::TraceEvent {
            t_ns,
            dur_ns: 0,
            name: "e",
            fields: vec![("a", Val::U(rng.next_u64() >> 1))],
        };
        let line = ev.to_jsonl();
        assert!(line.starts_with(r#"{"event":"e","t_ns":"#));
        assert!(line.ends_with('}'));
        assert_eq!(line.matches('{').count(), 1);
    });
}
