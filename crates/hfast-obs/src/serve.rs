//! Request-serving observability: the metric set a long-running daemon
//! needs to explain itself.
//!
//! [`ServeObs`] is endpoint-label generic — the daemon hands it the
//! endpoint names once at construction and records by index afterwards —
//! so this crate stays ignorant of any particular protocol. The fields
//! mirror what a production RPC server exports: request counts by
//! endpoint, an in-flight level gauge, load-shed and error counters, and
//! queue-wait / service-time histograms for tail-latency accounting.
//!
//! Like every other obs struct in the workspace, collection itself is
//! always cheap (relaxed atomics); the JSONL *export* on drain goes
//! through [`crate::sink`] and only fires when `HFAST_OBS` asks for it.

use crate::counter::{Counter, Gauge};
use crate::hist::Histogram;
use crate::json::JsonObj;

/// Metrics for one serving daemon instance.
#[derive(Debug)]
pub struct ServeObs {
    endpoints: Vec<&'static str>,
    requests: Vec<Counter>,
    service_ns_by_endpoint: Vec<Histogram>,
    /// Requests admitted but not yet responded to.
    pub in_flight: Gauge,
    /// Highest in-flight level observed.
    pub in_flight_peak: Gauge,
    /// Requests rejected by admission control (queue full).
    pub shed: Counter,
    /// Requests dropped because their deadline expired while queued.
    pub expired: Counter,
    /// Structured error responses returned (bad requests, handler
    /// failures); sheds and expiries are counted separately.
    pub errors: Counter,
    /// Handler panics converted into structured error responses.
    pub panics: Counter,
    /// Connections accepted over the daemon's lifetime.
    pub connections: Counter,
    /// Nanoseconds each request waited in the admission queue.
    pub queue_wait_ns: Histogram,
    /// Nanoseconds each request spent executing in a worker.
    pub service_ns: Histogram,
}

impl ServeObs {
    /// A zeroed metric set labelled with `endpoints` (index order is the
    /// record order used by [`record_request`](Self::record_request)).
    pub fn new(endpoints: &[&'static str]) -> Self {
        ServeObs {
            endpoints: endpoints.to_vec(),
            requests: endpoints.iter().map(|_| Counter::new()).collect(),
            service_ns_by_endpoint: endpoints.iter().map(|_| Histogram::new()).collect(),
            in_flight: Gauge::new(),
            in_flight_peak: Gauge::new(),
            shed: Counter::new(),
            expired: Counter::new(),
            errors: Counter::new(),
            panics: Counter::new(),
            connections: Counter::new(),
            queue_wait_ns: Histogram::new(),
            service_ns: Histogram::new(),
        }
    }

    /// Counts one request against endpoint index `idx` (ignores an index
    /// outside the label set rather than panicking in the serve path).
    #[inline]
    pub fn record_request(&self, idx: usize) {
        if let Some(c) = self.requests.get(idx) {
            c.inc();
        }
    }

    /// Requests recorded against endpoint index `idx`.
    pub fn requests_for(&self, idx: usize) -> u64 {
        self.requests.get(idx).map_or(0, Counter::get)
    }

    /// Records one end-to-end serve latency against endpoint index `idx`
    /// (parse to response written, measured at the connection). The
    /// aggregate [`service_ns`](Self::service_ns) histogram keeps its
    /// worker-execute meaning and is recorded separately; out-of-range
    /// indices are ignored like [`record_request`](Self::record_request).
    #[inline]
    pub fn record_service(&self, idx: usize, ns: u64) {
        if let Some(h) = self.service_ns_by_endpoint.get(idx) {
            h.record(ns);
        }
    }

    /// Lifetime service-latency histogram of endpoint index `idx`; `None`
    /// out of range.
    pub fn service_for(&self, idx: usize) -> Option<&Histogram> {
        self.service_ns_by_endpoint.get(idx)
    }

    /// Requests recorded across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(Counter::get).sum()
    }

    /// The endpoint labels, in record-index order.
    pub fn endpoints(&self) -> &[&'static str] {
        &self.endpoints
    }

    /// Marks a request admitted (raises the in-flight level and its peak).
    #[inline]
    pub fn request_admitted(&self) {
        self.in_flight.inc();
        self.in_flight_peak.set_max(self.in_flight.get());
    }

    /// Marks a request responded to (lowers the in-flight level).
    #[inline]
    pub fn request_done(&self) {
        self.in_flight.dec();
    }

    /// The drain-time summary as JSON Lines: one `serve_endpoint` record
    /// per label plus one `serve_summary` record with the aggregate
    /// counters and latency quantiles.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .endpoints
            .iter()
            .zip(&self.requests)
            .zip(&self.service_ns_by_endpoint)
            .map(|((name, count), service)| {
                JsonObj::new()
                    .str("event", "serve_endpoint")
                    .str("endpoint", name)
                    .u64("requests", count.get())
                    .u64("service_p50_ns", service.quantile(0.50))
                    .u64("service_p95_ns", service.quantile(0.95))
                    .u64("service_p99_ns", service.quantile(0.99))
                    .finish()
            })
            .collect();
        lines.push(
            JsonObj::new()
                .str("event", "serve_summary")
                .u64("requests", self.total_requests())
                .u64("connections", self.connections.get())
                .u64("in_flight", self.in_flight.get())
                .u64("in_flight_peak", self.in_flight_peak.get())
                .u64("shed", self.shed.get())
                .u64("expired", self.expired.get())
                .u64("errors", self.errors.get())
                .u64("panics", self.panics.get())
                .u64("queue_wait_p50_ns", self.queue_wait_ns.quantile(0.50))
                .u64("queue_wait_p95_ns", self.queue_wait_ns.quantile(0.95))
                .u64("queue_wait_p99_ns", self.queue_wait_ns.quantile(0.99))
                .u64("service_p50_ns", self.service_ns.quantile(0.50))
                .u64("service_p95_ns", self.service_ns.quantile(0.95))
                .u64("service_p99_ns", self.service_ns.quantile(0.99))
                .finish(),
        );
        lines
    }

    /// Exports [`summary_lines`](Self::summary_lines) through the ambient
    /// `HFAST_OBS` sink; a no-op when observability is off. Called once on
    /// daemon drain.
    pub fn export(&self) {
        if crate::enabled() {
            crate::sink::emit_lines(self.summary_lines());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_endpoint_index() {
        let obs = ServeObs::new(&["alpha", "beta"]);
        obs.record_request(0);
        obs.record_request(0);
        obs.record_request(1);
        obs.record_request(7); // out of range: ignored
        assert_eq!(obs.requests_for(0), 2);
        assert_eq!(obs.requests_for(1), 1);
        assert_eq!(obs.requests_for(7), 0);
        assert_eq!(obs.total_requests(), 3);
        assert_eq!(obs.endpoints(), &["alpha", "beta"]);
    }

    #[test]
    fn in_flight_level_and_peak() {
        let obs = ServeObs::new(&["a"]);
        obs.request_admitted();
        obs.request_admitted();
        obs.request_done();
        obs.request_admitted();
        assert_eq!(obs.in_flight.get(), 2);
        assert_eq!(obs.in_flight_peak.get(), 2);
    }

    #[test]
    fn summary_lines_parse_and_cover_endpoints() {
        let obs = ServeObs::new(&["tdc", "cost"]);
        obs.record_request(0);
        obs.shed.inc();
        obs.queue_wait_ns.record(1_000);
        obs.service_ns.record(50_000);
        let lines = obs.summary_lines();
        assert_eq!(lines.len(), 3, "one per endpoint plus the summary");
        assert!(lines[0].contains("\"endpoint\":\"tdc\""));
        assert!(lines[1].contains("\"endpoint\":\"cost\""));
        let summary = &lines[2];
        assert!(summary.contains("\"event\":\"serve_summary\""));
        assert!(summary.contains("\"shed\":1"));
        assert!(summary.contains("\"requests\":1"));
    }
}
