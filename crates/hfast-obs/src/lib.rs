//! # hfast-obs — the measurement layer beneath the measurement-driven design
//!
//! The paper's premise is that interconnects should be provisioned from
//! *measured* communication behaviour (IPM profiles feeding the HFAST
//! provisioner, §2–3). This crate applies the same discipline to our own
//! runtime, simulator, and reconfiguration engine: cheap always-compiled
//! primitives — [`Counter`], [`Gauge`], log-bucketed [`Histogram`]s, and a
//! bounded ring-buffer [`Tracer`] with monotonic timestamps — plus one
//! shared JSON Lines emission path ([`ToJsonl`] / [`sink`]).
//!
//! ## The `HFAST_OBS` switch
//!
//! Collection is off by default. [`enabled`] reads `HFAST_OBS` once and
//! caches the answer in an atomic, so the disabled path at an
//! instrumentation site is a single relaxed load and a branch:
//!
//! | `HFAST_OBS`            | behaviour                                   |
//! |------------------------|---------------------------------------------|
//! | unset, empty, `0`      | disabled (no collection, no output)         |
//! | `1`, `true`, `stderr`  | enabled; export goes to stderr              |
//! | anything else          | enabled; treated as a path, JSONL appended  |
//!
//! Exported records never touch stdout, so experiment output stays
//! byte-identical with observability on or off (the determinism contract
//! the benches assert across `HFAST_THREADS` settings).
//!
//! ## Determinism
//!
//! Counters and histograms are deterministic for a deterministic workload.
//! Trace *ordering* is deterministic under `HFAST_THREADS=1`; subsystems
//! that have a logical clock (the simulator's virtual time, the reconfig
//! engine's synchronization points) stamp events with it via
//! [`Tracer::record_at`], making their timelines fully reproducible.
//!
//! ```
//! use hfast_obs::{Counter, Histogram, ToJsonl, Tracer, Val};
//!
//! let sends = Counter::new();
//! sends.inc();
//! let sizes = Histogram::new();
//! sizes.record(4096);
//! let tracer = Tracer::new(16);
//! tracer.record_at(7, 0, "sync_point", vec![("coverage", Val::F(0.5))]);
//! let line = tracer.snapshot()[0].to_jsonl();
//! assert!(line.contains("\"event\":\"sync_point\""));
//! ```

#![warn(missing_docs)]

pub mod counter;
pub mod hist;
pub mod json;
pub mod serve;
pub mod sink;
pub mod trace;
pub mod window;

pub use counter::{Counter, Gauge};
pub use hist::Histogram;
pub use json::{JsonObj, ToJsonl};
pub use serve::ServeObs;
pub use sink::{emit, emit_lines, Sink};
pub use trace::{Span, TraceEvent, Tracer, Val};
pub use window::{LaneStats, Outcome, SlidingWindow, WindowSnapshot};

use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = not yet probed, 1 = disabled, 2 = enabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// True if observability collection is switched on via `HFAST_OBS`.
///
/// The environment is consulted once per process; afterwards this is a
/// relaxed atomic load, cheap enough for per-event call sites.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = switch_is_on(std::env::var("HFAST_OBS").ok().as_deref());
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Pure parser behind [`enabled`]: is this `HFAST_OBS` value "on"?
pub fn switch_is_on(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_parsing() {
        assert!(!switch_is_on(None));
        assert!(!switch_is_on(Some("")));
        assert!(!switch_is_on(Some("  ")));
        assert!(!switch_is_on(Some("0")));
        assert!(switch_is_on(Some("1")));
        assert!(switch_is_on(Some("true")));
        assert!(switch_is_on(Some("stderr")));
        assert!(switch_is_on(Some("/tmp/obs.jsonl")));
    }

    #[test]
    fn enabled_is_stable_across_calls() {
        // Whatever the environment says, the cached answer never flips.
        let first = enabled();
        for _ in 0..100 {
            assert_eq!(enabled(), first);
        }
    }
}
