//! Where exported records go.
//!
//! The `HFAST_OBS` variable doubles as the sink selector: `1`/`true`/
//! `stderr` send JSON Lines to stderr, any other non-off value is a file
//! path to append to. Exports never write to stdout — experiment output
//! must stay byte-identical whether observability is on or off.

use std::io::Write as _;
use std::path::PathBuf;

use crate::json::ToJsonl;

/// Resolved export destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sink {
    /// Observability is off; exports are dropped.
    Disabled,
    /// JSON Lines to stderr.
    Stderr,
    /// JSON Lines appended to a file.
    File(PathBuf),
}

/// Parses an `HFAST_OBS` value into a [`Sink`] (pure; see [`sink`] for the
/// environment-reading wrapper).
pub fn parse_sink(value: Option<&str>) -> Sink {
    if !crate::switch_is_on(value) {
        return Sink::Disabled;
    }
    let v = value.unwrap_or_default().trim();
    match v {
        "1" | "true" | "stderr" => Sink::Stderr,
        path => Sink::File(PathBuf::from(path)),
    }
}

/// The process's export destination per the current environment.
pub fn sink() -> Sink {
    parse_sink(std::env::var("HFAST_OBS").ok().as_deref())
}

/// Writes one line per item to the configured sink. A [`Sink::Disabled`]
/// sink drops everything; I/O errors are reported on stderr and swallowed
/// (observability must never fail the workload).
pub fn emit_lines<I>(lines: I)
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    match sink() {
        Sink::Disabled => {}
        Sink::Stderr => {
            let stderr = std::io::stderr();
            let mut out = stderr.lock();
            for line in lines {
                let _ = writeln!(out, "{}", line.as_ref());
            }
        }
        Sink::File(path) => {
            match std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let mut buf = String::new();
                    for line in lines {
                        buf.push_str(line.as_ref());
                        buf.push('\n');
                    }
                    if let Err(e) = f.write_all(buf.as_bytes()) {
                        eprintln!("hfast-obs: cannot write {}: {e}", path.display());
                    }
                }
                Err(e) => eprintln!("hfast-obs: cannot open {}: {e}", path.display()),
            }
        }
    }
}

/// Serializes each record via [`ToJsonl`] and writes it to the sink.
pub fn emit<'a, T, I>(records: I)
where
    T: ToJsonl + 'a,
    I: IntoIterator<Item = &'a T>,
{
    emit_lines(records.into_iter().map(ToJsonl::to_jsonl));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_off_values() {
        assert_eq!(parse_sink(None), Sink::Disabled);
        assert_eq!(parse_sink(Some("0")), Sink::Disabled);
        assert_eq!(parse_sink(Some("")), Sink::Disabled);
    }

    #[test]
    fn parse_stderr_values() {
        assert_eq!(parse_sink(Some("1")), Sink::Stderr);
        assert_eq!(parse_sink(Some("true")), Sink::Stderr);
        assert_eq!(parse_sink(Some("stderr")), Sink::Stderr);
    }

    #[test]
    fn parse_path_values() {
        assert_eq!(
            parse_sink(Some("/tmp/obs.jsonl")),
            Sink::File(PathBuf::from("/tmp/obs.jsonl"))
        );
        assert_eq!(
            parse_sink(Some(" out.jsonl ")),
            Sink::File(PathBuf::from("out.jsonl")),
            "paths are trimmed"
        );
    }
}
