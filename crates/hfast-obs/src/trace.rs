//! Bounded ring-buffer span/event tracing.
//!
//! A [`Tracer`] holds the most recent `capacity` events (older ones are
//! dropped and counted, so memory stays bounded on arbitrarily long runs).
//! Timestamps are nanoseconds on a monotonic clock whose epoch is the
//! tracer's creation — or, for subsystems with a logical clock (simulated
//! time, synchronization-point indices), whatever the caller passes to
//! [`Tracer::record_at`], which makes those timelines fully deterministic.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{JsonObj, ToJsonl};

/// A trace field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Float.
    F(f64),
    /// String.
    S(String),
}

impl From<u64> for Val {
    fn from(v: u64) -> Self {
        Val::U(v)
    }
}

impl From<usize> for Val {
    fn from(v: usize) -> Self {
        Val::U(v as u64)
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::I(v)
    }
}

impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::F(v)
    }
}

impl From<&str> for Val {
    fn from(v: &str) -> Self {
        Val::S(v.to_string())
    }
}

/// One recorded event (instant if `dur_ns == 0`, a span otherwise).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Start timestamp, nanoseconds since the tracer's epoch (or the
    /// caller's logical clock).
    pub t_ns: u64,
    /// Duration; 0 for instant events.
    pub dur_ns: u64,
    /// Event name.
    pub name: &'static str,
    /// Event-specific fields.
    pub fields: Vec<(&'static str, Val)>,
}

impl ToJsonl for TraceEvent {
    fn to_jsonl(&self) -> String {
        let mut obj = JsonObj::new()
            .str("event", self.name)
            .u64("t_ns", self.t_ns);
        if self.dur_ns > 0 {
            obj = obj.u64("dur_ns", self.dur_ns);
        }
        for (k, v) in &self.fields {
            obj = match v {
                Val::U(u) => obj.u64(k, *u),
                Val::I(i) => obj.i64(k, *i),
                Val::F(f) => obj.f64(k, *f),
                Val::S(s) => obj.str(k, s),
            };
        }
        obj.finish()
    }
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded, thread-safe event/span recorder.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
}

/// Default event capacity (overridable via `HFAST_OBS_RING`).
pub const DEFAULT_CAPACITY: usize = 4096;

/// The default ring capacity: [`DEFAULT_CAPACITY`] unless the
/// `HFAST_OBS_RING` environment variable holds a positive integer. Probed
/// once per process.
pub fn default_capacity() -> usize {
    static CAPACITY: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CAPACITY.get_or_init(|| {
        parse_ring_override(std::env::var("HFAST_OBS_RING").ok().as_deref())
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

/// Pure parser behind [`default_capacity`]: the override, if valid.
pub fn parse_ring_override(value: Option<&str>) -> Option<usize> {
    value?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(default_capacity())
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring::default()),
        }
    }

    /// Nanoseconds since the tracer's epoch (monotonic).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records an event at an explicit (logical) timestamp — the
    /// deterministic entry point for subsystems with their own clock.
    pub fn record_at(
        &self,
        t_ns: u64,
        dur_ns: u64,
        name: &'static str,
        fields: Vec<(&'static str, Val)>,
    ) {
        self.push(TraceEvent {
            t_ns,
            dur_ns,
            name,
            fields,
        });
    }

    /// Records an instant event stamped with the monotonic clock.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, Val)>) {
        self.record_at(self.now_ns(), 0, name, fields);
    }

    /// Opens a span; the span records itself (with its wall duration) when
    /// dropped.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            name,
            t0: self.now_ns(),
            fields: Vec::new(),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock().expect("tracer poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(ev);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer poisoned").events.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("tracer poisoned").dropped
    }

    /// Copies out the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("tracer poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the retained events as JSON Lines.
    ///
    /// When the ring evicted anything, a final `trace_truncated` record
    /// reports how many events were dropped and the retaining capacity —
    /// otherwise a full-looking export would silently hide the truncation.
    pub fn jsonl_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self.snapshot().iter().map(ToJsonl::to_jsonl).collect();
        let dropped = self.dropped();
        if dropped > 0 {
            lines.push(
                JsonObj::new()
                    .str("event", "trace_truncated")
                    .u64("dropped", dropped)
                    .usize("capacity", self.capacity)
                    .finish(),
            );
        }
        lines
    }
}

impl Clone for Tracer {
    /// Cloning snapshots the retained events (epoch and capacity carry
    /// over).
    fn clone(&self) -> Self {
        let ring = self.ring.lock().expect("tracer poisoned");
        Tracer {
            epoch: self.epoch,
            capacity: self.capacity,
            ring: Mutex::new(Ring {
                events: ring.events.clone(),
                dropped: ring.dropped,
            }),
        }
    }
}

/// An open span; records a [`TraceEvent`] with its duration on drop.
#[must_use = "a span records only when dropped"]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    t0: u64,
    fields: Vec<(&'static str, Val)>,
}

impl Span<'_> {
    /// Attaches a field to the span's eventual event.
    pub fn field(&mut self, k: &'static str, v: impl Into<Val>) {
        self.fields.push((k, v.into()));
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let dur = self.tracer.now_ns().saturating_sub(self.t0).max(1);
        self.tracer
            .record_at(self.t0, dur, self.name, std::mem::take(&mut self.fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_at_logical_times() {
        let t = Tracer::new(16);
        t.record_at(5, 0, "a", vec![("x", Val::U(1))]);
        t.record_at(9, 2, "b", vec![]);
        let evs = t.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "a");
        assert_eq!(evs[0].t_ns, 5);
        assert_eq!(evs[1].dur_ns, 2);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let t = Tracer::new(3);
        for i in 0..10u64 {
            t.record_at(i, 0, "tick", vec![]);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let ts: Vec<u64> = t.snapshot().iter().map(|e| e.t_ns).collect();
        assert_eq!(ts, vec![7, 8, 9], "newest survive");
        let lines = t.jsonl_lines();
        assert_eq!(lines.len(), 4, "3 events + 1 truncation record");
        assert_eq!(
            lines[3],
            r#"{"event":"trace_truncated","dropped":7,"capacity":3}"#
        );
    }

    #[test]
    fn untruncated_export_has_no_truncation_record() {
        let t = Tracer::new(8);
        t.record_at(1, 0, "a", vec![]);
        assert_eq!(t.jsonl_lines().len(), 1);
    }

    #[test]
    fn ring_override_parsing() {
        assert_eq!(parse_ring_override(None), None);
        assert_eq!(parse_ring_override(Some("")), None);
        assert_eq!(parse_ring_override(Some("0")), None);
        assert_eq!(parse_ring_override(Some("nope")), None);
        assert_eq!(parse_ring_override(Some(" 128 ")), Some(128));
        // Whatever the environment says, the probed value is stable and
        // positive.
        let cap = default_capacity();
        assert!(cap > 0);
        assert_eq!(default_capacity(), cap);
    }

    #[test]
    fn span_records_duration_and_fields() {
        let t = Tracer::new(8);
        {
            let mut s = t.span("work");
            s.field("items", 42u64);
        }
        let evs = t.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].name, "work");
        assert!(evs[0].dur_ns >= 1);
        assert_eq!(evs[0].fields, vec![("items", Val::U(42))]);
    }

    #[test]
    fn jsonl_rendering() {
        let t = Tracer::new(4);
        t.record_at(
            100,
            7,
            "link_busy",
            vec![("link", Val::U(3)), ("frac", Val::F(0.25))],
        );
        let lines = t.jsonl_lines();
        assert_eq!(
            lines[0],
            r#"{"event":"link_busy","t_ns":100,"dur_ns":7,"link":3,"frac":0.25}"#
        );
    }

    #[test]
    fn clone_snapshots() {
        let t = Tracer::new(4);
        t.record_at(1, 0, "a", vec![]);
        let c = t.clone();
        t.record_at(2, 0, "b", vec![]);
        assert_eq!(c.len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn monotonic_clock_advances() {
        let t = Tracer::new(2);
        let a = t.now_ns();
        let b = t.now_ns();
        assert!(b >= a);
    }
}
