//! The single JSON Lines emission path.
//!
//! Report structs across the workspace (`RunStats`, the fault reports,
//! `ReconfigStep`, bench rows, trace events) all serialize through
//! [`JsonObj`], so escaping and number formatting are written once. The
//! [`ToJsonl`] trait is the shared contract: one struct, one line of JSON,
//! no trailing newline.

/// Serialize as one line of JSON (an object, no trailing newline).
pub trait ToJsonl {
    /// The JSON Lines representation of `self`.
    fn to_jsonl(&self) -> String;
}

/// Incremental builder for one flat JSON object.
///
/// Fields appear in insertion order; keys are trusted to be plain
/// identifiers (no escaping is applied to keys), values are escaped.
///
/// ```
/// use hfast_obs::JsonObj;
/// let line = JsonObj::new()
///     .str("name", "alltoall")
///     .u64("bytes", 4096)
///     .f64_p("ratio", 1.0 / 3.0, 3)
///     .finish();
/// assert_eq!(line, r#"{"name":"alltoall","bytes":4096,"ratio":0.333}"#);
/// ```
#[derive(Debug, Clone)]
pub struct JsonObj {
    buf: String,
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, k: &str, v: i64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a `usize` field.
    pub fn usize(self, k: &str, v: usize) -> Self {
        self.u64(k, v as u64)
    }

    /// Adds a float field with shortest-round-trip formatting
    /// (non-finite values become `null`).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a float field with fixed precision (non-finite → `null`).
    pub fn f64_p(mut self, k: &str, v: f64, precision: usize) -> Self {
        self.key(k);
        if v.is_finite() {
            self.buf.push_str(&format!("{v:.precision$}"));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a string field (escaped).
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already valid JSON (e.g. a nested
    /// array built by the caller).
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Appends `s` to `buf` with JSON string escaping.
pub fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Renders `(upper_bound, count)` histogram pairs as a JSON array of
/// two-element arrays, for use with [`JsonObj::raw`].
pub fn buckets_to_json(pairs: &[(u64, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (bound, count)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{bound},{count}]"));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order_with_types() {
        let line = JsonObj::new()
            .str("a", "x")
            .u64("b", 7)
            .i64("c", -2)
            .bool("d", true)
            .f64("e", 1.5)
            .finish();
        assert_eq!(line, r#"{"a":"x","b":7,"c":-2,"d":true,"e":1.5}"#);
    }

    #[test]
    fn escapes_strings() {
        let line = JsonObj::new().str("s", "a\"b\\c\nd\u{1}").finish();
        assert_eq!(line, "{\"s\":\"a\\\"b\\\\c\\nd\\u0001\"}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObj::new()
            .f64("nan", f64::NAN)
            .f64_p("inf", f64::INFINITY, 2)
            .finish();
        assert_eq!(line, r#"{"nan":null,"inf":null}"#);
    }

    #[test]
    fn empty_object() {
        assert_eq!(JsonObj::new().finish(), "{}");
    }

    #[test]
    fn raw_and_buckets() {
        let arr = buckets_to_json(&[(7, 2), (1023, 5)]);
        assert_eq!(arr, "[[7,2],[1023,5]]");
        let line = JsonObj::new().raw("hist", &arr).finish();
        assert_eq!(line, r#"{"hist":[[7,2],[1023,5]]}"#);
    }
}
