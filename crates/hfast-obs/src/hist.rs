//! Log-bucketed histograms.
//!
//! Message sizes, queueing delays, and latencies all span many orders of
//! magnitude, so the paper's own analyses (buffer-size CDFs, Figures 3–4)
//! bucket them logarithmically. [`Histogram`] does the same: 65 power-of-two
//! buckets cover the full `u64` range, recording is one `fetch_add` on the
//! bucket plus count/sum updates, and reads are snapshots — safe to take
//! while writers are still recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per power of two up to 2^63.
pub const BUCKETS: usize = 65;

/// A concurrent histogram with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: 0 holds only zero; bucket `i >= 1` holds
/// `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Interpolated q-quantile over a raw log₂ bucket-count array (the layout
/// [`Histogram::bucket_counts`] produces); 0 when empty.
///
/// Shared by [`Histogram::quantile`] and the sliding-window aggregator in
/// [`crate::window`], which sums bucket counts across ring slots before
/// asking for rolling quantiles — one estimator, one answer.
pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0;
    }
    let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if cum + c >= threshold {
            if i == 0 {
                return 0;
            }
            // Rank position inside this bucket, in (0, 1].
            let into = (threshold - cum) as f64 / c as f64;
            let lo = if i == 1 { 1 } else { 1u64 << (i - 1) };
            let hi = bucket_bound(i);
            let span = (hi - lo) as f64;
            return lo + (span * into).round() as u64;
        }
        cum += c;
    }
    bucket_bound(counts.len().min(BUCKETS) - 1)
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_bound(i: usize) -> u64 {
    assert!(i < BUCKETS, "bucket index out of range");
    if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Snapshot of all bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0.0–1.0) of all observations; 0 when empty. An upper estimate
    /// of the q-quantile, exact to within the bucket's power of two.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let threshold = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= threshold {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Interpolated q-quantile (0.0–1.0) from the log₂ buckets; 0 when
    /// empty.
    ///
    /// Where [`quantile_bound`](Histogram::quantile_bound) reports the
    /// bucket's upper bound (an overestimate by up to 2×), this linearly
    /// interpolates by rank position inside the bucket that crosses the
    /// threshold, assuming observations spread uniformly across the
    /// bucket's `[2^(i-1), 2^i)` range — the estimator summaries should
    /// print (p50/p95/p99) instead of raw bucket dumps.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_counts(&self.bucket_counts(), q)
    }

    /// Non-empty buckets as `(upper_bound, count)` pairs, for compact
    /// export.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.bucket_counts()
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
            .collect()
    }
}

impl Clone for Histogram {
    /// Cloning snapshots the current contents.
    fn clone(&self) -> Self {
        Histogram {
            buckets: std::array::from_fn(|i| {
                AtomicU64::new(self.buckets[i].load(Ordering::Relaxed))
            }),
            count: AtomicU64::new(self.count()),
            sum: AtomicU64::new(self.sum()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bounds_cover_their_buckets() {
        for i in 1..BUCKETS {
            let hi = bucket_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound lands in bucket {i}");
            let lo = bucket_bound(i - 1).saturating_add(1);
            assert_eq!(bucket_index(lo), i, "lower bound lands in bucket {i}");
        }
    }

    #[test]
    fn records_and_aggregates() {
        let h = Histogram::new();
        for v in [0, 1, 1, 100, 4096] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 4198);
        assert!((h.mean() - 4198.0 / 5.0).abs() < 1e-9);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1, "one zero");
        assert_eq!(counts[1], 2, "two ones");
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantile_bound_brackets_the_data() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_bound(0.5);
        assert!((500..=1023).contains(&p50), "p50 bound {p50}");
        assert!(h.quantile_bound(1.0) >= 1000);
        assert_eq!(Histogram::new().quantile_bound(0.5), 0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        // 500 observations land in buckets up to [256, 511]; interpolation
        // keeps the estimate near the true median instead of the 1023
        // bucket bound.
        assert!(
            (350..=700).contains(&p50),
            "interpolated p50 {p50} near true 500"
        );
        assert!(h.quantile(0.99) <= h.quantile_bound(0.99));
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        assert_eq!(Histogram::new().quantile(0.5), 0);
        // Only zeros: the zero bucket answers every quantile.
        let z = Histogram::new();
        z.record(0);
        assert_eq!(z.quantile(0.99), 0);
    }

    #[test]
    fn quantile_exact_for_single_value_buckets() {
        let h = Histogram::new();
        h.record(1); // bucket [1, 1]
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 1);
    }

    #[test]
    fn nonzero_buckets_compact_form() {
        let h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(1 << 20);
        let nz = h.nonzero_buckets();
        assert_eq!(nz, vec![(7, 2), ((1 << 21) - 1, 1)]);
    }
}
