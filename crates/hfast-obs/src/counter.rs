//! Monotonic counters and last/max gauges on relaxed atomics.
//!
//! These are deliberately the cheapest primitives in the crate: a hot loop
//! (the simulator's event pump, a rank thread's send path) can carry one
//! `fetch_add` per event without measurable distortion, and the disabled
//! path skips even that (instrumentation sites branch on
//! [`crate::enabled`] or on an `Option` of their obs struct).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Clone for Counter {
    /// Cloning snapshots the current value (so obs-bearing structs can
    /// stay `Clone`).
    fn clone(&self) -> Self {
        Counter {
            v: AtomicU64::new(self.get()),
        }
    }
}

/// A gauge holding the latest (or the largest) observed value.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.v.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds one (for level gauges like in-flight request counts).
    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one, saturating at zero even under racing decrements.
    #[inline]
    pub fn dec(&self) {
        // fetch_update loops only under contention; a level gauge is
        // touched twice per request, so this is never hot.
        let _ = self
            .v
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

impl Clone for Gauge {
    fn clone(&self) -> Self {
        Gauge {
            v: AtomicU64::new(self.get()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.clone().get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10, "set_max never lowers");
        g.set_max(99);
        assert_eq!(g.get(), 99);
        g.set(1);
        assert_eq!(g.get(), 1, "set overwrites");
    }

    #[test]
    fn gauge_level_tracking() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0, "dec saturates at zero");
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
