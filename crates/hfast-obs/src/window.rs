//! Sliding-window time series: rolling SLO metrics in bounded memory.
//!
//! A lifetime [`Histogram`](crate::Histogram) answers "what has this
//! process ever seen"; an SLO monitor needs "what is it seeing *now*".
//! [`SlidingWindow`] is the standard fix: a ring of fixed-duration time
//! buckets, each holding per-lane (per-verb, for the daemon) log₂ latency
//! counts plus ok/busy/error tallies. Advancing the ring reclaims the
//! oldest bucket, so memory is `lanes × buckets × 65` words forever, and a
//! snapshot sums the live buckets into rolling p50/p95/p99, throughput,
//! and error/busy rates over the last `buckets × bucket_ns` nanoseconds.
//!
//! Time is an explicit `now_ns` argument (nanoseconds on any monotonic
//! clock, e.g. elapsed-since-daemon-start), never a hidden wall-clock
//! read — tests drive the ring deterministically, and the caller already
//! has the timestamp it measured the latency with.
//!
//! Recording takes a mutex rather than juggling atomics: the ring must
//! reset a bucket atomically with claiming its sequence number, and every
//! call site (one per served request) sits behind a TCP round-trip that
//! dwarfs an uncontended lock.

use std::sync::Mutex;

use crate::hist::{bucket_index, quantile_from_counts, BUCKETS};

/// How a request finished, for the window's rate lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served successfully.
    Ok,
    /// Shed by admission control (the caller may retry).
    Busy,
    /// Structured error response.
    Error,
}

#[derive(Debug, Clone)]
struct LaneCell {
    count: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    hist: [u64; BUCKETS],
}

impl LaneCell {
    fn zeroed() -> Self {
        LaneCell {
            count: 0,
            ok: 0,
            busy: 0,
            errors: 0,
            hist: [0; BUCKETS],
        }
    }
}

#[derive(Debug)]
struct TimeBucket {
    /// Which ring turn this slot's contents belong to (`now_ns /
    /// bucket_ns`); a slot whose seq has fallen out of the live window is
    /// reset before reuse and ignored by snapshots.
    seq: u64,
    lanes: Vec<LaneCell>,
}

/// Rolling per-lane latency/outcome statistics over the last
/// `buckets × bucket_ns` nanoseconds.
#[derive(Debug)]
pub struct SlidingWindow {
    bucket_ns: u64,
    ring: Mutex<Vec<TimeBucket>>,
}

/// Rolling statistics for one lane, from [`SlidingWindow::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LaneStats {
    /// Observations in the window.
    pub count: u64,
    /// Successful responses.
    pub ok: u64,
    /// Busy (load-shed) responses.
    pub busy: u64,
    /// Error responses.
    pub errors: u64,
    /// Rolling interpolated p50 latency, nanoseconds.
    pub p50_ns: u64,
    /// Rolling interpolated p95 latency, nanoseconds.
    pub p95_ns: u64,
    /// Rolling interpolated p99 latency, nanoseconds.
    pub p99_ns: u64,
}

impl LaneStats {
    /// Fraction of windowed requests that returned an error (0.0 empty).
    pub fn error_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.errors as f64 / self.count as f64
        }
    }

    /// Fraction of windowed requests that were shed busy (0.0 empty).
    pub fn busy_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.busy as f64 / self.count as f64
        }
    }
}

/// One snapshot of every lane plus the window geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Width of the window the stats cover, nanoseconds.
    pub window_ns: u64,
    /// Per-lane rolling stats, in constructor lane order.
    pub lanes: Vec<LaneStats>,
}

impl WindowSnapshot {
    /// Windowed throughput of one lane in requests per second.
    pub fn throughput_rps(&self, lane: usize) -> f64 {
        let count = self.lanes.get(lane).map_or(0, |l| l.count);
        if self.window_ns == 0 {
            0.0
        } else {
            count as f64 * 1e9 / self.window_ns as f64
        }
    }
}

impl SlidingWindow {
    /// A window of `buckets` ring slots of `bucket_ns` each, tracking
    /// `lanes` independent series. Panics on a zero dimension.
    pub fn new(lanes: usize, buckets: usize, bucket_ns: u64) -> Self {
        assert!(lanes > 0 && buckets > 0 && bucket_ns > 0);
        let ring = (0..buckets)
            .map(|_| TimeBucket {
                seq: u64::MAX, // never matches a real turn: starts empty
                lanes: vec![LaneCell::zeroed(); lanes],
            })
            .collect();
        SlidingWindow {
            bucket_ns,
            ring: Mutex::new(ring),
        }
    }

    /// Total width of the window, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        let slots = self.ring.lock().expect("window poisoned").len() as u64;
        slots * self.bucket_ns
    }

    /// Records one observation at monotonic time `now_ns` into `lane`.
    /// Lanes outside the constructor's range are ignored (serve-path
    /// safety, matching [`ServeObs::record_request`]).
    ///
    /// [`ServeObs::record_request`]: crate::ServeObs::record_request
    pub fn record(&self, now_ns: u64, lane: usize, latency_ns: u64, outcome: Outcome) {
        let turn = now_ns / self.bucket_ns;
        let mut ring = self.ring.lock().expect("window poisoned");
        let slots = ring.len() as u64;
        let slot = &mut ring[(turn % slots) as usize];
        if slot.seq != turn {
            if slot.seq != u64::MAX && slot.seq > turn {
                // A writer with a slightly older timestamp lost the race
                // to a newer turn; fold into the newer bucket rather than
                // resurrect the old one.
            } else {
                for cell in &mut slot.lanes {
                    *cell = LaneCell::zeroed();
                }
                slot.seq = turn;
            }
        }
        let Some(cell) = slot.lanes.get_mut(lane) else {
            return;
        };
        cell.count += 1;
        match outcome {
            Outcome::Ok => cell.ok += 1,
            Outcome::Busy => cell.busy += 1,
            Outcome::Error => cell.errors += 1,
        }
        cell.hist[bucket_index(latency_ns)] += 1;
    }

    /// Rolling stats at monotonic time `now_ns`: sums every ring slot
    /// whose turn is still inside the window ending at `now_ns` and
    /// interpolates quantiles from the summed log₂ counts.
    pub fn snapshot(&self, now_ns: u64) -> WindowSnapshot {
        let turn = now_ns / self.bucket_ns;
        let ring = self.ring.lock().expect("window poisoned");
        let slots = ring.len() as u64;
        let oldest_live = turn.saturating_sub(slots - 1);
        let lanes = ring[0].lanes.len();
        let mut sums: Vec<(LaneStats, [u64; BUCKETS])> =
            vec![(LaneStats::default(), [0; BUCKETS]); lanes];
        for slot in ring.iter() {
            if slot.seq == u64::MAX || slot.seq < oldest_live || slot.seq > turn {
                continue;
            }
            for (lane, cell) in slot.lanes.iter().enumerate() {
                let (stats, hist) = &mut sums[lane];
                stats.count += cell.count;
                stats.ok += cell.ok;
                stats.busy += cell.busy;
                stats.errors += cell.errors;
                for (acc, c) in hist.iter_mut().zip(cell.hist.iter()) {
                    *acc += c;
                }
            }
        }
        let lanes = sums
            .into_iter()
            .map(|(mut stats, hist)| {
                stats.p50_ns = quantile_from_counts(&hist, 0.50);
                stats.p95_ns = quantile_from_counts(&hist, 0.95);
                stats.p99_ns = quantile_from_counts(&hist, 0.99);
                stats
            })
            .collect();
        WindowSnapshot {
            window_ns: slots * self.bucket_ns,
            lanes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn rolls_old_buckets_out_of_the_window() {
        let w = SlidingWindow::new(1, 4, SEC);
        w.record(0, 0, 100, Outcome::Ok);
        w.record(SEC, 0, 200, Outcome::Ok);
        let snap = w.snapshot(SEC);
        assert_eq!(snap.lanes[0].count, 2);
        assert_eq!(snap.window_ns, 4 * SEC);
        // 5 s later the first two buckets have aged out.
        let snap = w.snapshot(5 * SEC);
        assert_eq!(snap.lanes[0].count, 0, "window fully rolled over");
        // Reusing a slot resets its stale contents first.
        w.record(5 * SEC, 0, 300, Outcome::Ok);
        assert_eq!(w.snapshot(5 * SEC).lanes[0].count, 1);
    }

    #[test]
    fn lanes_are_independent_and_outcomes_tallied() {
        let w = SlidingWindow::new(3, 8, SEC);
        w.record(0, 0, 10, Outcome::Ok);
        w.record(0, 1, 10, Outcome::Busy);
        w.record(0, 1, 10, Outcome::Error);
        w.record(0, 99, 10, Outcome::Ok); // out of range: ignored
        let snap = w.snapshot(0);
        assert_eq!(snap.lanes[0].ok, 1);
        assert_eq!(snap.lanes[1].busy, 1);
        assert_eq!(snap.lanes[1].errors, 1);
        assert_eq!(snap.lanes[2].count, 0);
        assert!((snap.lanes[1].error_rate() - 0.5).abs() < 1e-12);
        assert!((snap.lanes[1].busy_rate() - 0.5).abs() < 1e-12);
        assert!((snap.throughput_rps(0) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_match_the_lifetime_estimator_on_one_window() {
        let w = SlidingWindow::new(1, 16, SEC);
        let h = crate::Histogram::new();
        for v in 1..=1000u64 {
            w.record(0, 0, v, Outcome::Ok);
            h.record(v);
        }
        let snap = w.snapshot(0);
        assert_eq!(snap.lanes[0].p50_ns, h.quantile(0.50));
        assert_eq!(snap.lanes[0].p95_ns, h.quantile(0.95));
        assert_eq!(snap.lanes[0].p99_ns, h.quantile(0.99));
    }

    #[test]
    fn rolling_quantile_reflects_only_recent_traffic() {
        let w = SlidingWindow::new(1, 2, SEC);
        for _ in 0..100 {
            w.record(0, 0, 1 << 20, Outcome::Ok); // slow era
        }
        for _ in 0..100 {
            w.record(3 * SEC, 0, 16, Outcome::Ok); // fast era, 3 s later
        }
        let p99 = w.snapshot(3 * SEC).lanes[0].p99_ns;
        assert!(p99 < 1024, "slow era aged out, p99 {p99}");
    }

    #[test]
    fn memory_is_bounded_by_construction() {
        let w = SlidingWindow::new(2, 3, SEC);
        for t in 0..10_000u64 {
            w.record(t * SEC / 10, 0, t, Outcome::Ok);
        }
        // The ring never grows: a snapshot covers at most 3 buckets.
        let snap = w.snapshot(1_000 * SEC / 10);
        assert!(snap.lanes[0].count <= 3 * 10 + 10);
    }
}
