//! Property-based tests for the profiling layer: the fixed-footprint hash
//! table against a reference map, and the trace codec roundtrip.

use std::collections::BTreeMap;

use proptest::prelude::*;

use hfast_ipm::hashtable::{CallKey, CallTable};
use hfast_ipm::{from_text, to_text, CommProfile, ProfileEntry};
use hfast_mpi::CallKind;
use hfast_topology::EdgeStat;

/// (count, total_ns, min_ns, max_ns) — reference accumulator per key.
type RefStats = (u64, u64, u64, u64);
type RefKey = (u16, u8, u32, u64);

fn keys() -> impl Strategy<Value = CallKey> {
    (0u16..4, 0u8..20, 0u32..16, 0u64..4096).prop_map(|(region, kind, peer, bytes)| CallKey {
        region,
        kind,
        peer,
        bytes,
    })
}

proptest! {
    #[test]
    fn table_matches_reference_map(
        ops in prop::collection::vec((keys(), 1u64..10_000), 0..300),
    ) {
        let mut table = CallTable::new(1024);
        let mut reference: BTreeMap<RefKey, RefStats> = BTreeMap::new();
        for (key, elapsed) in &ops {
            table.record(*key, *elapsed);
            let entry = reference
                .entry((key.region, key.kind, key.peer, key.bytes))
                .or_insert((0, 0, u64::MAX, 0));
            entry.0 += 1;
            entry.1 += elapsed;
            entry.2 = entry.2.min(*elapsed);
            entry.3 = entry.3.max(*elapsed);
        }
        prop_assert_eq!(table.len(), reference.len());
        prop_assert_eq!(table.overflow(), 0, "capacity 1024 never overflows here");
        for (&(region, kind, peer, bytes), &(count, total, min, max)) in &reference {
            let stats = table
                .get(&CallKey { region, kind, peer, bytes })
                .expect("recorded key present");
            prop_assert_eq!(stats.count, count);
            prop_assert_eq!(stats.total_ns, total);
            prop_assert_eq!(stats.min_ns, min);
            prop_assert_eq!(stats.max_ns, max);
        }
        // Iteration covers exactly the reference keys.
        prop_assert_eq!(table.iter().count(), reference.len());
    }

    #[test]
    fn overflow_counts_are_exact(extra in 1usize..40) {
        let mut table = CallTable::new(8); // rounds to exactly 8 slots
        for i in 0..(8 + extra) {
            table.record(
                CallKey { region: 0, kind: 0, peer: i as u32, bytes: 0 },
                1,
            );
        }
        prop_assert_eq!(table.len(), 8);
        prop_assert_eq!(table.overflow(), extra as u64);
    }

    #[test]
    fn trace_roundtrip_arbitrary_profiles(
        size in 1usize..10,
        entries in prop::collection::vec(
            (0usize..18, 1u64..(2 << 20), 1u64..1000, 0u64..1_000_000),
            0..40,
        ),
        volumes in prop::collection::vec(
            (0usize..10, 0usize..10, 1u64..(1 << 24), 1u64..100),
            0..40,
        ),
    ) {
        const KINDS: [CallKind; 18] = [
            CallKind::Send, CallKind::Recv, CallKind::Isend, CallKind::Irecv,
            CallKind::Sendrecv, CallKind::Wait, CallKind::Waitall,
            CallKind::Waitany, CallKind::Test, CallKind::Barrier,
            CallKind::Bcast, CallKind::Reduce, CallKind::Allreduce,
            CallKind::Gather, CallKind::Allgather, CallKind::Alltoall,
            CallKind::Scatter, CallKind::ReduceScatter,
        ];
        // Deduplicate (kind, bytes) pairs: merged profiles have unique keys.
        let mut seen = std::collections::BTreeSet::new();
        let mut profile_entries = vec![];
        for (k, bytes, count, ns) in entries {
            let kind = KINDS[k];
            if seen.insert((kind, bytes)) {
                profile_entries.push(ProfileEntry {
                    kind,
                    bytes,
                    stats: hfast_ipm::CallStats {
                        count,
                        total_ns: ns * count,
                        min_ns: ns.min(1),
                        max_ns: ns,
                    },
                });
            }
        }
        let mut api = vec![EdgeStat::default(); size * size];
        for &(s, d, bytes, count) in &volumes {
            if s < size && d < size {
                api[s * size + d] = EdgeStat { bytes, count, max_msg: bytes };
            }
        }
        let profile = CommProfile {
            size,
            entries: profile_entries,
            api_volume: api.clone(),
            wire_volume: api,
            overflow: 0,
        };
        let text = to_text(&profile);
        let parsed = from_text(&text).unwrap();
        prop_assert_eq!(parsed, profile);
    }

    #[test]
    fn corrupted_traces_never_panic(garbage in "\\PC*") {
        // Arbitrary text must produce an error or a profile, never a panic.
        let _ = from_text(&garbage);
    }

    #[test]
    fn truncation_never_panics(cut in 0usize..400) {
        let profile = CommProfile {
            size: 3,
            entries: vec![ProfileEntry {
                kind: CallKind::Isend,
                bytes: 512,
                stats: hfast_ipm::CallStats { count: 4, total_ns: 40, min_ns: 5, max_ns: 20 },
            }],
            api_volume: vec![EdgeStat::default(); 9],
            wire_volume: vec![EdgeStat::default(); 9],
            overflow: 0,
        };
        let text = to_text(&profile);
        let cut = cut.min(text.len());
        let _ = from_text(&text[..cut]);
    }
}
