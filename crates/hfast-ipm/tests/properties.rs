//! Property-based tests for the profiling layer: the fixed-footprint hash
//! table against a reference map, and the trace codec roundtrip.

use std::collections::BTreeMap;

use hfast_ipm::hashtable::{CallKey, CallTable};
use hfast_ipm::{from_text, to_text, CommProfile, ProfileEntry};
use hfast_mpi::CallKind;
use hfast_par::{forall, Rng64};
use hfast_topology::EdgeStat;

/// (count, total_ns, min_ns, max_ns) — reference accumulator per key.
type RefStats = (u64, u64, u64, u64);
type RefKey = (u16, u8, u32, u64);

fn key(rng: &mut Rng64) -> CallKey {
    CallKey {
        region: rng.range_u64(0, 4) as u16,
        kind: rng.range_u64(0, 20) as u8,
        peer: rng.range_u64(0, 16) as u32,
        bytes: rng.range_u64(0, 4096),
    }
}

#[test]
fn table_matches_reference_map() {
    forall("table_matches_reference_map", 128, |rng| {
        let ops: Vec<(CallKey, u64)> = (0..rng.range(0, 300))
            .map(|_| (key(rng), rng.range_u64(1, 10_000)))
            .collect();
        let mut table = CallTable::new(1024);
        let mut reference: BTreeMap<RefKey, RefStats> = BTreeMap::new();
        for (key, elapsed) in &ops {
            table.record(*key, *elapsed);
            let entry = reference
                .entry((key.region, key.kind, key.peer, key.bytes))
                .or_insert((0, 0, u64::MAX, 0));
            entry.0 += 1;
            entry.1 += elapsed;
            entry.2 = entry.2.min(*elapsed);
            entry.3 = entry.3.max(*elapsed);
        }
        assert_eq!(table.len(), reference.len());
        assert_eq!(table.overflow(), 0, "capacity 1024 never overflows here");
        for (&(region, kind, peer, bytes), &(count, total, min, max)) in &reference {
            let stats = table
                .get(&CallKey {
                    region,
                    kind,
                    peer,
                    bytes,
                })
                .expect("recorded key present");
            assert_eq!(stats.count, count);
            assert_eq!(stats.total_ns, total);
            assert_eq!(stats.min_ns, min);
            assert_eq!(stats.max_ns, max);
        }
        // Iteration covers exactly the reference keys.
        assert_eq!(table.iter().count(), reference.len());
    });
}

#[test]
fn overflow_counts_are_exact() {
    forall("overflow_counts_are_exact", 40, |rng| {
        let extra = rng.range(1, 40);
        let mut table = CallTable::new(8); // rounds to exactly 8 slots
        for i in 0..(8 + extra) {
            table.record(
                CallKey {
                    region: 0,
                    kind: 0,
                    peer: i as u32,
                    bytes: 0,
                },
                1,
            );
        }
        assert_eq!(table.len(), 8);
        assert_eq!(table.overflow(), extra as u64);
    });
}

#[test]
fn trace_roundtrip_arbitrary_profiles() {
    const KINDS: [CallKind; 18] = [
        CallKind::Send,
        CallKind::Recv,
        CallKind::Isend,
        CallKind::Irecv,
        CallKind::Sendrecv,
        CallKind::Wait,
        CallKind::Waitall,
        CallKind::Waitany,
        CallKind::Test,
        CallKind::Barrier,
        CallKind::Bcast,
        CallKind::Reduce,
        CallKind::Allreduce,
        CallKind::Gather,
        CallKind::Allgather,
        CallKind::Alltoall,
        CallKind::Scatter,
        CallKind::ReduceScatter,
    ];
    forall("trace_roundtrip_arbitrary_profiles", 128, |rng| {
        let size = rng.range(1, 10);
        // Deduplicate (kind, bytes) pairs: merged profiles have unique keys.
        let mut seen = std::collections::BTreeSet::new();
        let mut profile_entries = vec![];
        for _ in 0..rng.range(0, 40) {
            let kind = KINDS[rng.range(0, KINDS.len())];
            let bytes = rng.range_u64(1, 2 << 20);
            let count = rng.range_u64(1, 1000);
            let ns = rng.range_u64(0, 1_000_000);
            if seen.insert((kind, bytes)) {
                profile_entries.push(ProfileEntry {
                    kind,
                    bytes,
                    stats: hfast_ipm::CallStats {
                        count,
                        total_ns: ns * count,
                        min_ns: ns.min(1),
                        max_ns: ns,
                    },
                });
            }
        }
        let mut api = vec![EdgeStat::default(); size * size];
        for _ in 0..rng.range(0, 40) {
            let s = rng.range(0, 10);
            let d = rng.range(0, 10);
            if s < size && d < size {
                let bytes = rng.range_u64(1, 1 << 24);
                api[s * size + d] = EdgeStat {
                    bytes,
                    count: rng.range_u64(1, 100),
                    max_msg: bytes,
                };
            }
        }
        let profile = CommProfile {
            size,
            entries: profile_entries,
            api_volume: api.clone(),
            wire_volume: api,
            overflow: 0,
        };
        let text = to_text(&profile);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, profile);
    });
}

#[test]
fn corrupted_traces_never_panic() {
    forall("corrupted_traces_never_panic", 256, |rng| {
        // Arbitrary text must produce an error or a profile, never a panic.
        let garbage: String = (0..rng.range(0, 200))
            .map(|_| char::from_u32(rng.range_u64(1, 0xD800) as u32).unwrap_or('?'))
            .collect();
        let _ = from_text(&garbage);
    });
}

#[test]
fn truncation_never_panics() {
    forall("truncation_never_panics", 256, |rng| {
        let profile = CommProfile {
            size: 3,
            entries: vec![ProfileEntry {
                kind: CallKind::Isend,
                bytes: 512,
                stats: hfast_ipm::CallStats {
                    count: 4,
                    total_ns: 40,
                    min_ns: 5,
                    max_ns: 20,
                },
            }],
            api_volume: vec![EdgeStat::default(); 9],
            wire_volume: vec![EdgeStat::default(); 9],
            overflow: 0,
        };
        let text = to_text(&profile);
        let cut = rng.range(0, 400).min(text.len());
        let _ = from_text(&text[..cut]);
    });
}
