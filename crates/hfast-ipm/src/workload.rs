//! Workload-level aggregation across applications.
//!
//! The paper's Figure 3 and §6 outlook ("the characterization of large and
//! diverse application workloads") aggregate over *many* profiled codes.
//! [`WorkloadStudy`] collects named profiles and answers the cross-code
//! questions: combined buffer-size distributions, the share of codes whose
//! topology fits a given interconnect class, and the switch-block demand of
//! running the whole workload on one HFAST machine.

use hfast_topology::{tdc, BufferHistogram, CommGraph};

use crate::profile::CommProfile;

/// Merges another profile of the *same world size* into `self`, summing
/// call statistics and traffic volumes (e.g. several runs of one code, or
/// one code's phases).
impl CommProfile {
    /// Merges `other` into `self`. Panics if the sizes differ.
    pub fn merge(&mut self, other: &CommProfile) {
        assert_eq!(
            self.size, other.size,
            "can only merge profiles of equal world size"
        );
        for entry in &other.entries {
            match self
                .entries
                .iter_mut()
                .find(|e| e.kind == entry.kind && e.bytes == entry.bytes)
            {
                Some(mine) => mine.stats.merge(&entry.stats),
                None => self.entries.push(*entry),
            }
        }
        self.entries.sort_by_key(|e| (e.kind, e.bytes));
        for (mine, theirs) in self.api_volume.iter_mut().zip(&other.api_volume) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.wire_volume.iter_mut().zip(&other.wire_volume) {
            mine.merge(theirs);
        }
        self.overflow += other.overflow;
    }
}

/// A collection of named application profiles analyzed as one workload.
#[derive(Debug, Clone, Default)]
pub struct WorkloadStudy {
    profiles: Vec<(String, CommProfile)>,
}

impl WorkloadStudy {
    /// An empty study.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named profile.
    pub fn add(&mut self, name: impl Into<String>, profile: CommProfile) {
        self.profiles.push((name.into(), profile));
    }

    /// Number of profiles collected.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True when no profiles were added.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profiles in insertion order.
    pub fn profiles(&self) -> impl Iterator<Item = (&str, &CommProfile)> {
        self.profiles.iter().map(|(n, p)| (n.as_str(), p))
    }

    /// Combined collective buffer-size histogram (Figure 3, all codes).
    pub fn collective_histogram(&self) -> BufferHistogram {
        let mut hist = BufferHistogram::new();
        for (_, p) in &self.profiles {
            hist.merge(&p.collective_buffer_histogram());
        }
        hist
    }

    /// Combined point-to-point buffer-size histogram.
    pub fn ptp_histogram(&self) -> BufferHistogram {
        let mut hist = BufferHistogram::new();
        for (_, p) in &self.profiles {
            hist.merge(&p.ptp_buffer_histogram());
        }
        hist
    }

    /// Fraction of codes whose thresholded max TDC is at most `bound` —
    /// "how much of the workload fits a degree-`bound` interconnect".
    pub fn fraction_bounded_by(&self, bound: usize, cutoff: u64) -> f64 {
        if self.profiles.is_empty() {
            return 0.0;
        }
        let fit = self
            .profiles
            .iter()
            .filter(|(_, p)| tdc(&p.comm_graph(), cutoff).max <= bound)
            .count();
        fit as f64 / self.profiles.len() as f64
    }

    /// Per-code communication graphs, for workload-wide provisioning
    /// studies (one machine, many jobs).
    pub fn graphs(&self) -> Vec<(&str, CommGraph)> {
        self.profiles
            .iter()
            .map(|(n, p)| (n.as_str(), p.comm_graph()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IpmProfiler;
    use hfast_mpi::{CommHook, Payload, ReduceOp, Tag, World, WorldConfig};
    use std::sync::Arc;

    fn sample(size: usize, bytes: usize, rounds: usize) -> CommProfile {
        let prof = Arc::new(IpmProfiler::new(size));
        World::run_with(
            WorldConfig::new(size).hook(prof.clone() as Arc<dyn CommHook>),
            |comm| {
                let right = (comm.rank() + 1) % comm.size();
                let left = (comm.rank() + comm.size() - 1) % comm.size();
                for _ in 0..rounds {
                    comm.send(right, Tag(1), Payload::synthetic(bytes)).unwrap();
                    comm.recv(left, Tag(1)).unwrap();
                }
                comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)
                    .unwrap();
            },
        )
        .unwrap();
        prof.profile()
    }

    #[test]
    fn merge_sums_counts_and_volumes() {
        let mut a = sample(4, 1000, 2);
        let b = sample(4, 1000, 3);
        let calls_a = a.total_calls();
        let calls_b = b.total_calls();
        let vol_a = a.comm_graph().total_bytes();
        a.merge(&b);
        assert_eq!(a.total_calls(), calls_a + calls_b);
        assert_eq!(a.comm_graph().total_bytes(), vol_a * 5 / 2);
    }

    #[test]
    fn merge_combines_distinct_buffer_sizes() {
        let mut a = sample(2, 100, 1);
        let b = sample(2, 9999, 1);
        a.merge(&b);
        let hist = a.ptp_buffer_histogram();
        assert!(hist.entries().any(|(s, _)| s == 100));
        assert!(hist.entries().any(|(s, _)| s == 9999));
    }

    #[test]
    #[should_panic(expected = "equal world size")]
    fn merge_size_mismatch_panics() {
        let mut a = sample(2, 100, 1);
        let b = sample(4, 100, 1);
        a.merge(&b);
    }

    #[test]
    fn study_aggregates_across_codes() {
        let mut study = WorkloadStudy::new();
        study.add("ring-small", sample(6, 512, 2));
        study.add("ring-large", sample(6, 100_000, 2));
        assert_eq!(study.len(), 2);
        let col = study.collective_histogram();
        assert_eq!(col.total(), 12, "one allreduce per rank per code");
        let ptp = study.ptp_histogram();
        assert!(ptp.total() > 0);
        // Both codes are rings (degree 2); the small ring's traffic is all
        // below the cutoff, so only it fits a degree-1 fabric at 2 KB.
        assert_eq!(study.fraction_bounded_by(1, 2048), 0.5);
        assert_eq!(study.fraction_bounded_by(2, 2048), 1.0);
        assert_eq!(
            study.fraction_bounded_by(1, 0),
            0.0,
            "uncut, both exceed degree 1"
        );
        assert_eq!(study.graphs().len(), 2);
    }

    #[test]
    fn empty_study() {
        let study = WorkloadStudy::new();
        assert!(study.is_empty());
        assert_eq!(study.fraction_bounded_by(10, 0), 0.0);
        assert!(study.collective_histogram().is_empty());
    }
}
