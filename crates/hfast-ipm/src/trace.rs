//! Plain-text persistence for communication profiles.
//!
//! A small line-oriented codec so profiles can be written to disk by a
//! profiling run and re-analyzed later (the workflow the paper used:
//! profile on the production machine, analyze offline). The format is
//! versioned, human-inspectable, and self-contained:
//!
//! ```text
//! hfast-ipm-profile v1
//! size 4
//! overflow 0
//! entry MPI_Isend 1024 12 93000 5000 11000
//! apivol 0 1 12288 12 1024
//! wirevol 0 1 12288 12 1024
//! end
//! ```

use hfast_mpi::CallKind;
use hfast_topology::EdgeStat;

use crate::hashtable::CallStats;
use crate::profile::{CommProfile, ProfileEntry, KINDS};

/// Errors from parsing a serialized profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Missing or wrong header line.
    BadHeader(String),
    /// A line failed to parse.
    BadLine {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The raw line content.
        content: String,
    },
    /// The final `end` marker was missing.
    Truncated,
    /// An unknown call-kind name.
    UnknownKind(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader(h) => write!(f, "bad profile header: {h:?}"),
            TraceError::BadLine { line_no, content } => {
                write!(f, "unparseable line {line_no}: {content:?}")
            }
            TraceError::Truncated => write!(f, "profile truncated (missing `end`)"),
            TraceError::UnknownKind(k) => write!(f, "unknown call kind {k:?}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn kind_from_name(name: &str) -> Option<CallKind> {
    KINDS.iter().copied().find(|k| k.mpi_name() == name)
}

/// Serializes a profile to the v1 text format.
pub fn to_text(profile: &CommProfile) -> String {
    let mut out = String::new();
    out.push_str("hfast-ipm-profile v1\n");
    out.push_str(&format!("size {}\n", profile.size));
    out.push_str(&format!("overflow {}\n", profile.overflow));
    for e in &profile.entries {
        out.push_str(&format!(
            "entry {} {} {} {} {} {}\n",
            e.kind.mpi_name(),
            e.bytes,
            e.stats.count,
            e.stats.total_ns,
            e.stats.min_ns,
            e.stats.max_ns
        ));
    }
    let n = profile.size;
    let dump = |label: &str, vol: &[EdgeStat], out: &mut String| {
        for (idx, stat) in vol.iter().enumerate() {
            if stat.is_active() {
                out.push_str(&format!(
                    "{label} {} {} {} {} {}\n",
                    idx / n,
                    idx % n,
                    stat.bytes,
                    stat.count,
                    stat.max_msg
                ));
            }
        }
    };
    dump("apivol", &profile.api_volume, &mut out);
    dump("wirevol", &profile.wire_volume, &mut out);
    out.push_str("end\n");
    out
}

/// Parses a profile from the v1 text format.
pub fn from_text(text: &str) -> Result<CommProfile, TraceError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| TraceError::BadHeader(String::new()))?;
    if header.trim() != "hfast-ipm-profile v1" {
        return Err(TraceError::BadHeader(header.to_string()));
    }

    let mut size: Option<usize> = None;
    let mut overflow = 0u64;
    let mut entries = Vec::new();
    let mut api: Option<Vec<EdgeStat>> = None;
    let mut wire: Option<Vec<EdgeStat>> = None;
    let mut ended = false;

    for (line_no, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let bad = || TraceError::BadLine {
            line_no: line_no + 1,
            content: raw.to_string(),
        };
        let mut parts = line.split_ascii_whitespace();
        match parts.next() {
            Some("size") => {
                if size.is_some() {
                    return Err(bad()); // a second header would drop volumes
                }
                let n: usize = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                api = Some(vec![EdgeStat::default(); n * n]);
                wire = Some(vec![EdgeStat::default(); n * n]);
                size = Some(n);
            }
            Some("overflow") => {
                overflow = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            }
            Some("entry") => {
                let name = parts.next().ok_or_else(bad)?;
                let kind = kind_from_name(name)
                    .ok_or_else(|| TraceError::UnknownKind(name.to_string()))?;
                let nums: Vec<u64> = parts
                    .map(|p| p.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad())?;
                if nums.len() != 5 {
                    return Err(bad());
                }
                entries.push(ProfileEntry {
                    kind,
                    bytes: nums[0],
                    stats: CallStats {
                        count: nums[1],
                        total_ns: nums[2],
                        min_ns: nums[3],
                        max_ns: nums[4],
                    },
                });
            }
            Some(label @ ("apivol" | "wirevol")) => {
                let n = size.ok_or_else(bad)?;
                let nums: Vec<u64> = parts
                    .map(|p| p.parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| bad())?;
                if nums.len() != 5 {
                    return Err(bad());
                }
                let (src, dst) = (nums[0] as usize, nums[1] as usize);
                if src >= n || dst >= n {
                    return Err(bad());
                }
                let stat = EdgeStat {
                    bytes: nums[2],
                    count: nums[3],
                    max_msg: nums[4],
                };
                let target = if label == "apivol" {
                    api.as_mut().expect("size parsed")
                } else {
                    wire.as_mut().expect("size parsed")
                };
                target[src * n + dst] = stat;
            }
            Some("end") => {
                ended = true;
                break;
            }
            _ => return Err(bad()),
        }
    }
    if !ended {
        return Err(TraceError::Truncated);
    }
    let size = size.ok_or(TraceError::Truncated)?;
    Ok(CommProfile {
        size,
        entries,
        api_volume: api.expect("size parsed"),
        wire_volume: wire.expect("size parsed"),
        overflow,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IpmProfiler;
    use hfast_mpi::{CommHook, Payload, ReduceOp, Tag, World, WorldConfig};
    use std::sync::Arc;

    fn sample_profile() -> CommProfile {
        let prof = Arc::new(IpmProfiler::new(3));
        World::run_with(
            WorldConfig::new(3).hook(prof.clone() as Arc<dyn CommHook>),
            |comm| {
                let right = (comm.rank() + 1) % 3;
                let left = (comm.rank() + 2) % 3;
                let req = comm.isend(right, Tag(1), Payload::synthetic(512)).unwrap();
                comm.recv(left, Tag(1)).unwrap();
                comm.wait(req).unwrap();
                comm.allreduce(Payload::synthetic(16), ReduceOp::Sum)
                    .unwrap();
            },
        )
        .unwrap();
        prof.profile()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let profile = sample_profile();
        let text = to_text(&profile);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed, profile);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(matches!(
            from_text("not a profile\nend\n"),
            Err(TraceError::BadHeader(_))
        ));
        assert!(matches!(from_text(""), Err(TraceError::BadHeader(_))));
    }

    #[test]
    fn truncated_rejected() {
        let profile = sample_profile();
        let text = to_text(&profile);
        let cut = &text[..text.len() - 4]; // drop "end\n"
        assert_eq!(from_text(cut), Err(TraceError::Truncated));
    }

    #[test]
    fn garbage_line_rejected() {
        let text = "hfast-ipm-profile v1\nsize 2\nwat 1 2 3\nend\n";
        assert!(matches!(from_text(text), Err(TraceError::BadLine { .. })));
    }

    #[test]
    fn unknown_kind_rejected() {
        let text = "hfast-ipm-profile v1\nsize 2\nentry MPI_Bogus 1 1 1 1 1\nend\n";
        assert_eq!(
            from_text(text),
            Err(TraceError::UnknownKind("MPI_Bogus".into()))
        );
    }

    #[test]
    fn duplicate_size_header_rejected() {
        let text = "hfast-ipm-profile v1\nsize 2\napivol 0 1 8 1 8\nsize 2\nend\n";
        assert!(matches!(from_text(text), Err(TraceError::BadLine { .. })));
    }

    #[test]
    fn out_of_range_volume_rejected() {
        let text = "hfast-ipm-profile v1\nsize 2\napivol 5 0 1 1 1\nend\n";
        assert!(matches!(from_text(text), Err(TraceError::BadLine { .. })));
    }

    #[test]
    fn format_is_human_readable() {
        let profile = sample_profile();
        let text = to_text(&profile);
        assert!(text.starts_with("hfast-ipm-profile v1\nsize 3\n"));
        assert!(text.contains("entry MPI_Allreduce 16"));
        assert!(text.trim_end().ends_with("end"));
    }
}
