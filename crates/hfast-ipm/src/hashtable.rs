//! Fixed-footprint open-addressing hash table for call statistics.
//!
//! IPM's design point (paper §3.1) is a *fixed memory footprint* profile: one
//! hash table entry per unique set of call arguments `(region, call, buffer
//! size, partner)`, updated in O(1) per call, never growing during the run.
//! This module reimplements that structure: linear-probe open addressing over
//! a power-of-two slot array, with an overflow counter instead of resizing so
//! the memory bound is hard.

/// Key identifying one unique call signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallKey {
    /// Region id (0 = the default region).
    pub region: u16,
    /// Call kind, as a small discriminant (see `profile::kind_index`).
    pub kind: u8,
    /// Partner rank, or `u32::MAX` when the call has no single partner.
    pub peer: u32,
    /// Buffer size argument in bytes.
    pub bytes: u64,
}

impl CallKey {
    #[inline]
    fn hash(&self) -> u64 {
        // Fibonacci-style multiplicative mix over the packed key words; fast
        // and adequate for these low-entropy keys (cf. FxHash).
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        let a = ((self.region as u64) << 48) | ((self.kind as u64) << 40) | self.peer as u64;
        let mut h = a.wrapping_mul(K);
        h ^= h >> 29;
        h = h.wrapping_add(self.bytes).wrapping_mul(K);
        h ^= h >> 32;
        h
    }
}

/// Accumulated statistics for one call signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallStats {
    /// Number of calls with this signature.
    pub count: u64,
    /// Sum of call durations in nanoseconds.
    pub total_ns: u64,
    /// Minimum call duration in nanoseconds.
    pub min_ns: u64,
    /// Maximum call duration in nanoseconds.
    pub max_ns: u64,
}

impl CallStats {
    /// Folds one observation into the statistics.
    #[inline]
    pub fn record(&mut self, elapsed_ns: u64) {
        if self.count == 0 {
            self.min_ns = elapsed_ns;
            self.max_ns = elapsed_ns;
        } else {
            self.min_ns = self.min_ns.min(elapsed_ns);
            self.max_ns = self.max_ns.max(elapsed_ns);
        }
        self.count += 1;
        self.total_ns += elapsed_ns;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &CallStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

#[derive(Debug, Clone)]
struct Slot {
    key: CallKey,
    stats: CallStats,
}

/// Fixed-capacity open-addressing table from [`CallKey`] to [`CallStats`].
#[derive(Debug, Clone)]
pub struct CallTable {
    slots: Vec<Option<Slot>>,
    mask: usize,
    len: usize,
    /// Calls dropped because the table was full (IPM reports rather than
    /// grows; a non-zero value flags an undersized profile).
    overflow: u64,
}

impl CallTable {
    /// IPM's default table size.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Creates a table with capacity rounded up to a power of two.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        CallTable {
            slots: vec![None; cap],
            mask: cap - 1,
            len: 0,
            overflow: 0,
        }
    }

    /// Number of distinct call signatures stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no signatures are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity (fixed for the lifetime of the table).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of observations dropped due to a full table.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Records one observation for `key`, creating its entry on first use.
    ///
    /// O(1) amortized; if the table is full and the key is new, the
    /// observation is counted in [`overflow`](Self::overflow) and dropped —
    /// the footprint never grows.
    pub fn record(&mut self, key: CallKey, elapsed_ns: u64) {
        let mut idx = (key.hash() as usize) & self.mask;
        for _ in 0..self.slots.len() {
            match &mut self.slots[idx] {
                Some(slot) if slot.key == key => {
                    slot.stats.record(elapsed_ns);
                    return;
                }
                Some(_) => idx = (idx + 1) & self.mask,
                empty @ None => {
                    let mut stats = CallStats::default();
                    stats.record(elapsed_ns);
                    *empty = Some(Slot { key, stats });
                    self.len += 1;
                    return;
                }
            }
        }
        self.overflow += 1;
    }

    /// Looks up the statistics for a key.
    pub fn get(&self, key: &CallKey) -> Option<&CallStats> {
        let mut idx = (key.hash() as usize) & self.mask;
        for _ in 0..self.slots.len() {
            match &self.slots[idx] {
                Some(slot) if slot.key == *key => return Some(&slot.stats),
                Some(_) => idx = (idx + 1) & self.mask,
                None => return None,
            }
        }
        None
    }

    /// Iterates over all stored (key, stats) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&CallKey, &CallStats)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|slot| (&slot.key, &slot.stats)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(kind: u8, peer: u32, bytes: u64) -> CallKey {
        CallKey {
            region: 0,
            kind,
            peer,
            bytes,
        }
    }

    #[test]
    fn record_and_get() {
        let mut t = CallTable::new(64);
        t.record(key(1, 2, 1024), 100);
        t.record(key(1, 2, 1024), 300);
        t.record(key(1, 3, 1024), 50);
        assert_eq!(t.len(), 2);
        let s = t.get(&key(1, 2, 1024)).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_ns, 400);
        assert_eq!(s.min_ns, 100);
        assert_eq!(s.max_ns, 300);
        assert!(t.get(&key(9, 9, 9)).is_none());
    }

    #[test]
    fn capacity_is_fixed_and_overflow_counted() {
        let mut t = CallTable::new(8);
        assert_eq!(t.capacity(), 8);
        for i in 0..8 {
            t.record(key(0, i, 0), 1);
        }
        assert_eq!(t.len(), 8);
        assert_eq!(t.overflow(), 0);
        // Ninth distinct key cannot fit.
        t.record(key(0, 100, 0), 1);
        assert_eq!(t.len(), 8);
        assert_eq!(t.overflow(), 1);
        // Existing keys still update fine.
        t.record(key(0, 3, 0), 7);
        assert_eq!(t.get(&key(0, 3, 0)).unwrap().count, 2);
    }

    #[test]
    fn iter_returns_everything() {
        let mut t = CallTable::new(32);
        for i in 0..10u32 {
            t.record(key(2, i, i as u64 * 8), u64::from(i));
        }
        let mut peers: Vec<u32> = t.iter().map(|(k, _)| k.peer).collect();
        peers.sort_unstable();
        assert_eq!(peers, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stats_merge() {
        let mut a = CallStats::default();
        a.record(10);
        a.record(30);
        let mut b = CallStats::default();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 30);
        assert_eq!(a.total_ns, 45);
        let empty = CallStats::default();
        a.merge(&empty);
        assert_eq!(a.count, 3);
        let mut c = CallStats::default();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn distinct_regions_are_distinct_keys() {
        let mut t = CallTable::new(16);
        let k0 = CallKey {
            region: 0,
            kind: 1,
            peer: 2,
            bytes: 64,
        };
        let k1 = CallKey { region: 1, ..k0 };
        t.record(k0, 1);
        t.record(k1, 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(&k0).unwrap().count, 1);
        assert_eq!(t.get(&k1).unwrap().count, 1);
    }
}
