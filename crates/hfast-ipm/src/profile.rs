//! The profiler hook and the merged communication profile.

use std::collections::BTreeMap;

use hfast_mpi::{CallKind, CommEvent, CommHook, Scope};
use hfast_topology::{BufferHistogram, CommGraph, EdgeStat};
use std::sync::Mutex;

use crate::hashtable::{CallKey, CallStats, CallTable};

/// Maps a [`CallKind`] to a stable small discriminant for hash keys.
pub(crate) fn kind_index(kind: CallKind) -> u8 {
    match kind {
        CallKind::Send => 0,
        CallKind::Recv => 1,
        CallKind::Isend => 2,
        CallKind::Irecv => 3,
        CallKind::Sendrecv => 4,
        CallKind::Wait => 5,
        CallKind::Waitall => 6,
        CallKind::Waitany => 7,
        CallKind::Test => 8,
        CallKind::Barrier => 9,
        CallKind::Bcast => 10,
        CallKind::Reduce => 11,
        CallKind::Allreduce => 12,
        CallKind::Gather => 13,
        CallKind::Allgather => 14,
        CallKind::Alltoall => 15,
        CallKind::Scatter => 16,
        CallKind::ReduceScatter => 17,
        CallKind::TransportSend => 18,
        CallKind::TransportRecv => 19,
        CallKind::Scan => 20,
        CallKind::Probe => 21,
        CallKind::Iprobe => 22,
    }
}

/// Inverse of [`kind_index`].
pub(crate) const KINDS: [CallKind; 23] = [
    CallKind::Send,
    CallKind::Recv,
    CallKind::Isend,
    CallKind::Irecv,
    CallKind::Sendrecv,
    CallKind::Wait,
    CallKind::Waitall,
    CallKind::Waitany,
    CallKind::Test,
    CallKind::Barrier,
    CallKind::Bcast,
    CallKind::Reduce,
    CallKind::Allreduce,
    CallKind::Gather,
    CallKind::Allgather,
    CallKind::Alltoall,
    CallKind::Scatter,
    CallKind::ReduceScatter,
    CallKind::TransportSend,
    CallKind::TransportRecv,
    CallKind::Scan,
    CallKind::Probe,
    CallKind::Iprobe,
];

/// Sentinel for "no single partner" in hash keys.
const NO_PEER: u32 = u32::MAX;

/// Per-rank profiling state.
struct RankState {
    table: CallTable,
    /// Region name → id (id 0 is the unnamed default region).
    region_names: Vec<String>,
    /// Stack of active region ids; the top is the current region.
    region_stack: Vec<u16>,
    /// Directed PTP volumes per region: `[region][peer]`.
    api_volume: Vec<Vec<EdgeStat>>,
    /// Directed *wire* volumes per region (PTP sends plus collective
    /// transport), for replaying actual flows in a network simulator.
    wire_volume: Vec<Vec<EdgeStat>>,
}

impl RankState {
    fn new(size: usize, capacity: usize) -> Self {
        RankState {
            table: CallTable::new(capacity),
            region_names: vec!["default".to_string()],
            region_stack: vec![0],
            api_volume: vec![vec![EdgeStat::default(); size]],
            wire_volume: vec![vec![EdgeStat::default(); size]],
        }
    }

    fn current_region(&self) -> u16 {
        *self
            .region_stack
            .last()
            .expect("default region always present")
    }

    fn region_id(&mut self, name: &str, size: usize) -> u16 {
        if let Some(idx) = self.region_names.iter().position(|n| n == name) {
            return idx as u16;
        }
        self.region_names.push(name.to_string());
        self.api_volume.push(vec![EdgeStat::default(); size]);
        self.wire_volume.push(vec![EdgeStat::default(); size]);
        (self.region_names.len() - 1) as u16
    }
}

/// The IPM-style profiler: install as the world's
/// [`CommHook`] and extract a [`CommProfile`] after the
/// run.
///
/// Fixed memory footprint per rank (one [`CallTable`] plus dense volume
/// rows); per-event cost is one uncontended mutex acquisition and an O(1)
/// hash-table update, mirroring IPM's "low overhead … fixed memory
/// footprint" design (paper §3.1).
pub struct IpmProfiler {
    size: usize,
    ranks: Vec<Mutex<RankState>>,
}

impl IpmProfiler {
    /// Profiler for a world of `size` ranks with the default table capacity.
    pub fn new(size: usize) -> Self {
        Self::with_capacity(size, CallTable::DEFAULT_CAPACITY)
    }

    /// Profiler with an explicit per-rank hash-table capacity.
    pub fn with_capacity(size: usize, capacity: usize) -> Self {
        IpmProfiler {
            size,
            ranks: (0..size)
                .map(|_| Mutex::new(RankState::new(size, capacity)))
                .collect(),
        }
    }

    /// World size this profiler was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Enters a named code region on `rank` (IPM's region feature, used in
    /// the paper to exclude SuperLU's initialization traffic). Regions nest.
    pub fn enter_region(&self, rank: usize, name: &str) {
        let mut st = self.ranks[rank].lock().expect("profiler mutex poisoned");
        let id = st.region_id(name, self.size);
        st.region_stack.push(id);
    }

    /// Exits the innermost named region on `rank`. Exiting the default
    /// region is a no-op.
    pub fn exit_region(&self, rank: usize) {
        let mut st = self.ranks[rank].lock().expect("profiler mutex poisoned");
        if st.region_stack.len() > 1 {
            st.region_stack.pop();
        }
    }

    /// Extracts the merged profile over all regions.
    pub fn profile(&self) -> CommProfile {
        self.extract(None)
    }

    /// Extracts the profile restricted to one named region — the mechanism
    /// behind the paper's "steady state" analysis.
    ///
    /// Returns an empty profile if no rank ever entered the region.
    pub fn region_profile(&self, name: &str) -> CommProfile {
        self.extract(Some(name))
    }

    fn extract(&self, region: Option<&str>) -> CommProfile {
        let mut entries: BTreeMap<(CallKind, u64), CallStats> = BTreeMap::new();
        let mut api = vec![EdgeStat::default(); self.size * self.size];
        let mut wire = vec![EdgeStat::default(); self.size * self.size];
        let mut overflow = 0;
        for (rank, state) in self.ranks.iter().enumerate() {
            let st = state.lock().expect("profiler mutex poisoned");
            let region_id: Option<u16> = match region {
                None => None,
                Some(name) => {
                    match st.region_names.iter().position(|n| n == name) {
                        Some(idx) => Some(idx as u16),
                        None => continue, // this rank never entered the region
                    }
                }
            };
            overflow += st.table.overflow();
            for (key, stats) in st.table.iter() {
                if let Some(rid) = region_id {
                    if key.region != rid {
                        continue;
                    }
                }
                let kind = KINDS[key.kind as usize];
                entries.entry((kind, key.bytes)).or_default().merge(stats);
            }
            for (rid, row) in st.api_volume.iter().enumerate() {
                if let Some(want) = region_id {
                    if rid as u16 != want {
                        continue;
                    }
                }
                for (peer, stat) in row.iter().enumerate() {
                    if stat.is_active() {
                        api[rank * self.size + peer].merge(stat);
                    }
                }
            }
            for (rid, row) in st.wire_volume.iter().enumerate() {
                if let Some(want) = region_id {
                    if rid as u16 != want {
                        continue;
                    }
                }
                for (peer, stat) in row.iter().enumerate() {
                    if stat.is_active() {
                        wire[rank * self.size + peer].merge(stat);
                    }
                }
            }
        }
        CommProfile {
            size: self.size,
            entries: entries
                .into_iter()
                .map(|((kind, bytes), stats)| ProfileEntry { kind, bytes, stats })
                .collect(),
            api_volume: api,
            wire_volume: wire,
            overflow,
        }
    }
}

impl CommHook for IpmProfiler {
    fn on_event(&self, ev: &CommEvent) {
        debug_assert!(ev.rank < self.size, "event from out-of-range rank");
        let mut st = self.ranks[ev.rank].lock().expect("profiler mutex poisoned");
        let region = st.current_region();
        let key = CallKey {
            region,
            kind: kind_index(ev.kind),
            peer: ev.peer.map_or(NO_PEER, |p| p as u32),
            bytes: ev.bytes as u64,
        };
        st.table.record(key, ev.elapsed_ns());
        if let Some(peer) = ev.peer {
            let outbound_ptp = ev.scope == Scope::Api && ev.kind.is_outbound();
            let outbound_wire = ev.kind == CallKind::TransportSend
                || (ev.scope == Scope::Api && ev.kind.is_outbound());
            let r = region as usize;
            if outbound_ptp {
                st.api_volume[r][peer].add_message(ev.bytes as u64);
            }
            if outbound_wire {
                st.wire_volume[r][peer].add_message(ev.bytes as u64);
            }
        }
    }
}

/// One aggregated call signature in a merged profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The API entry point.
    pub kind: CallKind,
    /// Buffer size argument in bytes.
    pub bytes: u64,
    /// Aggregated statistics across all ranks.
    pub stats: CallStats,
}

/// Merged communication profile of a run (or of one region of it).
#[derive(Debug, Clone, PartialEq)]
pub struct CommProfile {
    /// World size.
    pub size: usize,
    /// Aggregated (kind, buffer size) statistics.
    pub entries: Vec<ProfileEntry>,
    /// Directed point-to-point volumes, send-side, row-major `size×size`.
    pub api_volume: Vec<EdgeStat>,
    /// Directed wire volumes (PTP plus collective transport), row-major.
    pub wire_volume: Vec<EdgeStat>,
    /// Observations dropped by full hash tables (0 in a healthy profile).
    pub overflow: u64,
}

impl CommProfile {
    /// Call counts per kind, transport events excluded.
    pub fn call_counts(&self) -> BTreeMap<CallKind, u64> {
        let mut out = BTreeMap::new();
        for e in &self.entries {
            if !e.kind.is_transport() {
                *out.entry(e.kind).or_insert(0) += e.stats.count;
            }
        }
        out
    }

    /// Total API calls (transport excluded).
    pub fn total_calls(&self) -> u64 {
        self.call_counts().values().sum()
    }

    /// The Figure 2 data: percentage of calls per kind, descending.
    pub fn call_mix(&self) -> Vec<(CallKind, f64)> {
        let counts = self.call_counts();
        let total: u64 = counts.values().sum();
        if total == 0 {
            return vec![];
        }
        let mut mix: Vec<(CallKind, f64)> = counts
            .into_iter()
            .map(|(k, c)| (k, 100.0 * c as f64 / total as f64))
            .collect();
        mix.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("percentages are finite"));
        mix
    }

    /// Fraction of calls in the paper's point-to-point bucket (Table 3's
    /// "% PTP calls"), in `[0, 1]`.
    pub fn ptp_call_fraction(&self) -> f64 {
        let counts = self.call_counts();
        let total: u64 = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let ptp: u64 = counts
            .iter()
            .filter(|(k, _)| k.in_ptp_bucket())
            .map(|(_, c)| c)
            .sum();
        ptp as f64 / total as f64
    }

    /// Fraction of calls that are collectives (Table 3's "% Col. calls").
    pub fn collective_call_fraction(&self) -> f64 {
        let counts = self.call_counts();
        let total: u64 = counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        let col: u64 = counts
            .iter()
            .filter(|(k, _)| k.is_collective())
            .map(|(_, c)| c)
            .sum();
        col as f64 / total as f64
    }

    /// Buffer-size histogram over point-to-point *data* calls
    /// (sends/receives; completion calls carry no buffer) — Figure 4.
    pub fn ptp_buffer_histogram(&self) -> BufferHistogram {
        self.entries
            .iter()
            .filter(|e| e.kind.is_ptp_data())
            .map(|e| (e.bytes, e.stats.count))
            .collect()
    }

    /// Buffer-size histogram over collective calls — Figure 3.
    pub fn collective_buffer_histogram(&self) -> BufferHistogram {
        self.entries
            .iter()
            .filter(|e| e.kind.is_collective())
            .map(|e| (e.bytes, e.stats.count))
            .collect()
    }

    /// The undirected point-to-point communication graph (paper §4.4): the
    /// input to all TDC and HFAST provisioning analysis.
    pub fn comm_graph(&self) -> CommGraph {
        CommGraph::from_directed(self.size, self.directed(&self.api_volume))
    }

    /// The undirected *wire* graph including collective transport flows,
    /// for network simulation replay.
    pub fn wire_graph(&self) -> CommGraph {
        CommGraph::from_directed(self.size, self.directed(&self.wire_volume))
    }

    fn directed<'a>(
        &'a self,
        volume: &'a [EdgeStat],
    ) -> impl Iterator<Item = (usize, usize, EdgeStat)> + 'a {
        let n = self.size;
        volume.iter().enumerate().filter_map(move |(idx, stat)| {
            if stat.is_active() {
                Some((idx / n, idx % n, *stat))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_mpi::{Payload, ReduceOp, Tag, World, WorldConfig};
    use std::sync::Arc;

    fn run_profiled<F>(size: usize, f: F) -> (Arc<IpmProfiler>, CommProfile)
    where
        F: Fn(&mut hfast_mpi::Comm, &IpmProfiler) + Sync,
    {
        let prof = Arc::new(IpmProfiler::new(size));
        let hook = prof.clone();
        let p2 = prof.clone();
        World::run_with(WorldConfig::new(size).hook(hook), move |comm| {
            f(comm, &p2);
        })
        .unwrap();
        let profile = prof.profile();
        (prof, profile)
    }

    #[test]
    fn counts_send_recv_pairs() {
        let (_, profile) = run_profiled(2, |comm, _| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::synthetic(256)).unwrap();
            } else {
                comm.recv(0, Tag(1)).unwrap();
            }
        });
        let counts = profile.call_counts();
        assert_eq!(counts[&CallKind::Send], 1);
        assert_eq!(counts[&CallKind::Recv], 1);
        assert_eq!(profile.total_calls(), 2);
        assert_eq!(profile.overflow, 0);
    }

    #[test]
    fn volume_matrix_is_send_side() {
        let (_, profile) = run_profiled(3, |comm, _| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::synthetic(1000)).unwrap();
                comm.send(2, Tag(1), Payload::synthetic(500)).unwrap();
            } else {
                comm.recv(0, Tag(1)).unwrap();
            }
        });
        // Directed volume: only 0→1 and 0→2.
        assert_eq!(profile.api_volume[1].bytes, 1000);
        assert_eq!(profile.api_volume[2].bytes, 500);
        assert_eq!(profile.api_volume[3].bytes, 0);
        // Undirected graph symmetrizes.
        let g = profile.comm_graph();
        assert_eq!(g.edge(0, 1).bytes, 1000);
        assert_eq!(g.edge(1, 0).bytes, 1000);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn ptp_and_collective_fractions() {
        let (_, profile) = run_profiled(4, |comm, _| {
            // Per rank: 1 allreduce (collective) + 1 isend + 1 recv + 1 wait
            // (PTP bucket) → 25% collective, 75% PTP.
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let req = comm.isend(right, Tag(2), Payload::synthetic(64)).unwrap();
            comm.recv(left, Tag(2)).unwrap();
            comm.wait(req).unwrap();
            comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)
                .unwrap();
        });
        assert!((profile.ptp_call_fraction() - 0.75).abs() < 1e-12);
        assert!((profile.collective_call_fraction() - 0.25).abs() < 1e-12);
        let mix = profile.call_mix();
        let total: f64 = mix.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_split_ptp_and_collective() {
        let (_, profile) = run_profiled(2, |comm, _| {
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::synthetic(300_000)).unwrap();
            } else {
                comm.recv(0, Tag(1)).unwrap();
            }
            comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)
                .unwrap();
        });
        let ptp = profile.ptp_buffer_histogram();
        let col = profile.collective_buffer_histogram();
        assert_eq!(ptp.total(), 2); // one send + one recv
        assert_eq!(ptp.median(), Some(300_000));
        assert_eq!(col.total(), 2); // one allreduce per rank
        assert_eq!(col.median(), Some(8));
    }

    #[test]
    fn collective_transport_absent_from_ptp_graph_present_on_wire() {
        let (_, profile) = run_profiled(4, |comm, _| {
            comm.allreduce(Payload::synthetic(1024), ReduceOp::Sum)
                .unwrap();
        });
        let ptp = profile.comm_graph();
        assert_eq!(ptp.edge_count(), 0, "collectives are not PTP edges");
        let wire = profile.wire_graph();
        assert!(wire.edge_count() > 0, "transport flows appear on the wire");
    }

    #[test]
    fn regions_partition_the_profile() {
        let (prof, merged) = run_profiled(2, |comm, prof| {
            // Init phase: a large transfer, like SuperLU's matrix distribution.
            prof.enter_region(comm.rank(), "init");
            if comm.rank() == 0 {
                comm.send(1, Tag(1), Payload::synthetic(1 << 20)).unwrap();
            } else {
                comm.recv(0, Tag(1)).unwrap();
            }
            prof.exit_region(comm.rank());
            // Steady state: small exchanges.
            prof.enter_region(comm.rank(), "steady");
            for _ in 0..5 {
                if comm.rank() == 0 {
                    comm.send(1, Tag(2), Payload::synthetic(64)).unwrap();
                } else {
                    comm.recv(0, Tag(2)).unwrap();
                }
            }
            prof.exit_region(comm.rank());
        });
        assert_eq!(merged.total_calls(), 12);
        let steady = prof.region_profile("steady");
        assert_eq!(steady.total_calls(), 10);
        assert_eq!(steady.ptp_buffer_histogram().max(), Some(64));
        let init = prof.region_profile("init");
        assert_eq!(init.total_calls(), 2);
        assert_eq!(init.ptp_buffer_histogram().max(), Some(1 << 20));
        // Volumes are also region-scoped.
        assert_eq!(steady.comm_graph().edge(0, 1).bytes, 5 * 64);
        let missing = prof.region_profile("nonexistent");
        assert_eq!(missing.total_calls(), 0);
    }

    #[test]
    fn irecv_records_posted_size() {
        let (_, profile) = run_profiled(2, |comm, _| {
            if comm.rank() == 1 {
                let req = comm
                    .irecv(
                        hfast_mpi::SrcSel::Rank(0),
                        hfast_mpi::TagSel::Tag(Tag(3)),
                        4096,
                    )
                    .unwrap();
                comm.wait(req).unwrap();
            } else {
                comm.send(1, Tag(3), Payload::synthetic(4096)).unwrap();
            }
        });
        let irecv_entry = profile
            .entries
            .iter()
            .find(|e| e.kind == CallKind::Irecv)
            .unwrap();
        assert_eq!(irecv_entry.bytes, 4096);
    }
}
