//! # hfast-ipm — IPM-style communication profiling
//!
//! A reimplementation of the profiling methodology of the paper's §3.1: the
//! Integrated Performance Monitoring (IPM) layer, which interposes on the
//! MPI API boundary (the PMPI name-shifted interface) and accumulates call
//! statistics in a fixed-footprint hash table keyed on each call's unique
//! argument signature — call type, buffer size, partner — plus named code
//! regions so steady-state behaviour can be separated from initialization.
//!
//! [`IpmProfiler`] implements [`hfast_mpi::CommHook`]; install it on a
//! [`World`](hfast_mpi::World) and extract a [`CommProfile`] after the run:
//!
//! ```
//! use std::sync::Arc;
//! use hfast_ipm::IpmProfiler;
//! use hfast_mpi::{World, WorldConfig, Payload, Tag, CommHook};
//!
//! let profiler = Arc::new(IpmProfiler::new(2));
//! World::run_with(
//!     WorldConfig::new(2).hook(profiler.clone() as Arc<dyn CommHook>),
//!     |comm| {
//!         if comm.rank() == 0 {
//!             comm.send(1, Tag(1), Payload::synthetic(4096)).unwrap();
//!         } else {
//!             comm.recv(0, Tag(1)).unwrap();
//!         }
//!     },
//! )
//! .unwrap();
//! let profile = profiler.profile();
//! assert_eq!(profile.total_calls(), 2);
//! let graph = profile.comm_graph();
//! assert_eq!(graph.edge(0, 1).bytes, 4096);
//! ```

#![warn(missing_docs)]

pub mod hashtable;
pub mod profile;
pub mod report;
pub mod trace;
pub mod windows;
pub mod workload;

pub use hashtable::{CallKey, CallStats, CallTable};
pub use profile::{CommProfile, IpmProfiler, ProfileEntry};
pub use report::{format_bytes, render};
pub use trace::{from_text, to_text, TraceError};
pub use windows::WindowedTdcHook;
pub use workload::WorkloadStudy;
