//! Time-windowed TDC — the paper's §6 future work, implemented.
//!
//! "Producing a full chronological communication trace of most applications
//! would incur significant performance penalties; however, computing a
//! time-windowed TDC as the application progresses would not. By studying
//! the time dependence of communication topology one could expose
//! opportunities to reconfigure an HFAST switch as the application is
//! running."
//!
//! [`WindowedTdcHook`] bins outbound point-to-point traffic into fixed
//! wall-clock windows, keeping only a per-window volume row per rank (the
//! same fixed-footprint discipline as the main profiler), and exposes the
//! TDC time series plus per-window communication graphs.

use std::collections::BTreeMap;

use hfast_mpi::{CommEvent, CommHook, Scope};
use hfast_topology::tdc::TdcSummary;
use hfast_topology::{tdc, CommGraph, EdgeStat};
use std::sync::Mutex;

/// Per-rank windowed volumes: window index → directed per-peer stats.
type RankWindows = BTreeMap<u64, Vec<EdgeStat>>;

/// A [`CommHook`] that accumulates directed PTP volumes per time window.
pub struct WindowedTdcHook {
    size: usize,
    window_ns: u64,
    ranks: Vec<Mutex<RankWindows>>,
}

impl WindowedTdcHook {
    /// Windows of `window_ns` nanoseconds for a world of `size` ranks.
    pub fn new(size: usize, window_ns: u64) -> Self {
        assert!(window_ns > 0, "window must be positive");
        WindowedTdcHook {
            size,
            window_ns,
            ranks: (0..size).map(|_| Mutex::new(BTreeMap::new())).collect(),
        }
    }

    /// Window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Communication graphs per window, in window order.
    ///
    /// Missing windows (no traffic) are skipped; the returned index is the
    /// window number (start time = index × window length).
    pub fn graphs(&self) -> Vec<(u64, CommGraph)> {
        let mut merged: BTreeMap<u64, Vec<(usize, usize, EdgeStat)>> = BTreeMap::new();
        for (rank, state) in self.ranks.iter().enumerate() {
            let windows = state.lock().expect("profiler mutex poisoned");
            for (&w, row) in windows.iter() {
                let bucket = merged.entry(w).or_default();
                for (peer, stat) in row.iter().enumerate() {
                    if stat.is_active() {
                        bucket.push((rank, peer, *stat));
                    }
                }
            }
        }
        merged
            .into_iter()
            .map(|(w, directed)| (w, CommGraph::from_directed(self.size, directed)))
            .collect()
    }

    /// The TDC time series at a message-size cutoff: one summary per
    /// active window.
    pub fn tdc_series(&self, cutoff: u64) -> Vec<(u64, TdcSummary)> {
        self.graphs()
            .into_iter()
            .map(|(w, g)| (w, tdc(&g, cutoff)))
            .collect()
    }

    /// Windows whose topology differs from the previous window's —
    /// candidate reconfiguration points for the adaptive engine.
    pub fn phase_changes(&self, cutoff: u64) -> Vec<u64> {
        let graphs = self.graphs();
        let mut changes = vec![];
        let adjacency = |g: &CommGraph| -> Vec<Vec<usize>> {
            (0..g.n())
                .map(|v| g.neighbors_thresholded(v, cutoff).map(|(u, _)| u).collect())
                .collect()
        };
        for pair in graphs.windows(2) {
            if adjacency(&pair[0].1) != adjacency(&pair[1].1) {
                changes.push(pair[1].0);
            }
        }
        changes
    }
}

impl CommHook for WindowedTdcHook {
    fn on_event(&self, ev: &CommEvent) {
        if ev.scope != Scope::Api || !ev.kind.is_outbound() {
            return;
        }
        let Some(peer) = ev.peer else { return };
        debug_assert!(ev.rank < self.size);
        let window = ev.t_start_ns / self.window_ns;
        let mut state = self.ranks[ev.rank].lock().expect("profiler mutex poisoned");
        let row = state
            .entry(window)
            .or_insert_with(|| vec![EdgeStat::default(); self.size]);
        row[peer].add_message(ev.bytes as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_mpi::{CallKind, Payload, Tag};

    fn event(rank: usize, peer: usize, bytes: usize, t_ns: u64) -> CommEvent {
        CommEvent {
            rank,
            kind: CallKind::Isend,
            scope: Scope::Api,
            peer: Some(peer),
            bytes,
            tag: Some(Tag(1)),
            t_start_ns: t_ns,
            t_end_ns: t_ns + 10,
        }
    }

    #[test]
    fn events_land_in_their_windows() {
        let hook = WindowedTdcHook::new(4, 1000);
        hook.on_event(&event(0, 1, 4096, 100));
        hook.on_event(&event(0, 2, 4096, 2500));
        let graphs = hook.graphs();
        assert_eq!(graphs.len(), 2);
        assert_eq!(graphs[0].0, 0);
        assert_eq!(graphs[1].0, 2);
        assert_eq!(graphs[0].1.degree(0), 1);
        assert_eq!(graphs[1].1.edge(0, 2).bytes, 4096);
    }

    #[test]
    fn non_ptp_events_ignored() {
        let hook = WindowedTdcHook::new(2, 1000);
        let mut ev = event(0, 1, 64, 0);
        ev.kind = CallKind::Bcast;
        hook.on_event(&ev);
        let mut ev = event(0, 1, 64, 0);
        ev.scope = Scope::Transport;
        ev.kind = CallKind::TransportSend;
        hook.on_event(&ev);
        let mut ev = event(0, 1, 64, 0);
        ev.kind = CallKind::Irecv; // inbound: counted on the sender side only
        hook.on_event(&ev);
        assert!(hook.graphs().is_empty());
    }

    #[test]
    fn tdc_series_tracks_phases() {
        let hook = WindowedTdcHook::new(6, 1000);
        // Phase 1 (window 0): ring.
        for r in 0..6usize {
            hook.on_event(&event(r, (r + 1) % 6, 8192, 10));
        }
        // Phase 2 (window 3): star on rank 0.
        for r in 1..6usize {
            hook.on_event(&event(0, r, 8192, 3100));
        }
        let series = hook.tdc_series(2048);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.max, 2, "ring phase");
        assert_eq!(series[1].1.max, 5, "star phase");
        let changes = hook.phase_changes(2048);
        assert_eq!(changes, vec![3], "topology changed entering window 3");
    }

    #[test]
    fn stable_topology_has_no_phase_changes() {
        let hook = WindowedTdcHook::new(4, 100);
        for w in 0..5u64 {
            for r in 0..4usize {
                hook.on_event(&event(r, (r + 1) % 4, 4096, w * 100 + 5));
            }
        }
        assert!(hook.phase_changes(0).is_empty());
    }

    #[test]
    fn live_run_produces_series() {
        use hfast_mpi::{World, WorldConfig};
        use std::sync::Arc;
        let hook = Arc::new(WindowedTdcHook::new(8, 1_000_000));
        World::run_with(
            WorldConfig::new(8).hook(hook.clone() as Arc<dyn CommHook>),
            |comm| {
                let right = (comm.rank() + 1) % comm.size();
                for _ in 0..3 {
                    comm.send(right, Tag(1), Payload::synthetic(8192)).unwrap();
                    comm.recv((comm.rank() + comm.size() - 1) % comm.size(), Tag(1))
                        .unwrap();
                }
            },
        )
        .unwrap();
        let series = hook.tdc_series(2048);
        assert!(!series.is_empty());
        assert!(series.iter().all(|(_, s)| s.max <= 2));
    }
}
