//! Human-readable profile reports, in the spirit of IPM's banner output.

use hfast_topology::tdc::{tdc, BDP_CUTOFF};

use crate::profile::CommProfile;

/// Renders a textual summary of a profile: call mix, buffer-size medians,
/// and topology metrics — the quantities Table 3 of the paper reports.
pub fn render(name: &str, profile: &CommProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## IPM profile: {name} (P = {})\n\n",
        profile.size
    ));
    if profile.overflow > 0 {
        out.push_str(&format!(
            "!! hash-table overflow: {} dropped observations\n\n",
            profile.overflow
        ));
    }

    out.push_str("call mix (% of calls):\n");
    for (kind, pct) in profile.call_mix() {
        out.push_str(&format!("  {:<20} {:>6.1}%\n", kind.mpi_name(), pct));
    }

    let ptp = profile.ptp_buffer_histogram();
    let col = profile.collective_buffer_histogram();
    out.push_str(&format!(
        "\nPTP calls: {:.1}%  median buffer: {}\n",
        100.0 * profile.ptp_call_fraction(),
        ptp.median().map_or("-".to_string(), format_bytes)
    ));
    out.push_str(&format!(
        "collective calls: {:.1}%  median buffer: {}\n",
        100.0 * profile.collective_call_fraction(),
        col.median().map_or("-".to_string(), format_bytes)
    ));

    let graph = profile.comm_graph();
    if graph.n() > 0 {
        let uncut = tdc(&graph, 0);
        let cut = tdc(&graph, BDP_CUTOFF);
        out.push_str(&format!(
            "\nTDC unthresholded: max {} avg {:.1}\n",
            uncut.max, uncut.avg
        ));
        out.push_str(&format!(
            "TDC @ {} cutoff: max {} avg {:.1}\n",
            format_bytes(BDP_CUTOFF),
            cut.max,
            cut.avg
        ));
        out.push_str(&format!(
            "FCN utilization (avg): {:.0}%\n",
            100.0 * hfast_topology::fcn_utilization(&graph, BDP_CUTOFF)
        ));
    }
    out
}

/// Formats a byte count with binary units, the way the paper labels axes
/// (64, 2k, 128k, 1MB …).
pub fn format_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        let mb = bytes as f64 / (1 << 20) as f64;
        if (mb - mb.round()).abs() < 1e-9 {
            format!("{}MB", mb.round() as u64)
        } else {
            format!("{mb:.1}MB")
        }
    } else if bytes >= 1 << 10 {
        let kb = bytes as f64 / 1024.0;
        if (kb - kb.round()).abs() < 1e-9 {
            format!("{}k", kb.round() as u64)
        } else {
            format!("{kb:.1}k")
        }
    } else {
        format!("{bytes}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IpmProfiler;
    use hfast_mpi::{CommHook, Payload, Tag, World, WorldConfig};
    use std::sync::Arc;

    #[test]
    fn format_bytes_matches_paper_axis_labels() {
        assert_eq!(format_bytes(0), "0");
        assert_eq!(format_bytes(64), "64");
        assert_eq!(format_bytes(1023), "1023");
        assert_eq!(format_bytes(2048), "2k");
        assert_eq!(format_bytes(128 << 10), "128k");
        assert_eq!(format_bytes(1 << 20), "1MB");
        assert_eq!(format_bytes(3 << 19), "1.5MB");
    }

    #[test]
    fn report_contains_key_sections() {
        let prof = Arc::new(IpmProfiler::new(2));
        World::run_with(
            WorldConfig::new(2).hook(prof.clone() as Arc<dyn CommHook>),
            |comm| {
                if comm.rank() == 0 {
                    comm.send(1, Tag(1), Payload::synthetic(2048)).unwrap();
                } else {
                    comm.recv(0, Tag(1)).unwrap();
                }
            },
        )
        .unwrap();
        let text = render("smoke", &prof.profile());
        assert!(text.contains("IPM profile: smoke (P = 2)"));
        assert!(text.contains("MPI_Send"));
        assert!(text.contains("TDC @ 2k cutoff: max 1"));
        assert!(!text.contains("overflow"), "healthy profile has no warning");
    }

    #[test]
    fn empty_profile_renders() {
        let prof = IpmProfiler::new(4);
        let text = render("empty", &prof.profile());
        assert!(text.contains("P = 4"));
    }
}
