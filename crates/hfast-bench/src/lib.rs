//! # hfast-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see DESIGN.md's experiment
//! index), plus Criterion micro-benchmarks of the library itself. Each
//! binary prints the measured reproduction next to the paper's published
//! values where the paper gives numbers.
//!
//! Run the full reproduction with:
//!
//! ```text
//! cargo run --release -p hfast-bench --bin experiments
//! ```

#![warn(missing_docs)]

pub mod figures;
pub mod measure;
pub mod paper;
pub mod render;

pub use measure::{measure_app, AppRow};
pub use paper::PAPER_TABLE3;
