//! # hfast-bench — the experiment harness
//!
//! One binary per table and figure of the paper (see DESIGN.md's experiment
//! index), plus micro-benchmarks of the library itself (a dependency-free
//! harness, see [`harness`]). Each binary prints the measured reproduction
//! next to the paper's published values where the paper gives numbers.
//!
//! Run the full reproduction with:
//!
//! ```text
//! cargo run --release -p hfast-bench --bin experiments
//! ```

#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod loadgen;
pub mod measure;
pub mod paper;
pub mod render;
pub mod soak;

pub use harness::Harness;
pub use loadgen::{LoadConfig, LoadReport};
pub use measure::{measure_app, measure_cells, AppRow};
pub use paper::PAPER_TABLE3;
pub use soak::{run_soak, SoakConfig, SoakReport};
