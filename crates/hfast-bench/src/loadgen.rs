//! Closed-loop load generator for the `hfast-serve` daemon.
//!
//! Each connection is one thread running the classic closed loop: send a
//! request, block for the response, repeat. The request stream is a
//! seeded [`Rng64`] mix over a fixed pool built from the six paper
//! applications (provision, cost, TDC sweep, and traffic replay per
//! app), so a `(seed, connections, requests)` triple names one exact
//! workload — and because the daemon's responses are deterministic, the
//! FNV digest folded over every response byte must come out identical no
//! matter how many workers served it.

use std::time::Instant;

use hfast_obs::Histogram;
use hfast_par::rng::Rng64;
use hfast_serve::{AppSpec, Client, ClientError, FabricSpec, FleetClient, Request, Response};

/// The six paper applications (Table 2 names).
pub const PAPER_APPS: [&str; 6] = ["Cactus", "LBMHD", "GTC", "SuperLU", "PMEMD", "PARATEC"];

/// Load shape: how many connections, how much work, which seed.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Timed requests per connection.
    pub requests_per_connection: usize,
    /// Mix seed (same seed, same per-connection request stream).
    pub seed: u64,
    /// Ranks to profile each paper app at (pool dimension).
    pub procs: usize,
    /// Send the whole pool once, untimed, before the measured phase —
    /// prices profiling and fabric construction out of the latencies.
    pub warmup: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            requests_per_connection: 50,
            seed: 0x10AD_5EED,
            procs: 8,
            warmup: true,
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Timed requests sent (all connections).
    pub sent: usize,
    /// Well-formed, non-error responses.
    pub ok: usize,
    /// [`Response::Busy`] load-shed answers.
    pub busy: usize,
    /// Structured [`Response::Error`] answers.
    pub errors: usize,
    /// Requests with no usable response (transport drop, decode failure).
    pub dropped: usize,
    /// FNV-1a digest over every response's exact bytes, folded per
    /// connection then combined in connection order — scheduling-
    /// independent, worker-count-independent.
    pub digest: u64,
    /// Wall time of the measured phase, nanoseconds.
    pub elapsed_ns: u64,
    /// Completed responses per wall-clock second.
    pub throughput_rps: f64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile request latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The deterministic request pool the mix draws from: provision, cost,
/// TDC, and simulate for each paper app at `procs` ranks. Small on
/// purpose — a sustained mix revisits it, which is what exercises (and
/// proves out) the daemon's response cache.
pub fn request_pool(procs: usize) -> Vec<Request> {
    let mut pool = Vec::new();
    for name in PAPER_APPS {
        let app = AppSpec::Named {
            name: name.to_string(),
            procs,
        };
        pool.push(Request::Provision {
            app: app.clone(),
            block_ports: 16,
            cutoff: 2048,
            strategy: None,
        });
        pool.push(Request::Cost {
            app: app.clone(),
            block_ports: 16,
            cutoff: 2048,
        });
        pool.push(Request::Tdc {
            app: app.clone(),
            cutoffs: vec![0, 2048, 64 << 10],
        });
        pool.push(Request::Simulate {
            app,
            fabric: FabricSpec::FatTree { ports: 16 },
            cutoff: 2048,
            faults: None,
            strategy: None,
        });
    }
    pool
}

struct ConnOutcome {
    digest: u64,
    ok: usize,
    busy: usize,
    errors: usize,
    dropped: usize,
}

/// Where the load goes: one daemon, or a sharded fleet addressed
/// client-side (same `call_text` surface either way).
enum Target<'a> {
    Single(&'a str),
    Fleet(&'a [String]),
}

enum Conn {
    Single(Client),
    Fleet(Box<FleetClient>),
}

impl Target<'_> {
    fn connect(&self) -> Result<Conn, ClientError> {
        match self {
            Target::Single(addr) => Ok(Conn::Single(Client::connect(addr)?)),
            Target::Fleet(addrs) => Ok(Conn::Fleet(Box::new(FleetClient::connect(addrs)))),
        }
    }
}

impl Conn {
    fn call_text(&mut self, req: &Request) -> Result<(Response, String), ClientError> {
        match self {
            Conn::Single(c) => c.call_text(req),
            Conn::Fleet(c) => c.call_text(req),
        }
    }
}

fn run_connection(
    target: &Target<'_>,
    pool: &[Request],
    requests: usize,
    mut rng: Rng64,
    hist: &Histogram,
) -> ConnOutcome {
    let mut out = ConnOutcome {
        digest: FNV_OFFSET,
        ok: 0,
        busy: 0,
        errors: 0,
        dropped: 0,
    };
    let Ok(mut client) = target.connect() else {
        out.dropped = requests;
        return out;
    };
    for _ in 0..requests {
        let req = &pool[rng.range(0, pool.len())];
        let t = Instant::now();
        match client.call_text(req) {
            Ok((resp, raw)) => {
                hist.record(t.elapsed().as_nanos() as u64);
                out.digest = fnv_fold(out.digest, raw.as_bytes());
                match resp {
                    Response::Busy => out.busy += 1,
                    Response::Error { .. } => out.errors += 1,
                    _ => out.ok += 1,
                }
            }
            Err(_) => {
                // The stream is broken; everything else this connection
                // would have sent is lost too.
                out.dropped += requests - (out.ok + out.busy + out.errors + out.dropped);
                break;
            }
        }
    }
    out
}

fn run_target(target: &Target<'_>, config: &LoadConfig) -> LoadReport {
    let pool = request_pool(config.procs);
    if config.warmup {
        if let Ok(mut warm) = target.connect() {
            for req in &pool {
                let _ = warm.call_text(req);
            }
        }
    }
    let hist = Histogram::new();
    let started = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.connections)
            .map(|conn| {
                let rng = Rng64::new(
                    config
                        .seed
                        .wrapping_add((conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                let (pool, hist) = (&pool, &hist);
                s.spawn(move || {
                    run_connection(target, pool, config.requests_per_connection, rng, hist)
                })
            })
            .collect();
        // Join in spawn order: the combined digest must not depend on
        // which connection finished first.
        handles
            .into_iter()
            .map(|h| h.join().expect("connection thread panicked"))
            .collect()
    });
    let elapsed_ns = started.elapsed().as_nanos().max(1) as u64;
    let mut digest = FNV_OFFSET;
    let (mut ok, mut busy, mut errors, mut dropped) = (0, 0, 0, 0);
    for o in &outcomes {
        digest = fnv_fold(digest, &o.digest.to_be_bytes());
        ok += o.ok;
        busy += o.busy;
        errors += o.errors;
        dropped += o.dropped;
    }
    let answered = (ok + busy + errors) as f64;
    LoadReport {
        sent: config.connections * config.requests_per_connection,
        ok,
        busy,
        errors,
        dropped,
        digest,
        elapsed_ns,
        throughput_rps: answered / (elapsed_ns as f64 / 1e9),
        p50_ns: hist.quantile(0.50),
        p95_ns: hist.quantile(0.95),
        p99_ns: hist.quantile(0.99),
    }
}

/// Drives `addr` with the configured closed-loop load and reports.
pub fn run(addr: &str, config: &LoadConfig) -> LoadReport {
    run_target(&Target::Single(addr), config)
}

/// Drives a fleet of shards through client-side consistent-hash routing
/// ([`FleetClient`]) with the same closed-loop load. Because every pool
/// request is cacheable (pure), the digest must equal a single-node
/// [`run`] with the same config, whatever the shard count.
pub fn run_fleet(shard_addrs: &[String], config: &LoadConfig) -> LoadReport {
    run_target(&Target::Fleet(shard_addrs), config)
}

impl LoadReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "sent        {:>10}\n\
             ok          {:>10}\n\
             busy        {:>10}\n\
             errors      {:>10}\n\
             dropped     {:>10}\n\
             digest      {:>#18x}\n\
             elapsed     {:>10.1} ms\n\
             throughput  {:>10.1} req/s\n\
             p50         {:>10.3} ms\n\
             p95         {:>10.3} ms\n\
             p99         {:>10.3} ms",
            self.sent,
            self.ok,
            self.busy,
            self.errors,
            self.dropped,
            self.digest,
            self.elapsed_ns as f64 / 1e6,
            self.throughput_rps,
            self.p50_ns as f64 / 1e6,
            self.p95_ns as f64 / 1e6,
            self.p99_ns as f64 / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_covers_every_app_and_endpoint() {
        let pool = request_pool(8);
        assert_eq!(pool.len(), PAPER_APPS.len() * 4);
        assert!(pool.iter().all(Request::cacheable));
    }

    #[test]
    fn fnv_fold_distinguishes_order() {
        let a = fnv_fold(fnv_fold(FNV_OFFSET, b"one"), b"two");
        let b = fnv_fold(fnv_fold(FNV_OFFSET, b"two"), b"one");
        assert_ne!(a, b);
    }
}
