//! The shared routine behind the `fig5`…`fig10` binaries: volume matrix
//! plus TDC-versus-cutoff curves for one application.

use hfast_apps::CommKernel;
use hfast_topology::{render_ascii, tdc, BDP_CUTOFF};

use crate::measure::measure_app;
use crate::render::tdc_sweep_table;

/// Reproduces one of the paper's per-application figures (5-10): panel (a)
/// is the P=256 message-volume matrix, panel (b) the TDC-vs-cutoff curves
/// for P = 64 and 256. Returns the rendered text.
pub fn app_figure(app: &dyn CommKernel, figure_no: usize) -> String {
    let mut out = format!(
        "== Figure {figure_no}: {} communication topology ==\n\n",
        app.name()
    );
    // The two panel sizes are independent profile runs — measure them on
    // worker threads (results come back in input order, so the rendered
    // figure is identical to the sequential run).
    let mut rows = hfast_par::par_map(vec![64usize, 256], |procs| measure_app(app, procs));
    let row256 = rows.pop().expect("two rows");
    let row64 = rows.pop().expect("two rows");

    out.push_str("(a) volume of communication at P=256 (log-scaled density):\n");
    let graph256 = row256.steady.comm_graph();
    out.push_str(&render_ascii(&graph256, 4));
    out.push('\n');

    out.push_str("(b) effect of thresholding on TDC:\n");
    let graph64 = row64.steady.comm_graph();
    out.push_str(&tdc_sweep_table(&graph64, &format!("{} P=64", app.name())));
    out.push('\n');
    out.push_str(&tdc_sweep_table(
        &graph256,
        &format!("{} P=256", app.name()),
    ));

    let cut64 = tdc(&graph64, BDP_CUTOFF);
    let cut256 = tdc(&graph256, BDP_CUTOFF);
    out.push_str(&format!(
        "\nTDC @ 2KB cutoff: P=64 (max {}, avg {:.1}); P=256 (max {}, avg {:.1})\n",
        cut64.max, cut64.avg, cut256.max, cut256.avg
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_apps::Cactus;

    #[test]
    fn figure_text_has_both_panels() {
        let text = app_figure(&Cactus::new(2), 6);
        assert!(text.contains("Figure 6"));
        assert!(text.contains("(a) volume"));
        assert!(text.contains("(b) effect of thresholding"));
        assert!(text.contains("P=64"));
        assert!(text.contains("P=256"));
    }
}
