//! A small, dependency-free benchmark harness behind the `cargo bench`
//! targets (`harness = false`).
//!
//! Each case is auto-calibrated (a warm-up run sizes the per-sample
//! iteration count to a fixed wall-time budget), sampled repeatedly, and
//! summarized by its median ns/iteration — robust to scheduler noise.
//!
//! Environment knobs:
//!
//! - `HFAST_BENCH_JSON=<path>` — append one JSON object per case (JSON
//!   Lines) to `<path>`; `scripts/bench.sh` assembles these into
//!   `BENCH_<tag>.json`.
//! - `HFAST_BENCH_FAST=1` — shrink sample count and budget for smoke runs.
//! - `HFAST_BENCH_SAMPLES=<n>` — override the per-case sample count.
//!
//! Positional command-line arguments act as substring filters on case
//! names (so `cargo bench --bench topology -- sweep` runs only the sweep
//! cases); flag-like arguments cargo forwards are ignored.

use std::io::Write as _;
use std::time::Instant;

use hfast_obs::ToJsonl;

/// One measured case.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Suite binary this case belongs to.
    pub suite: String,
    /// Case name (`group/case` by convention).
    pub name: String,
    /// Median over samples of ns per iteration.
    pub median_ns: f64,
    /// Mean over samples of ns per iteration.
    pub mean_ns: f64,
    /// Fastest sample's ns per iteration.
    pub min_ns: f64,
    /// Iterations per sample (calibrated).
    pub iters: u64,
    /// Number of samples taken.
    pub samples: usize,
}

impl ToJsonl for BenchResult {
    fn to_jsonl(&self) -> String {
        hfast_obs::JsonObj::new()
            .str("suite", &self.suite)
            .str("name", &self.name)
            .f64_p("median_ns", self.median_ns, 1)
            .f64_p("mean_ns", self.mean_ns, 1)
            .f64_p("min_ns", self.min_ns, 1)
            .u64("iters", self.iters)
            .usize("samples", self.samples)
            .finish()
    }
}

/// Collects and reports benchmark cases for one suite binary.
pub struct Harness {
    suite: String,
    filters: Vec<String>,
    samples: usize,
    sample_budget_ns: u64,
    results: Vec<BenchResult>,
}

impl Harness {
    /// A harness for the suite named `suite`, configured from the
    /// environment and command line.
    pub fn new(suite: &str) -> Self {
        let fast = std::env::var("HFAST_BENCH_FAST").is_ok_and(|v| v != "0");
        let samples = std::env::var("HFAST_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(if fast { 5 } else { 12 })
            .max(2);
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        eprintln!("== bench suite: {suite} ==");
        Harness {
            suite: suite.to_string(),
            filters,
            samples,
            sample_budget_ns: if fast { 10_000_000 } else { 50_000_000 },
            results: Vec::new(),
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Times `f`, recording the case under `name`. The closure's return
    /// value is passed through [`std::hint::black_box`] so the work cannot
    /// be optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        // Warm-up & calibration: size one sample to the wall-time budget.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (self.sample_budget_ns / once_ns).clamp(1, 1_000_000);
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let result = BenchResult {
            suite: self.suite.clone(),
            name: name.to_string(),
            median_ns: median,
            mean_ns: mean,
            min_ns: per_iter[0],
            iters,
            samples: per_iter.len(),
        };
        eprintln!(
            "{:<44} median {:>12}  mean {:>12}  ({} x {} iters)",
            result.name,
            fmt_ns(result.median_ns),
            fmt_ns(result.mean_ns),
            result.samples,
            result.iters,
        );
        self.results.push(result);
    }

    /// Median ns/iter of an already-run case (for speedup reporting).
    pub fn median_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.median_ns)
    }

    /// Fastest sample's ns/iter of an already-run case. The minimum
    /// approximates the unthrottled cost of the work, so it is the right
    /// statistic for cross-session comparisons exposed to frequency and
    /// load drift (overhead guards against recorded baselines).
    pub fn min_ns(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.min_ns)
    }

    /// Records a computed value (a ratio, a guard metric) as a pseudo-case
    /// so `BENCH_*.json` carries it alongside the timings.
    pub fn record_value(&mut self, name: &str, value: f64) {
        eprintln!("{name:<44} value {value:>13.4}");
        self.results.push(BenchResult {
            suite: self.suite.clone(),
            name: name.to_string(),
            median_ns: value,
            mean_ns: value,
            min_ns: value,
            iters: 0,
            samples: 0,
        });
    }

    /// Prints `baseline/candidate` as a speedup line (and records it in the
    /// JSON stream as a pseudo-case so `BENCH_*.json` carries the ratio).
    pub fn report_speedup(&mut self, label: &str, baseline: &str, candidate: &str) {
        if let (Some(b), Some(c)) = (self.median_ns(baseline), self.median_ns(candidate)) {
            let speedup = b / c;
            eprintln!("{label:<44} speedup {speedup:>11.2}x  ({baseline} vs {candidate})");
            self.results.push(BenchResult {
                suite: self.suite.clone(),
                name: format!("speedup/{label}"),
                median_ns: speedup,
                mean_ns: speedup,
                min_ns: speedup,
                iters: 0,
                samples: 0,
            });
        }
    }

    /// Flushes results: appends JSON Lines to `HFAST_BENCH_JSON` if set.
    /// Rows serialize through the same [`ToJsonl`] path as the
    /// observability exports.
    pub fn finish(self) {
        let Ok(path) = std::env::var("HFAST_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(out.as_bytes()) {
                    eprintln!("bench: cannot write {path}: {e}");
                }
            }
            Err(e) => eprintln!("bench: cannot open {path}: {e}"),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        // Not spawned via cargo bench here, so argv filters may apply; use
        // a fresh harness with filters cleared to keep the test hermetic.
        let mut h = Harness {
            suite: "selftest".into(),
            filters: vec![],
            samples: 3,
            sample_budget_ns: 100_000,
            results: vec![],
        };
        h.bench("warm/a", || std::hint::black_box(41) + 1);
        h.bench("warm/b", || (0..100u64).sum::<u64>());
        assert!(h.median_ns("warm/a").is_some());
        h.report_speedup("a_vs_b", "warm/b", "warm/a");
        assert_eq!(h.results.len(), 3);
        assert!(h.results[2].name.starts_with("speedup/"));
    }

    #[test]
    fn filters_select_by_substring() {
        let h = Harness {
            suite: "selftest".into(),
            filters: vec!["sweep".into()],
            samples: 2,
            sample_budget_ns: 1,
            results: vec![],
        };
        assert!(h.selected("tdc_sweep/fast"));
        assert!(!h.selected("csr_build"));
    }

    #[test]
    fn jsonl_row_format_is_stable() {
        let r = BenchResult {
            suite: "s".into(),
            name: "g/c".into(),
            median_ns: 1.26,
            mean_ns: 2.0,
            min_ns: 0.5,
            iters: 3,
            samples: 4,
        };
        assert_eq!(
            r.to_jsonl(),
            r#"{"suite":"s","name":"g/c","median_ns":1.3,"mean_ns":2.0,"min_ns":0.5,"iters":3,"samples":4}"#
        );
    }

    #[test]
    fn record_value_is_a_pseudo_case() {
        let mut h = Harness {
            suite: "selftest".into(),
            filters: vec![],
            samples: 2,
            sample_budget_ns: 1,
            results: vec![],
        };
        h.record_value("guard/ratio", 1.02);
        assert_eq!(h.median_ns("guard/ratio"), Some(1.02));
        assert_eq!(h.results[0].samples, 0);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3e9), "3.000 s");
    }
}
