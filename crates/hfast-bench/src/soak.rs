//! Soak monitor: sustained mixed-verb load with live SLO assertions.
//!
//! A smoke test proves a server answers; a soak proves it *keeps*
//! answering. [`run_soak`] drives the deterministic loadgen mix at a
//! target for a wall-clock budget while a monitor thread polls the
//! `metrics` verb on its own connection, asserting service-level
//! objectives as the run unfolds:
//!
//! - **zero digest divergence** — every response must byte-match the
//!   warmup pass (the pool is pure, so any drift is a serving bug);
//! - **p99 ceiling** — the rolling per-verb p99 the daemon reports must
//!   stay under the configured bound on every poll;
//! - **liveness** — the monitor must land at least one poll and the
//!   loaders must keep serving.
//!
//! Every poll appends one JSON line (elapsed ms + the raw canonical
//! `metrics` response) to the report's timeline, so a soak leaves an
//! auditable telemetry record, not just a pass/fail bit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use hfast_obs::JsonObj;
use hfast_par::rng::Rng64;
use hfast_serve::{Client, Request, Response};

use crate::loadgen::request_pool;

/// Soak shape: how long, how hard, and what to demand.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Wall-clock budget for the loaded phase.
    pub duration: Duration,
    /// How often the monitor polls the `metrics` verb.
    pub poll_interval: Duration,
    /// Concurrent closed-loop loader connections.
    pub connections: usize,
    /// Mix seed (same seed, same per-loader request stream).
    pub seed: u64,
    /// Ranks to profile each paper app at (pool dimension).
    pub procs: usize,
    /// Rolling p99 bound, nanoseconds, asserted on every poll over the
    /// pool's verbs.
    pub p99_ceiling_ns: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            duration: Duration::from_secs(20),
            poll_interval: Duration::from_millis(500),
            connections: 4,
            seed: 0x50A_C5EED,
            procs: 8,
            p99_ceiling_ns: 500_000_000, // generous: a loaded CI box, not prod
        }
    }
}

/// What a soak observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Responses served across all loaders.
    pub served: u64,
    /// Responses whose bytes differed from the warmup baseline.
    pub divergence: u64,
    /// Load-shed ([`Response::Busy`]) answers.
    pub busy: u64,
    /// Structured error answers.
    pub errors: u64,
    /// Metrics polls the monitor landed.
    pub polls: u64,
    /// Worst rolling p99 any poll reported over the pool verbs, ns.
    pub worst_p99_ns: u64,
    /// One JSON line per poll: `{"t_ms":…,"metrics":{…}}`.
    pub timeline: Vec<String>,
    /// Human-readable SLO violations; empty means the soak passed.
    pub slo_violations: Vec<String>,
}

impl SoakReport {
    /// Did every service-level objective hold?
    pub fn passed(&self) -> bool {
        self.slo_violations.is_empty()
    }
}

/// The verbs the loader mix exercises — the rolling rows the p99
/// ceiling is asserted against.
const POOL_VERBS: [&str; 4] = ["provision", "cost", "tdc", "simulate"];

/// Worst rolling p99 across the pool verbs in one `metrics` snapshot.
fn snapshot_p99(resp: &Response) -> u64 {
    let Response::Metrics { verbs, .. } = resp else {
        return 0;
    };
    verbs
        .iter()
        .filter(|row| POOL_VERBS.contains(&row.verb.as_str()) && row.count > 0)
        .map(|row| row.p99_ns)
        .max()
        .unwrap_or(0)
}

/// Soaks `addr` — a daemon or a fleet router, both speak `metrics` —
/// under the closed-loop paper-app mix for `config.duration`, polling
/// rolling metrics and asserting SLOs. Never panics on a violation;
/// read [`SoakReport::slo_violations`] (or [`SoakReport::passed`]).
pub fn run_soak(addr: &str, config: &SoakConfig) -> SoakReport {
    let pool = request_pool(config.procs);

    // Warmup pass doubles as the byte oracle: the pool is pure, so
    // every later response must match these bytes exactly.
    let mut violations = Vec::new();
    let mut expected = Vec::with_capacity(pool.len());
    match Client::connect(addr) {
        Ok(mut warm) => {
            for req in &pool {
                match warm.call_text(req) {
                    Ok((_, text)) => expected.push(text),
                    Err(e) => {
                        violations.push(format!("warmup call failed: {e}"));
                        break;
                    }
                }
            }
        }
        Err(e) => violations.push(format!("warmup connect {addr}: {e}")),
    }
    if expected.len() != pool.len() {
        return SoakReport {
            served: 0,
            divergence: 0,
            busy: 0,
            errors: 0,
            polls: 0,
            worst_p99_ns: 0,
            timeline: Vec::new(),
            slo_violations: violations,
        };
    }

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let divergence = AtomicU64::new(0);
    let busy = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + config.duration;

    let (timeline, polls, worst_p99) = std::thread::scope(|s| {
        for conn in 0..config.connections {
            let mut rng = Rng64::new(
                config
                    .seed
                    .wrapping_add((conn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            let (pool, expected) = (&pool, &expected);
            let (stop, served, divergence, busy, errors) =
                (&stop, &served, &divergence, &busy, &errors);
            s.spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return; // the liveness SLO below catches a dead target
                };
                while !stop.load(Ordering::Relaxed) {
                    let i = rng.range(0, pool.len());
                    match client.call_text(&pool[i]) {
                        Ok((resp, text)) => {
                            served.fetch_add(1, Ordering::Relaxed);
                            match resp {
                                Response::Busy => {
                                    busy.fetch_add(1, Ordering::Relaxed);
                                }
                                Response::Error { .. } => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                                _ if text != expected[i] => {
                                    divergence.fetch_add(1, Ordering::Relaxed);
                                }
                                _ => {}
                            }
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        // The monitor runs on the scope's own thread: poll, record,
        // assert, until the budget expires — then stop the loaders.
        let mut timeline = Vec::new();
        let mut polls = 0u64;
        let mut worst_p99 = 0u64;
        let mut monitor = Client::connect(addr).ok();
        while Instant::now() < deadline {
            std::thread::sleep(
                config
                    .poll_interval
                    .min(deadline.saturating_duration_since(Instant::now())),
            );
            let Some(client) = monitor.as_mut() else {
                break;
            };
            match client.call_text(&Request::Metrics) {
                Ok((resp, raw)) => {
                    polls += 1;
                    worst_p99 = worst_p99.max(snapshot_p99(&resp));
                    timeline.push(
                        JsonObj::new()
                            .u64("t_ms", started.elapsed().as_millis() as u64)
                            .raw("metrics", &raw)
                            .finish(),
                    );
                }
                Err(_) => monitor = Client::connect(addr).ok(), // ride restarts
            }
        }
        stop.store(true, Ordering::Relaxed);
        (timeline, polls, worst_p99)
    });

    let report = |violations: Vec<String>| SoakReport {
        served: served.load(Ordering::Relaxed),
        divergence: divergence.load(Ordering::Relaxed),
        busy: busy.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        polls,
        worst_p99_ns: worst_p99,
        timeline,
        slo_violations: violations,
    };
    let mut out = report(violations);
    if out.divergence != 0 {
        out.slo_violations.push(format!(
            "{} responses diverged from the warmup bytes",
            out.divergence
        ));
    }
    if out.polls == 0 {
        out.slo_violations
            .push("monitor landed zero metrics polls".into());
    }
    if out.served == 0 {
        out.slo_violations.push("loaders served nothing".into());
    }
    if out.worst_p99_ns > config.p99_ceiling_ns {
        out.slo_violations.push(format!(
            "rolling p99 {:.1} ms breached the {:.1} ms ceiling",
            out.worst_p99_ns as f64 / 1e6,
            config.p99_ceiling_ns as f64 / 1e6
        ));
    }
    out
}

impl SoakReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "served      {:>10}\n\
             divergence  {:>10}\n\
             busy        {:>10}\n\
             errors      {:>10}\n\
             polls       {:>10}\n\
             worst p99   {:>10.3} ms\n\
             slo         {:>10}",
            self.served,
            self.divergence,
            self.busy,
            self.errors,
            self.polls,
            self.worst_p99_ns as f64 / 1e6,
            if self.passed() { "pass" } else { "FAIL" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_serve::{start, ServerConfig};

    #[test]
    fn short_soak_passes_against_a_live_daemon() {
        let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let config = SoakConfig {
            duration: Duration::from_millis(1200),
            poll_interval: Duration::from_millis(150),
            connections: 2,
            procs: 4,
            ..SoakConfig::default()
        };
        let report = run_soak(&addr, &config);
        assert!(report.passed(), "violations: {:?}", report.slo_violations);
        assert!(report.served > 0);
        assert_eq!(report.divergence, 0);
        assert!(report.polls >= 1);
        assert_eq!(report.timeline.len(), report.polls as usize);
        // Timeline lines are well-formed single JSON objects.
        for line in &report.timeline {
            assert!(line.starts_with("{\"t_ms\":"), "bad line {line}");
            assert!(line.contains("\"metrics\":{"), "bad line {line}");
        }
        let mut c = Client::connect(&addr).expect("connect");
        c.call(&Request::Shutdown).expect("drain");
        server.join();
    }

    #[test]
    fn impossible_ceiling_is_reported_not_panicked() {
        let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        let config = SoakConfig {
            duration: Duration::from_millis(600),
            poll_interval: Duration::from_millis(100),
            connections: 1,
            procs: 4,
            p99_ceiling_ns: 1, // nothing real serves in a nanosecond
            ..SoakConfig::default()
        };
        let report = run_soak(&addr, &config);
        assert!(!report.passed(), "1 ns p99 ceiling cannot hold");
        let mut c = Client::connect(&addr).expect("connect");
        c.call(&Request::Shutdown).expect("drain");
        server.join();
    }
}
