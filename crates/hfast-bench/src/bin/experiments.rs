//! Runs the complete reproduction suite and prints a compact summary of
//! every table and figure — the data source for EXPERIMENTS.md.
//!
//! The apps × sizes measurement grid is embarrassingly parallel, so the
//! cells are profiled on worker threads (`HFAST_THREADS` overrides the
//! count; `HFAST_THREADS=1` runs sequentially) and printed in grid order —
//! the output is byte-identical either way.

use hfast_apps::{all_apps, STUDY_SIZES};
use hfast_bench::measure::measure_cells;
use hfast_bench::paper::paper_row;
use hfast_bench::render::{table3_header, table3_rows};
use hfast_topology::{tdc, BDP_CUTOFF};

fn main() {
    println!("== HFAST reproduction: full experiment sweep ==\n");
    print!("{}", table3_header());
    let app_count = all_apps().len();
    let cells: Vec<(usize, usize)> = (0..app_count)
        .flat_map(|a| STUDY_SIZES.iter().map(move |&p| (a, p)))
        .collect();
    let rows = measure_cells(&cells);
    let mut checks = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let procs = row.procs;
        let paper = paper_row(row.name, procs);
        print!("{}", table3_rows(row, paper.as_ref()));
        if let Some(p) = paper {
            let tdc_match = row.tdc_max == p.tdc_max
                && (row.tdc_avg - p.tdc_avg).abs() <= p.tdc_avg.max(2.0) * 0.25;
            checks.push((row.name, procs, "TDC@2k", tdc_match));
            let mix_match = (row.ptp_pct - p.ptp_pct).abs() < 6.0;
            checks.push((row.name, procs, "call split", mix_match));
        }
        // Unthresholded topology shape notes.
        let g = row.steady.comm_graph();
        let uncut = tdc(&g, 0);
        let cut = tdc(&g, BDP_CUTOFF);
        println!(
            "              unthresholded TDC (max,avg) = ({}, {:.1}); cutoff shrinks max by {}",
            uncut.max,
            uncut.avg,
            uncut.max - cut.max
        );
        if (i + 1) % STUDY_SIZES.len() == 0 {
            println!();
        }
    }
    println!("shape checks against the paper:");
    let mut pass = 0;
    for (name, procs, what, ok) in &checks {
        println!(
            "  {} {name}@{procs} {what}",
            if *ok { "PASS" } else { "MISS" }
        );
        pass += usize::from(*ok);
    }
    println!("\n{pass}/{} checks passed", checks.len());
}
