//! Regenerates paper Figure 5: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::Gtc;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&Gtc::default(), 5));
}
