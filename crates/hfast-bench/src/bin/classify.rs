//! The §2.5 taxonomy: classify each application into cases i-iv.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{classify, ClassifyConfig};

fn main() {
    println!("== §2.5 application classification (measured at P = 64/256) ==\n");
    // Paper's verdicts: Cactus→i, LBMHD→ii, GTC→iii, SuperLU→iii,
    // PMEMD→iii, PARATEC→iv.
    let paper = [
        ("Cactus", "case i"),
        ("LBMHD", "case ii"),
        ("GTC", "case iii"),
        ("SuperLU", "case iii"),
        ("PMEMD", "case iii"),
        ("PARATEC", "case iv"),
    ];
    for app in all_apps() {
        let procs = 256;
        let row = measure_app(app.as_ref(), procs);
        let c = classify(&row.steady.comm_graph(), &ClassifyConfig::default());
        let expected = paper
            .iter()
            .find(|(n, _)| *n == row.name)
            .map(|(_, v)| *v)
            .unwrap_or("?");
        println!(
            "{:<9} measured {:<9} (paper: {expected})",
            row.name,
            c.case.to_string()
        );
        println!("          {}", c.rationale);
        println!("          prescription: {}\n", c.case.prescription());
    }
}
