//! End-to-end causal trace capture: GTC at P = 256, world run plus fabric
//! replay, exported as one Chrome trace-event / Perfetto JSON document.
//!
//! One [`TraceRecorder`] collects both layers — rank send/recv/wait spans
//! from the MPI runtime (stamped through message envelopes, so every recv
//! links to its originating send) and flow/hop spans from the simulator
//! replay of the measured steady-state traffic on a provisioned HFAST
//! fabric. Span-id spaces are disjoint by construction, so the merged
//! document is one browsable timeline: ranks, links, and the engine as
//! separate tracks.
//!
//! The capture self-validates against the acceptance contract (valid
//! JSON, one track per rank and per used transit link, zero orphan recvs)
//! and exits non-zero on any violation. Pass `--trace-out <path>` to keep
//! the document; a flamegraph-style self/total aggregation per call kind
//! is printed either way.

use std::sync::Arc;

use hfast_apps::{profile_app_with, Gtc};
use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_ipm::format_bytes;
use hfast_mpi::WorldConfig;
use hfast_netsim::{traffic, HfastFabric, Simulation};
use hfast_trace::{aggregate, export, rank_hotspots, validate, TraceRecorder};

const PROCS: usize = 256;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut trace_out: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other} (usage: trace_capture [--trace-out FILE])");
                std::process::exit(2);
            }
        }
    }

    println!("== causal trace capture: GTC, P = {PROCS} ==\n");
    let rec = Arc::new(TraceRecorder::new());
    let outcome = profile_app_with(
        &Gtc::default(),
        PROCS,
        WorldConfig::new(PROCS).trace(Arc::clone(&rec)),
    )
    .expect("GTC world run");
    let world_spans = rec.len();
    println!("world run: {world_spans} rank spans recorded");

    // Replay the measured steady-state traffic on a provisioned HFAST
    // fabric into the same recorder.
    let graph = outcome.steady.comm_graph();
    let flows = traffic::flows_from_graph(&graph, 2048);
    let hf = HfastFabric::new(PaperLinear.provision(&graph, ProvisionConfig::default()));
    Simulation::new(&hf).with_trace(&rec).run(&flows);
    println!(
        "replay: {} flows ({}) -> {} spans total",
        flows.len(),
        format_bytes(flows.iter().map(|f| f.bytes).sum::<u64>()),
        rec.len()
    );

    let spans = rec.snapshot();
    let doc = export(&spans);
    let stats = validate(&doc).expect("exporter must emit valid trace-event JSON");
    let used_links = rank_hotspots(&spans).len();
    println!(
        "\ntrace: {} events, {} rank tracks, {} link tracks, \
         {} linked recvs, {} orphans",
        stats.events, stats.rank_tracks, stats.link_tracks, stats.linked_recvs, stats.orphan_recvs
    );

    println!("\nflamegraph aggregation (self/total per call kind):");
    for agg in aggregate(&spans).iter().take(8) {
        println!(
            "  {:>12}: {:>7} calls  total {:>12} ns  self {:>12} ns",
            agg.name, agg.count, agg.total_ns, agg.self_ns
        );
    }

    if let Some(path) = &trace_out {
        std::fs::write(path, &doc).expect("write trace document");
        println!(
            "\nwrote {} bytes to {path} (load in ui.perfetto.dev)",
            doc.len()
        );
    }

    let mut failures = Vec::new();
    if stats.rank_tracks != PROCS {
        failures.push(format!(
            "expected {PROCS} rank tracks, got {}",
            stats.rank_tracks
        ));
    }
    if stats.link_tracks != used_links || used_links == 0 {
        failures.push(format!(
            "expected {used_links} used-link tracks, got {}",
            stats.link_tracks
        ));
    }
    if stats.orphan_recvs != 0 {
        failures.push(format!(
            "{} recv spans without a send parent",
            stats.orphan_recvs
        ));
    }
    if stats.linked_recvs == 0 {
        failures.push("no linked recv spans at all".to_string());
    }
    if failures.is_empty() {
        println!("\nPASS: capture satisfies the trace contract");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
