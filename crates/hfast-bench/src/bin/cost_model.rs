//! The §5.3 cost analysis: fat-tree vs HFAST component scaling, the
//! ultra-scale crossover, and per-application cost comparisons.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::cost::AnalyticHfast;
use hfast_core::{CostComparison, CostModel, FatTree, PaperLinear, ProvisionConfig, Provisioner};

fn main() {
    let model = CostModel::default();
    println!("== §5.3 cost model ==\n");

    println!("fat-tree dimensioning (8-port switches, paper's example):");
    println!(
        "{:>10} {:>7} {:>12} {:>12}",
        "P", "layers", "ports/proc", "max hops"
    );
    for p in [64usize, 256, 2048, 8192, 65536, 1 << 20] {
        let ft = FatTree::for_processors(p, 8);
        println!(
            "{:>10} {:>7} {:>12} {:>12}",
            p,
            ft.layers,
            ft.ports_per_processor(),
            ft.max_switch_hops()
        );
    }

    println!("\nHFAST vs fat-tree crossover (8-port components):");
    for tdc in [2usize, 6, 12, 30] {
        let config = ProvisionConfig {
            block_ports: 8,
            cutoff: 2048,
        };
        match AnalyticHfast::crossover_p(tdc, config, &model) {
            Some(p) => println!("  TDC {tdc:>3}: HFAST cheaper from P = {p}"),
            None => println!("  TDC {tdc:>3}: fat tree always cheaper (case-iv style)"),
        }
    }

    println!("\nper-application comparison at P = 64 (16-port blocks):");
    println!(
        "{:>9} {:>12} {:>12} {:>7} {:>16}",
        "code", "HFAST cost", "fat-tree", "ratio", "HFAST ports/node"
    );
    for app in all_apps() {
        let row = measure_app(app.as_ref(), 64);
        let graph = row.steady.comm_graph();
        let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
        let cmp = CostComparison::of(&prov, &model);
        println!(
            "{:>9} {:>12.0} {:>12.0} {:>7.2} {:>16.1}",
            row.name,
            cmp.hfast,
            cmp.fat_tree,
            cmp.ratio(),
            cmp.hfast_ports_per_node
        );
    }
    println!(
        "\nshape: packet-switch ports per node are constant for HFAST and \
         grow with log P for the fat tree; the crossover lands at \
         ultra-scale P for low-TDC codes and never for PARATEC-class codes."
    );
}
