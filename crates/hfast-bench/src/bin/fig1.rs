//! Reproduces paper Figure 1's worked example: 6 nodes on active switch
//! blocks of size 4, with routes for node1→node2 (one block) and
//! node1→node6 (two blocks).

use hfast_core::{Clustered, ProvisionConfig, Provisioner};
use hfast_topology::CommGraph;

fn main() {
    println!("== Figure 1: HFAST layout example (6 nodes, blocks of 4) ==\n");
    let mut g = CommGraph::new(6);
    g.add_message(0, 1, 1 << 20); // node1 ↔ node2 in the paper's 1-indexing
    g.add_message(0, 5, 1 << 20); // node1 ↔ node6
    let clustering = vec![vec![0, 1, 2], vec![3, 4, 5]];
    let prov = Clustered::new(clustering).provision(
        &g,
        ProvisionConfig {
            block_ports: 4,
            cutoff: 2048,
        },
    );
    prov.validate(&g).expect("valid provisioning");

    println!("switch blocks allocated: {}", prov.total_blocks());
    println!("circuit ports in use:    {}\n", prov.circuit_ports_used());
    println!("circuits patched (endpoint ↔ endpoint):");
    for (a, b) in prov.circuit.circuits() {
        println!("  {a} ↔ {b}");
    }
    let r01 = prov.route(0, 1).expect("routed");
    println!(
        "\nnode1 → node2: {} circuit traversals, {} active switch hop(s)  (paper: 2 / 1)",
        r01.circuit_traversals, r01.switch_hops
    );
    let r05 = prov.route(0, 5).expect("routed");
    println!(
        "node1 → node6: {} circuit traversals, {} active switch hop(s)  (paper: 3 / 2)",
        r05.circuit_traversals, r05.switch_hops
    );
}
