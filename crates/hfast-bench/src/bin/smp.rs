//! Extension experiment: SMP-node bandwidth localization (the paper's §5
//! deferred analysis) across the six applications.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{localize, PaperLinear, ProvisionConfig, Provisioner, SmpAssignment};
use hfast_topology::{tdc, BDP_CUTOFF};

fn main() {
    let procs = 64;
    let width = 4;
    println!("== SMP localization at P = {procs}, {width}-way nodes ==\n");
    println!(
        "{:>9} {:>12} {:>12} {:>14} {:>16}",
        "code", "blocked", "localized", "node TDC(max)", "blocks (vs flat)"
    );
    for app in all_apps() {
        let row = measure_app(app.as_ref(), procs);
        let graph = row.steady.comm_graph();
        let blocked = SmpAssignment::blocked(procs, width);
        let best = localize(&graph, width, 3);
        let folded = best.fold(&graph);
        let node_tdc = tdc(&folded, BDP_CUTOFF);
        let node_prov = PaperLinear.provision(&folded, ProvisionConfig::default());
        let flat_prov = PaperLinear.provision(&graph, ProvisionConfig::default());
        println!(
            "{:>9} {:>11.1}% {:>11.1}% {:>14} {:>9} ({:>3})",
            row.name,
            100.0 * blocked.locality(&graph),
            100.0 * best.locality(&graph),
            node_tdc.max,
            node_prov.total_blocks(),
            flat_prov.total_blocks(),
        );
    }
    println!(
        "\nshape: folding ranks onto SMP nodes divides the switch-block \
         demand by the node width; localization additionally moves a \
         workload-dependent share of bytes into shared memory."
    );
}
