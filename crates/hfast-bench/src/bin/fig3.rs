//! Regenerates paper Figure 3: cumulative buffer-size distribution of
//! collective communication across all six codes.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_bench::render::cdf_line;
use hfast_ipm::format_bytes;
use hfast_topology::BufferHistogram;

fn main() {
    println!("== Figure 3: collective buffer sizes, all codes ==\n");
    let mut combined = BufferHistogram::new();
    for app in all_apps() {
        let row = measure_app(app.as_ref(), 64);
        combined.merge(&row.steady.collective_buffer_histogram());
    }
    println!("cumulative distribution (log-scaled x, 1B → max):");
    println!("  [{}]", cdf_line(&combined.cdf(), 60));
    for mark in [100u64, 2048, 1 << 20] {
        println!(
            "  ≤ {:>6}: {:>5.1}% of collective calls",
            format_bytes(mark),
            100.0 * combined.fraction_at_or_below(mark)
        );
    }
    println!(
        "\npaper: ~90% of collective payloads ≤ 2 KB, ~half < 100 B → a \
         low-bandwidth tree network suffices for collectives."
    );
    let at_2k = combined.fraction_at_or_below(2048);
    assert!(at_2k > 0.85, "Figure 3 shape: {at_2k}");
}
