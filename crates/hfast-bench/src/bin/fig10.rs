//! Regenerates paper Figure 10: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::Paratec;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&Paratec::default(), 10));
}
