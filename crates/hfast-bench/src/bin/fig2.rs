//! Regenerates paper Figure 2: relative number of MPI communication calls
//! per code, measured vs published.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_bench::paper::paper_call_mix;

fn main() {
    println!("== Figure 2: relative number of MPI calls per code ==\n");
    for app in all_apps() {
        let row = measure_app(app.as_ref(), 64);
        println!("{}:", row.name);
        let paper = paper_call_mix(row.name);
        for (kind, pct) in row.steady.call_mix() {
            if pct < 0.05 {
                continue;
            }
            let published = paper
                .iter()
                .find(|(name, _)| *name == kind.mpi_name())
                .map(|(_, p)| format!("{p:>5.1}%"))
                .unwrap_or_else(|| "    —".into());
            println!(
                "  {:<18} measured {:>5.1}%   paper {}",
                kind.mpi_name(),
                pct,
                published
            );
        }
        println!();
    }
}
