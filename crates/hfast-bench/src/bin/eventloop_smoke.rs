//! Thread-count determinism smoke for the rewritten event loop: every
//! scenario runs under `HFAST_THREADS=1` and `=8` semantics (via
//! `Simulation::with_threads`, the same resolution path the env variable
//! feeds) and the outputs must be byte-identical. Exits non-zero, naming
//! the scenario and both digests, on any divergence.
//!
//! Scenarios cover both loops: the 20k-flow static suite the bench
//! measures (where the conservative-parallel executor actually engages),
//! a bursty all-to-all on the fat tree (same-timestamp event storms), and
//! a faulted torus with retries (the dynamic loop, which must stay
//! untouched by the thread knob).

use hfast_netsim::{
    traffic, transit_links, CreditConfig, FatTreeFabric, FaultPlan, RetryPolicy, Scenario,
    ScenarioKind, SimOutput, Simulation, TorusFabric,
};

/// FNV-1a over every stats field and per-flow record: equal digests ⇔
/// byte-identical simulated results (mirrors the eventloop golden tests).
fn digest(out: &SimOutput) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    let s = &out.stats;
    for v in [
        s.completed as u64,
        s.unrouted as u64,
        s.abandoned as u64,
        s.total_retries,
        s.delivered_bytes,
        s.makespan_ns,
        s.p50_latency_ns,
        s.p95_latency_ns,
        s.max_latency_ns,
        s.avg_hops.to_bits(),
        s.max_link_utilization.to_bits(),
        s.throughput.to_bits(),
    ] {
        mix(v);
    }
    if let Some(records) = &out.records {
        for r in records {
            mix(r.flow as u64);
            mix(r.start_ns);
            mix(r.end_ns.map_or(u64::MAX, |e| e));
            mix(r.hops as u64);
            mix(u64::from(r.retries));
            mix(u64::from(r.abandoned));
        }
    }
    h
}

fn check(name: &str, run: impl Fn(usize) -> SimOutput) {
    let seq = run(1);
    let par = run(8);
    let (d1, d8) = (digest(&seq), digest(&par));
    assert_eq!(
        seq, par,
        "{name}: HFAST_THREADS=1 and =8 diverged (digests {d1:#018x} vs {d8:#018x})"
    );
    println!("{name}: threads 1 == 8, digest {d1:#018x}");
}

fn main() {
    let torus = TorusFabric::new((8, 8, 8)).unwrap();
    let many = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    check("static/20k-flows-512-torus", |threads| {
        Simulation::new(&torus)
            .detailed()
            .with_threads(threads)
            .run(&many)
    });

    let ft = FatTreeFabric::new(32, 8).unwrap();
    let burst = traffic::alltoall(32, 4096);
    check("static/alltoall-fat-tree", |threads| {
        Simulation::new(&ft)
            .detailed()
            .with_threads(threads)
            .run(&burst)
    });

    let small = TorusFabric::new((4, 4, 1)).unwrap();
    let fs = traffic::uniform_random(16, 200, 4096, 400_000, 13);
    let eligible = transit_links(&small, &fs);
    let plan = FaultPlan::builder()
        .random_link_failures(0xFEED, 4, &eligible, (0, 400_000), Some(150_000))
        .build(&small)
        .unwrap();
    check("faulted/torus-retries", |threads| {
        Simulation::new(&small)
            .with_faults(&plan)
            .with_retry(RetryPolicy::default())
            .detailed()
            .with_threads(threads)
            .run(&fs)
    });

    // The credit loop is sequential by construction, so the thread knob
    // must be fully inert on it — on a scenario built to congest.
    let incast = Scenario::preset(ScenarioKind::Incast, 32, 5).generate();
    check("credit/incast-fat-tree", |threads| {
        Simulation::new(&ft)
            .with_congestion(CreditConfig::credit(2))
            .detailed()
            .with_threads(threads)
            .run(&incast)
    });

    // And `Ideal` must be byte-identical to a builder that never mentions
    // congestion at all (the golden tests pin the absolute digests; this
    // smoke pins the equivalence on the 20k-flow suite).
    let plain = digest(&Simulation::new(&torus).detailed().run(&many));
    let ideal = digest(
        &Simulation::new(&torus)
            .with_congestion(CreditConfig::default())
            .detailed()
            .run(&many),
    );
    assert_eq!(
        plain, ideal,
        "ideal-mode digest diverged from the plain loop on the 20k suite"
    );
    println!("congestion/ideal-identity-20k: digest {plain:#018x}");

    println!("eventloop smoke: OK");
}
