//! Closed-loop load generator against an `hfast-serve` daemon.
//!
//! ```text
//! loadgen [--addr HOST:PORT | --fleet A,B,C] [--connections N] [--requests N] [--seed S]
//! loadgen --soak SECS [--addr HOST:PORT] [--timeline PATH] [--p99-ms MS] [--connections N]
//! ```
//!
//! Without `--addr` or `--fleet`, a daemon is started in-process on an
//! ephemeral port (config from the `HFAST_SERVE_*` environment), loaded,
//! drained, and joined — the one-command version of the serving
//! experiment. With `--addr`, an already-running daemon is loaded and
//! left running. With `--fleet` (comma-separated shard addresses), the
//! same load is routed client-side over the shards with consistent
//! hashing — the digest must match the single-node run.
//!
//! With `--soak SECS`, the fixed-length run becomes a wall-clock soak:
//! sustained load while a monitor polls the `metrics` verb and asserts
//! SLOs (zero byte divergence, rolling p99 under the `--p99-ms`
//! ceiling); `--timeline PATH` writes the poll-by-poll JSONL record.
//! Exit status reports the SLO verdict.
//!
//! The report ends with a deterministic digest over every response byte:
//! two runs with the same seed against any healthy daemon — 1 worker or
//! 8 — must print the same digest.

use std::process::ExitCode;
use std::time::Duration;

use hfast_bench::{loadgen, soak};
use hfast_serve::{start, Client, Request, ServerConfig};

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = loadgen::LoadConfig::default();
    if let Some(n) = parse_flag(&args, "--connections")? {
        config.connections = n;
    }
    if let Some(n) = parse_flag(&args, "--requests")? {
        config.requests_per_connection = n;
    }
    if let Some(s) = parse_flag(&args, "--seed")? {
        config.seed = s;
    }
    let addr: Option<String> = parse_flag(&args, "--addr")?;
    let fleet: Option<String> = parse_flag(&args, "--fleet")?;

    if let Some(secs) = parse_flag::<u64>(&args, "--soak")? {
        if fleet.is_some() {
            return Err("--soak targets one address; point it at a fleet router".into());
        }
        let mut config = soak::SoakConfig {
            duration: Duration::from_secs(secs.max(1)),
            connections: config.connections,
            seed: config.seed,
            ..soak::SoakConfig::default()
        };
        if let Some(ms) = parse_flag::<u64>(&args, "--p99-ms")? {
            config.p99_ceiling_ns = ms.saturating_mul(1_000_000);
        }
        let (addr, server) = match addr {
            Some(addr) => (addr, None),
            None => {
                let server = start("127.0.0.1:0", ServerConfig::from_env())
                    .map_err(|e| format!("bind: {e}"))?;
                (server.local_addr().to_string(), Some(server))
            }
        };
        eprintln!(
            "loadgen: soaking {addr} for {}s ({} connections, p99 ceiling {:.0} ms)",
            secs,
            config.connections,
            config.p99_ceiling_ns as f64 / 1e6
        );
        let report = soak::run_soak(&addr, &config);
        println!("{}", report.render());
        if let Some(path) = parse_flag::<String>(&args, "--timeline")? {
            let mut doc = report.timeline.join("\n");
            doc.push('\n');
            std::fs::write(&path, doc).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("loadgen: telemetry timeline -> {path}");
        }
        if let Some(server) = server {
            let mut client = Client::connect(&addr).map_err(|e| format!("drain connect: {e}"))?;
            client
                .call(&Request::Shutdown)
                .map_err(|e| format!("drain: {e}"))?;
            server.join();
        }
        return if report.passed() {
            Ok(())
        } else {
            Err(format!(
                "SLO violations: {}",
                report.slo_violations.join("; ")
            ))
        };
    }

    if let Some(fleet) = fleet {
        if addr.is_some() {
            return Err("--addr and --fleet are mutually exclusive".into());
        }
        let shards: Vec<String> = fleet
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if shards.is_empty() {
            return Err("--fleet needs at least one shard address".into());
        }
        eprintln!(
            "loadgen: {} connections x {} requests (seed {:#x}) -> fleet of {} shards",
            config.connections,
            config.requests_per_connection,
            config.seed,
            shards.len()
        );
        let report = loadgen::run_fleet(&shards, &config);
        println!("{}", report.render());
        if report.dropped > 0 {
            return Err(format!("{} responses dropped", report.dropped));
        }
        return Ok(());
    }

    let (addr, server) = match addr {
        Some(addr) => (addr, None),
        None => {
            let server =
                start("127.0.0.1:0", ServerConfig::from_env()).map_err(|e| format!("bind: {e}"))?;
            (server.local_addr().to_string(), Some(server))
        }
    };
    eprintln!(
        "loadgen: {} connections x {} requests (seed {:#x}) -> {addr}",
        config.connections, config.requests_per_connection, config.seed
    );
    let report = loadgen::run(&addr, &config);
    println!("{}", report.render());
    if let Some(server) = server {
        let mut client = Client::connect(&addr).map_err(|e| format!("drain connect: {e}"))?;
        client
            .call(&Request::Shutdown)
            .map_err(|e| format!("drain: {e}"))?;
        server.join();
    }
    if report.dropped > 0 {
        return Err(format!("{} responses dropped", report.dropped));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
