//! Regenerates paper Figure 8: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::SuperLu;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&SuperLu::default(), 8));
}
