//! Regenerates paper Table 3: per-application communication summary at
//! P = 64 and 256, measured vs published.

use hfast_apps::{all_apps, STUDY_SIZES};
use hfast_bench::measure_app;
use hfast_bench::paper::paper_row;
use hfast_bench::render::{table3_header, table3_rows};

fn main() {
    println!("== Table 3: summary of code characteristics ==\n");
    print!("{}", table3_header());
    for app in all_apps() {
        for &procs in &STUDY_SIZES {
            let row = measure_app(app.as_ref(), procs);
            let paper = paper_row(row.name, procs);
            print!("{}", table3_rows(&row, paper.as_ref()));
        }
        println!();
    }
    println!(
        "(FCN utilization defined as avgTDC@2KB/(P−1); the paper's SuperLU \
         P=256 row reports 25%, inconsistent with its own TDC column — see \
         EXPERIMENTS.md.)"
    );
}
