//! Congestion hotspot analyzer: fold per-link trace spans into link
//! rankings per app × fabric and cross-reference against the HFAST
//! provisioning map.
//!
//! Each of the six applications is profiled, its steady-state flows are
//! replayed on a fat tree and a per-app provisioned HFAST fabric with
//! causal tracing attached, and the recorded per-link `hop` spans are
//! folded by [`hfast_trace::rank_hotspots`] into busy-time / queueing
//! rankings. On HFAST, every transit link (node fibers excluded — they
//! carry all of a node's traffic by construction) is classified through
//! [`HfastFabric::link_class`]; the paper's provisioning argument predicts
//! that measured congestion lands on the circuit-switched links the
//! provisioner dedicated to the heavy pairs, not on the collective tree.
//!
//! Exits non-zero if any app's top HFAST transit hotspot is not a
//! circuit-switched link.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::{traffic, Fabric, FatTreeFabric, HfastFabric, Simulation};
use hfast_obs::Histogram;
use hfast_trace::{rank_hotspots, LinkLoad, TraceRecorder, Track};

const PROCS: usize = 64;
const TOP: usize = 5;

/// Replays `flows` on `fabric` with tracing on and returns the hotspot
/// ranking plus a histogram of per-hop queueing waits.
fn trace_replay(fabric: &dyn Fabric, flows: &[traffic::Flow]) -> (Vec<LinkLoad>, Histogram) {
    let rec = TraceRecorder::new();
    Simulation::new(fabric).with_trace(&rec).run(flows);
    let spans = rec.snapshot();
    let waits = Histogram::new();
    for s in &spans {
        if matches!(s.track, Track::Link(_)) && s.name == "hop" {
            if let Some(&(_, w)) = s.fields.iter().find(|(k, _)| *k == "wait") {
                waits.record(w);
            }
        }
    }
    (rank_hotspots(&spans), waits)
}

fn print_ranking(label: &str, loads: &[LinkLoad], class_of: Option<&HfastFabric>) {
    println!("  {label}:");
    for l in loads.iter().take(TOP) {
        let class = class_of.map_or(String::new(), |hf| format!(" [{}]", hf.link_class(l.link)));
        println!(
            "    link {:>4}{class}: busy {:>9} ns  util {:>5.3}  waited {:>9} ns  \
             msgs {:>4}  peak queue {:>2}",
            l.link, l.busy_ns, l.utilization, l.wait_ns, l.messages, l.peak_queue
        );
    }
}

fn main() {
    // Optional filter: `hotspots GTC` analyzes one app (verify.sh smoke).
    let only: Option<String> = std::env::args().nth(1).map(|s| s.to_lowercase());
    println!("== congestion hotspots: traced replay, all codes, both fabrics ==\n");
    let apps = all_apps();
    let mut violations = 0usize;
    let mut skipped = 0usize;
    for app in &apps {
        if let Some(f) = &only {
            if !app.name().to_lowercase().contains(f.as_str()) {
                continue;
            }
        }
        let row = measure_app(app.as_ref(), PROCS);
        let graph = row.steady.comm_graph();
        let flows = traffic::flows_from_graph(&graph, 2048);
        if flows.is_empty() {
            println!(
                "{}: no steady-state flows above cutoff, skipped\n",
                row.name
            );
            skipped += 1;
            continue;
        }
        println!("{} ({} flows):", row.name, flows.len());
        let ft = FatTreeFabric::new(PROCS, 8).expect("valid shape");
        let (ft_loads, ft_waits) = trace_replay(&ft, &flows);
        print_ranking("fat-tree", &ft_loads, None);
        println!(
            "    queue wait p50/p95/p99: {} / {} / {} ns",
            ft_waits.quantile(0.5),
            ft_waits.quantile(0.95),
            ft_waits.quantile(0.99)
        );

        let hf = HfastFabric::new(PaperLinear.provision(&graph, ProvisionConfig::default()));
        let (hf_loads, hf_waits) = trace_replay(&hf, &flows);
        // Transit links only: endpoint fibers aggregate a whole node's
        // traffic and would rank first on any fabric.
        let transit: Vec<LinkLoad> = hf_loads
            .iter()
            .filter(|l| hf.link_class(l.link) != "fiber")
            .cloned()
            .collect();
        print_ranking("hfast (transit)", &transit, Some(&hf));
        println!(
            "    queue wait p50/p95/p99: {} / {} / {} ns",
            hf_waits.quantile(0.5),
            hf_waits.quantile(0.95),
            hf_waits.quantile(0.99)
        );
        match transit.first() {
            Some(top) if hf.link_class(top.link) == "circuit" => {
                println!("    -> hottest transit link is circuit-switched, as provisioned\n");
            }
            Some(top) => {
                violations += 1;
                println!(
                    "    -> FAIL: hottest transit link {} is {} traffic, not a circuit\n",
                    top.link,
                    hf.link_class(top.link)
                );
            }
            None => {
                println!("    -> all traffic node-local (no transit links used)\n");
            }
        }
    }
    if skipped > 0 {
        println!("({skipped} apps skipped: no flows to replay)");
    }
    println!(
        "shape: the provisioner dedicates circuits to exactly the heavy pairs \
         the trace measures, so congestion concentrates on circuit-switched \
         links and the packet-switched tree stays cold."
    );
    if violations > 0 {
        eprintln!("FAIL: {violations} apps whose top hotspot missed the provisioning map");
        std::process::exit(1);
    }
}
