//! Regenerates paper Table 1: bandwidth-delay products for leading
//! interconnects.

use hfast_core::bdp::TABLE1_SYSTEMS;
use hfast_ipm::format_bytes;

fn main() {
    println!("== Table 1: bandwidth-delay products ==\n");
    println!(
        "{:<22} {:<18} {:>10} {:>12} {:>8} {:>8}",
        "System", "Technology", "Latency", "Bandwidth", "BDP", "N1/2"
    );
    println!("{}", "-".repeat(84));
    for s in TABLE1_SYSTEMS {
        println!(
            "{:<22} {:<18} {:>8.1}us {:>9.1}GB/s {:>8} {:>8}",
            s.system,
            s.technology,
            s.mpi_latency_us,
            s.peak_bandwidth_gbs,
            format_bytes(s.bdp_bytes() as u64),
            format_bytes(s.n_half_bytes() as u64),
        );
    }
    println!(
        "\nBest BDP ≈ 2 KB → the paper's circuit-worthiness threshold \
         (messages below it cannot saturate a dedicated circuit)."
    );
}
