//! Regenerates paper Table 2: the studied applications.

use hfast_apps::meta::TABLE2;

fn main() {
    println!("== Table 2: scientific applications examined ==\n");
    println!(
        "{:<9} {:>7}  {:<16} {:<48} {:<14}",
        "Name", "Lines", "Discipline", "Problem and Method", "Structure"
    );
    println!("{}", "-".repeat(100));
    for m in TABLE2 {
        println!(
            "{:<9} {:>7}  {:<16} {:<48} {:<14}",
            m.name, m.lines, m.discipline, m.problem, m.structure
        );
    }
}
