//! Regenerates paper Figure 4: cumulative point-to-point buffer-size
//! distribution per code.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_bench::render::cdf_line;
use hfast_ipm::format_bytes;

fn main() {
    println!("== Figure 4: PTP buffer sizes per code ==\n");
    for app in all_apps() {
        let row = measure_app(app.as_ref(), 64);
        let hist = row.steady.ptp_buffer_histogram();
        println!(
            "{} (median {}):",
            row.name,
            format_bytes(hist.median().unwrap_or(0))
        );
        println!("  [{}]", cdf_line(&hist.cdf(), 60));
        println!(
            "  ≤ 2KB: {:>5.1}%   ≤ 100KB: {:>5.1}%\n",
            100.0 * hist.fraction_at_or_below(2048),
            100.0 * hist.fraction_at_or_below(100 << 10)
        );
    }
}
