//! Regenerates paper Figure 6: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::Cactus;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&Cactus::default(), 6));
}
