//! Regenerates paper Figure 7: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::Lbmhd;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&Lbmhd::default(), 7));
}
