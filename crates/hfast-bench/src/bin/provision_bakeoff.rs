//! Provisioner bake-off: every application × strategy cell, judged on
//! cost, coverage, and measured congestion placement.
//!
//! ROADMAP item 3 asks how the paper's linear-time heuristic fares against
//! the BFF/Eclipse-style alternatives of arXiv 1712.06634. Each of the six
//! study codes is profiled at P = 64, then every [`Strategy`] provisions
//! its steady-state graph; each cell reports
//!
//! - **cost**: switch blocks, packet ports/node, and the cost-model ratio
//!   against an equivalent fat tree;
//! - **coverage**: the share of above-cutoff pairs that got a dedicated
//!   circuit (the rest ride the slow collective tree);
//! - **hotspots**: a traced netsim replay of the steady-state flows on the
//!   provisioned fabric, folded by the hfast-trace hotspot analyzer — the
//!   class of the hottest transit link and the circuit share of transit
//!   busy-time (arXiv 1907.05312 motivates judging placement, not just
//!   coverage);
//! - **congestion**: a second replay under credit-based flow control
//!   (finite link buffers), folded into congestion trees — the worst
//!   tree's spread ratio and the total stalled time show how far each
//!   strategy lets backpressure travel.
//!
//! `--check` runs the CI smoke: every strategy's output must pass
//! [`Provisioning::validate`] on every cell, `paper_linear` digests must
//! match the PR-6 goldens (bit-identical extraction), and a credit-mode
//! replay must deliver every flow on every cell (no deadlock under
//! backpressure). Any argument that is not `--check` filters the app
//! list by substring.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{CostComparison, CostModel, ProvisionConfig, Provisioning, Strategy};
use hfast_netsim::{traffic, CreditConfig, HfastFabric, Simulation};
use hfast_trace::{congestion_trees, rank_hotspots, TraceRecorder};

const PROCS: usize = 64;
const CUTOFF: u64 = 2048;
/// Buffer slots per link for the credit-mode congestion replay.
const CREDITS: u32 = 1;

/// PR-6 `Provisioning::digest()` goldens for the paper heuristic on each
/// study code's steady-state graph at P = 64, default config. The trait
/// extraction is verbatim, so these must never move.
const PAPER_LINEAR_GOLDENS: &[(&str, u64)] = &[
    ("Cactus", 0x7c73906c2ec77bdd),
    ("LBMHD", 0x2278b65cc94b773d),
    ("GTC", 0xdaf434118fd5579d),
    ("SuperLU", 0x732ece61ea5fef5d),
    ("PMEMD", 0x70d56ff85bbe06f6),
    ("PARATEC", 0x70d56ff85bbe06f6),
];

struct Cell {
    strategy: &'static str,
    blocks: usize,
    ports_per_node: f64,
    cost_ratio: f64,
    coverage_pct: f64,
    completed: usize,
    makespan_ns: u64,
    top_class: String,
    circuit_busy_pct: f64,
    /// Worst congestion tree's victims / root-crossing flows under
    /// credit-mode flow control (0 when no link ever stalls).
    congestion_spread: f64,
    /// Total stalled time across all congestion trees, credit mode.
    stall_ns: u64,
}

/// Provisions one cell and (outside `--check`) replays its flows traced.
fn run_cell(
    strategy: Strategy,
    graph: &hfast_topology::CommGraph,
    flows: &[traffic::Flow],
    check_only: bool,
) -> Cell {
    let prov = strategy
        .provisioner()
        .provision(graph, ProvisionConfig::default());
    prov.validate(graph)
        .unwrap_or_else(|e| panic!("{strategy} produced an invalid provisioning: {e}"));
    let circuits = prov.edge_circuits.len();
    let wanted = circuits + prov.unprovisioned.len();
    let coverage_pct = if wanted == 0 {
        100.0
    } else {
        100.0 * circuits as f64 / wanted as f64
    };
    let cmp = CostComparison::of(&prov, &CostModel::default());
    let (blocks, ports_per_node) = (prov.total_blocks(), prov.block_ports_per_node());
    if check_only {
        // Credit-mode coverage: backpressure must never deadlock a
        // provisioned fabric — every steady-state flow still delivers.
        let fabric = HfastFabric::new(prov);
        let out = Simulation::new(&fabric)
            .with_congestion(CreditConfig::credit(CREDITS))
            .run(flows);
        assert_eq!(
            out.stats.completed,
            flows.len(),
            "{strategy}: credit-mode replay lost flows (deadlock or unrouted)"
        );
        return Cell {
            strategy: strategy.as_str(),
            blocks,
            ports_per_node,
            cost_ratio: cmp.ratio(),
            coverage_pct,
            completed: 0,
            makespan_ns: 0,
            top_class: "-".into(),
            circuit_busy_pct: 0.0,
            congestion_spread: 0.0,
            stall_ns: 0,
        };
    }

    // Traced replay on the provisioned fabric: where does congestion land?
    let fabric = HfastFabric::new(prov);
    let rec = TraceRecorder::new();
    let out = Simulation::new(&fabric).with_trace(&rec).run(flows);
    let loads = rank_hotspots(&rec.snapshot());
    let transit: Vec<_> = loads
        .iter()
        .filter(|l| fabric.link_class(l.link) != "fiber")
        .collect();
    let busy_total: u64 = transit.iter().map(|l| l.busy_ns).sum();
    let busy_circuit: u64 = transit
        .iter()
        .filter(|l| fabric.link_class(l.link) == "circuit")
        .map(|l| l.busy_ns)
        .sum();

    // Second replay under credit flow control: where does backpressure go?
    let credit_rec = TraceRecorder::new();
    Simulation::new(&fabric)
        .with_congestion(CreditConfig::credit(CREDITS))
        .with_trace(&credit_rec)
        .run(flows);
    let trees = congestion_trees(&credit_rec.snapshot());
    Cell {
        strategy: strategy.as_str(),
        blocks,
        ports_per_node,
        cost_ratio: cmp.ratio(),
        coverage_pct,
        completed: out.stats.completed,
        makespan_ns: out.stats.makespan_ns,
        top_class: transit
            .first()
            .map_or("-".into(), |l| fabric.link_class(l.link).to_string()),
        circuit_busy_pct: if busy_total == 0 {
            0.0
        } else {
            100.0 * busy_circuit as f64 / busy_total as f64
        },
        congestion_spread: trees.iter().map(|t| t.spread_ratio).fold(0.0, f64::max),
        stall_ns: trees.iter().map(|t| t.stall_ns).sum(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_only = args.iter().any(|a| a == "--check");
    let filter: Option<String> = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .map(|s| s.to_lowercase());

    println!("== provisioner bake-off: apps x strategies at P = {PROCS} ==\n");
    let mut golden_failures = 0usize;
    for app in &all_apps() {
        if let Some(f) = &filter {
            if !app.name().to_lowercase().contains(f.as_str()) {
                continue;
            }
        }
        let row = measure_app(app.as_ref(), PROCS);
        let graph = row.steady.comm_graph();
        let flows = traffic::flows_from_graph(&graph, CUTOFF);

        // PR-6 golden: the paper heuristic through the trait must be
        // bit-identical to the pre-refactor `Provisioning::per_node`.
        let digest = Provisioning::digest(
            &Strategy::PaperLinear
                .provisioner()
                .provision(&graph, ProvisionConfig::default()),
        );
        let golden = PAPER_LINEAR_GOLDENS
            .iter()
            .find(|(n, _)| *n == row.name)
            .map(|(_, d)| *d);
        let golden_ok = golden == Some(digest);
        if !golden_ok {
            golden_failures += 1;
        }

        println!(
            "{} ({} flows above cutoff)  paper_linear digest {digest:#018x} {}",
            row.name,
            flows.len(),
            if golden_ok {
                "[golden ok]"
            } else {
                "[GOLDEN MISMATCH]"
            }
        );
        println!(
            "  {:<14} {:>6} {:>10} {:>10} {:>9} {:>9} {:>12} {:>8} {:>12} {:>8} {:>12}",
            "strategy",
            "blocks",
            "ports/node",
            "cost-ratio",
            "coverage",
            "flows",
            "makespan-ns",
            "top-hot",
            "circuit-busy",
            "spread",
            "stall-ns"
        );
        for strategy in Strategy::ALL {
            let c = run_cell(strategy, &graph, &flows, check_only);
            println!(
                "  {:<14} {:>6} {:>10.2} {:>10.3} {:>8.1}% {:>9} {:>12} {:>8} {:>11.1}% {:>8.2} {:>12}",
                c.strategy,
                c.blocks,
                c.ports_per_node,
                c.cost_ratio,
                c.coverage_pct,
                c.completed,
                c.makespan_ns,
                c.top_class,
                c.circuit_busy_pct,
                c.congestion_spread,
                c.stall_ns
            );
        }
        println!();
    }
    if check_only {
        if golden_failures > 0 {
            eprintln!("FAIL: {golden_failures} paper_linear digests diverged from PR-6 goldens");
            std::process::exit(1);
        }
        println!(
            "bake-off check: all strategies valid on every cell, goldens match, \
             credit-mode replays deliver every flow"
        );
    } else {
        println!(
            "shape: paper_linear is linear-time but spends a block chain per \
             node; bff_circuit and demand_decomp consolidate matched pairs \
             onto shared blocks at higher provisioning cost. Congestion lands \
             on circuit-switched links for every strategy, and under credit \
             flow control the spread column shows backpressure staying near \
             its root instead of fanning out."
        );
    }
}
