//! Fault-tolerance experiment: node failures on a torus vs HFAST (§1's
//! qualitative argument, quantified).

use hfast_core::{hfast_fault_impact, seeded_failures, torus_fault_impact, ProvisionConfig};
use hfast_topology::generators::{balanced_dims3, mesh3d_graph};

fn main() {
    println!("== fault tolerance: torus vs HFAST ==\n");
    let p = 64;
    let dims = balanced_dims3(p);
    let app = mesh3d_graph(dims, 300 << 10);
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>18}",
        "failed", "unreachable", "max dilation", "hfast degraded", "hfast circuits Δ"
    );
    for k in [1usize, 2, 4, 8] {
        let failed = seeded_failures(k, p, 0x5C05);
        let torus = torus_fault_impact(dims, &failed);
        let hfast = hfast_fault_impact(&app, ProvisionConfig::default(), &failed);
        println!(
            "{:>8} {:>12} {:>12.2} {:>14} {:>18}",
            k,
            torus.unreachable_pairs,
            torus.max_dilation,
            hfast.survivors_degraded,
            hfast.circuits_changed
        );
    }
    println!(
        "\nshape: the torus pays growing path dilation (and can partition); \
         HFAST re-provisions and surviving pairs keep dedicated routes."
    );
}
