//! Fault-replay experiment: seeded link failures during a bulk-synchronous
//! exchange step, replayed on fat-tree vs HFAST (paper §1's reliability
//! argument, quantified in goodput).
//!
//! For each application and failure rate, the same seed picks which
//! fraction of each fabric's *transit* links (interior hops actually
//! carried by the app's traffic — never the endpoint fibers) fail at the
//! start of the exchange, permanently. The fat tree has one route per
//! pair: crossing flows burn their retry budget and are abandoned. HFAST
//! drops affected pairs onto the collective tree, keeps delivering, and
//! repatches the failed circuits through the MEMS crossbar at the next
//! synchronization point.
//!
//! Exits non-zero if HFAST fails to deliver strictly more goodput than the
//! fat tree on any (app, rate) cell.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::{
    traffic, transit_links, Fabric, FatTreeFabric, FaultPlan, HfastFabric, RetryPolicy, Simulation,
};

const PROCS: usize = 64;
const RATES: [f64; 3] = [0.05, 0.15, 0.30];
const SEED: u64 = 0x5C05;
const SYNC_INTERVAL_NS: u64 = 2_000_000;

fn goodput(fabric: &dyn Fabric, flows: &[traffic::Flow], rate: f64, reprovision: bool) -> f64 {
    let offered: u64 = flows.iter().map(|f| f.bytes).sum();
    if offered == 0 {
        return 1.0;
    }
    let eligible = transit_links(fabric, flows);
    let count = ((eligible.len() as f64 * rate).ceil() as usize).max(1);
    let plan = FaultPlan::builder()
        .random_link_failures(SEED, count, &eligible, (0, 0), None)
        .build(fabric)
        .expect("valid plan");
    let mut sim = Simulation::new(fabric)
        .with_faults(&plan)
        .with_retry(RetryPolicy::default());
    if reprovision {
        sim = sim.with_reprovision(SYNC_INTERVAL_NS);
    }
    let out = sim.run(flows);
    out.stats.delivered_bytes as f64 / offered as f64
}

fn main() {
    println!("== fault replay: goodput under seeded link failures ==\n");
    println!(
        "{:>9} {:>6} {:>10} {:>10}   (goodput = delivered/offered bytes)",
        "code", "rate", "fat-tree", "hfast"
    );
    let apps = all_apps();
    let mut violations = 0usize;
    let mut skipped = 0usize;
    for app in &apps {
        let row = measure_app(app.as_ref(), PROCS);
        let graph = row.steady.comm_graph();
        let flows = traffic::flows_from_graph(&graph, 2048);
        if flows.is_empty() {
            println!(
                "{:>9}   (no steady-state flows above cutoff, skipped)",
                row.name
            );
            skipped += 1;
            continue;
        }
        let ft = FatTreeFabric::new(PROCS, 8).expect("valid shape");
        let hf = HfastFabric::new(PaperLinear.provision(&graph, ProvisionConfig::default()));
        for rate in RATES {
            let g_ft = goodput(&ft, &flows, rate, false);
            let g_hf = goodput(&hf, &flows, rate, true);
            let mark = if g_hf > g_ft {
                ""
            } else {
                violations += 1;
                "  <-- HFAST did not win"
            };
            println!(
                "{:>9} {:>6.2} {:>10.4} {:>10.4}{mark}",
                row.name, rate, g_ft, g_hf
            );
        }
    }
    if skipped > 0 {
        println!("\n({skipped} apps skipped: no flows to replay)");
    }
    println!(
        "\nshape: the single-path fat tree abandons every flow crossing a \
         dead link; HFAST rides the collective tree and repatches circuits \
         at the next sync point, so goodput stays at 1.0."
    );
    if violations > 0 {
        eprintln!("FAIL: {violations} cells where HFAST goodput <= fat-tree");
        std::process::exit(1);
    }
}
