//! Extension experiment: replay each application's steady-state traffic on
//! fat-tree, torus, and HFAST fabrics and compare delivered latency.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::{simulate, traffic, FatTreeFabric, HfastFabric, TorusFabric};
use hfast_topology::generators::balanced_dims3;

fn main() {
    println!("== netsim: per-app latency on fat-tree / torus / HFAST ==\n");
    let procs = 64;
    println!(
        "{:>9} {:>14} {:>14} {:>14}   (p50 latency ns)",
        "code", "fat-tree", "torus", "hfast"
    );
    for app in all_apps() {
        let row = measure_app(app.as_ref(), procs);
        let graph = row.steady.comm_graph();
        let flows = traffic::flows_from_graph(&graph, 2048);
        if flows.is_empty() {
            continue;
        }
        let ft = FatTreeFabric::new(procs, 8);
        let torus = TorusFabric::new(balanced_dims3(procs));
        let hfast = HfastFabric::new(Provisioning::per_node(
            &graph,
            ProvisionConfig::default(),
        ));
        let s_ft = simulate(&ft, &flows);
        let s_to = simulate(&torus, &flows);
        let s_hf = simulate(&hfast, &flows);
        println!(
            "{:>9} {:>14} {:>14} {:>14}",
            row.name, s_ft.p50_latency_ns, s_to.p50_latency_ns, s_hf.p50_latency_ns
        );
    }
    println!(
        "\nshape: HFAST tracks the best fabric for low-TDC codes; the \
         all-to-all codes (PARATEC) favor the fat tree."
    );
}
