//! Extension experiment: replay each application's steady-state traffic on
//! fat-tree, torus, and HFAST fabrics and compare delivered latency.
//!
//! Apps are measured and simulated on worker threads (`HFAST_THREADS=1`
//! forces sequential); rows print in application order either way.

use hfast_apps::all_apps;
use hfast_bench::measure_app;
use hfast_core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{traffic, FatTreeFabric, HfastFabric, Simulation, TorusFabric};
use hfast_topology::generators::balanced_dims3;

fn main() {
    println!("== netsim: per-app latency on fat-tree / torus / HFAST ==\n");
    let procs = 64;
    println!(
        "{:>9} {:>14} {:>14} {:>14}   (p50 latency ns)",
        "code", "fat-tree", "torus", "hfast"
    );
    let app_count = all_apps().len();
    let results = hfast_par::par_map((0..app_count).collect::<Vec<_>>(), |i| {
        let apps = all_apps();
        let row = measure_app(apps[i].as_ref(), procs);
        let graph = row.steady.comm_graph();
        let flows = traffic::flows_from_graph(&graph, 2048);
        if flows.is_empty() {
            return None;
        }
        let ft = FatTreeFabric::new(procs, 8).expect("valid shape");
        let torus = TorusFabric::new(balanced_dims3(procs)).expect("valid shape");
        let hfast = HfastFabric::new(PaperLinear.provision(&graph, ProvisionConfig::default()));
        // One path cache per fabric: each app replays the same (src, dst)
        // pairs many times over, so routes are resolved once.
        let mut cache = PathCache::new();
        let s_ft = Simulation::new(&ft)
            .with_cache(&mut cache)
            .run(&flows)
            .stats;
        cache.clear();
        let s_to = Simulation::new(&torus)
            .with_cache(&mut cache)
            .run(&flows)
            .stats;
        cache.clear();
        let s_hf = Simulation::new(&hfast)
            .with_cache(&mut cache)
            .run(&flows)
            .stats;
        Some((
            row.name,
            s_ft.p50_latency_ns,
            s_to.p50_latency_ns,
            s_hf.p50_latency_ns,
        ))
    });
    for (name, ft, torus, hfast) in results.into_iter().flatten() {
        println!("{name:>9} {ft:>14} {torus:>14} {hfast:>14}");
    }
    println!(
        "\nshape: HFAST tracks the best fabric for low-TDC codes; the \
         all-to-all codes (PARATEC) favor the fat tree."
    );
}
