//! Regenerates paper Figure 9: volume matrix and TDC-vs-cutoff curves.

use hfast_apps::Pmemd;
use hfast_bench::figures::app_figure;

fn main() {
    print!("{}", app_figure(&Pmemd::default(), 9));
}
