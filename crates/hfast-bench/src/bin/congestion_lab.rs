//! Congestion lab: adversarial scenarios × fabrics × provisioner
//! strategies under credit-based flow control.
//!
//! The paper's §2.4 claim — HFAST's circuit-provisioned transit links
//! *isolate* heavy flows — was asserted, not measured, while the
//! simulator modeled links as ideal FIFO servers. This lab measures it:
//! every [`ScenarioKind`] replays with [`CongestionMode::Credit`] (finite
//! per-link buffers, head-of-line blocking) on a fat tree and on an
//! HFAST fabric provisioned for the scenario's own traffic by each
//! [`Strategy`], and the `stall` spans are folded into the
//! congestion-tree reports of arXiv 1907.05312.
//!
//! Per cell the table reports tree count, deepest tree, total stalled
//! time, the worst tree's **spread ratio** (victims over flows crossing
//! the root), **off-root victims** (flows delayed by the tree that never
//! traverse the root link — the paper's headline casualty class), and
//! the link-utilization spread (max/mean and Gini).
//!
//! `--check` is the CI smoke; it exits non-zero unless
//! - HFAST's congestion spread is strictly lower than the fat tree's on
//!   **every** scenario × strategy cell,
//! - the fat tree shows off-root victims on the incast scenario (real
//!   congestion-tree collateral, not just queueing at the hot link), and
//! - `CongestionMode::Ideal` replays a seeded suite byte-identically to
//!   a run that never mentions congestion.
//!
//! [`CongestionMode::Credit`]: hfast_netsim::CongestionMode::Credit

use hfast_core::{ProvisionConfig, Strategy};
use hfast_netsim::scenario::tenant_slowdown;
use hfast_netsim::{
    traffic, CreditConfig, Fabric, FatTreeFabric, Flow, HfastFabric, Scenario, ScenarioKind,
    SimOutput, Simulation, TorusFabric,
};
use hfast_trace::{congestion_trees, rank_hotspots, utilization_spread, TraceRecorder};

/// Endpoint universe for every scenario (one pod-rich fat tree's worth).
const NODES: usize = 64;
/// One seed defines the whole lab.
const SEED: u64 = 0xC0DE;
/// Buffer slots per link: shallow buffers make trees form fast, which is
/// the point — the lab studies spread, not capacity.
const CREDITS: u32 = 1;

/// Everything a cell's traced credit-mode replay is judged on.
struct CellMetrics {
    completed: usize,
    makespan_ns: u64,
    trees: usize,
    deepest: usize,
    stall_ns: u64,
    /// Worst tree's victims / root-crossing flows (0 when no tree).
    spread: f64,
    /// Victims that never cross their tree's root, summed over trees.
    off_root: usize,
    max_over_mean: f64,
    gini: f64,
}

fn run_cell(fabric: &dyn Fabric, flows: &[Flow]) -> CellMetrics {
    let rec = TraceRecorder::new();
    let out = Simulation::new(fabric)
        .with_congestion(CreditConfig::credit(CREDITS))
        .with_trace(&rec)
        .run(flows);
    let spans = rec.snapshot();
    let trees = congestion_trees(&spans);
    let spread_stats = utilization_spread(&rank_hotspots(&spans));
    CellMetrics {
        completed: out.stats.completed,
        makespan_ns: out.stats.makespan_ns,
        trees: trees.len(),
        deepest: trees.iter().map(|t| t.depth).max().unwrap_or(0),
        stall_ns: trees.iter().map(|t| t.stall_ns).sum(),
        spread: trees.iter().map(|t| t.spread_ratio).fold(0.0, f64::max),
        off_root: trees.iter().map(|t| t.off_root_victims).sum(),
        max_over_mean: spread_stats.max_over_mean,
        gini: spread_stats.gini,
    }
}

fn print_cell(label: &str, m: &CellMetrics) {
    println!(
        "  {label:<16} {:>6} {:>12} {:>6} {:>6} {:>12} {:>8.2} {:>9} {:>9.1} {:>6.3}",
        m.completed,
        m.makespan_ns,
        m.trees,
        m.deepest,
        m.stall_ns,
        m.spread,
        m.off_root,
        m.max_over_mean,
        m.gini
    );
}

/// FNV-1a digest matching the eventloop golden tests (stats + records).
fn digest(out: &SimOutput) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    let s = &out.stats;
    for v in [
        s.completed as u64,
        s.unrouted as u64,
        s.abandoned as u64,
        s.total_retries,
        s.delivered_bytes,
        s.makespan_ns,
        s.p50_latency_ns,
        s.p95_latency_ns,
        s.max_latency_ns,
        s.avg_hops.to_bits(),
        s.max_link_utilization.to_bits(),
        s.throughput.to_bits(),
    ] {
        mix(v);
    }
    if let Some(records) = &out.records {
        for r in records {
            mix(r.flow as u64);
            mix(r.start_ns);
            mix(r.end_ns.map_or(u64::MAX, |e| e));
            mix(r.hops as u64);
            mix(u64::from(r.retries));
            mix(u64::from(r.abandoned));
        }
    }
    h
}

/// `Ideal` must be byte-identical to a builder that never mentions
/// congestion — the cheap in-lab form of the golden identity the
/// eventloop suite pins in full.
fn check_ideal_identity() {
    let torus = TorusFabric::new((4, 4, 2)).unwrap();
    let flows = traffic::uniform_random(32, 2_000, 4096, 500_000, SEED);
    let plain = digest(&Simulation::new(&torus).detailed().run(&flows));
    let ideal = digest(
        &Simulation::new(&torus)
            .with_congestion(CreditConfig::default())
            .detailed()
            .run(&flows),
    );
    assert_eq!(
        plain, ideal,
        "CongestionMode::Ideal diverged from the plain event loop"
    );
    println!("ideal identity: digest {plain:#018x} (plain == ideal)\n");
}

/// Per-tenant interference on the multi-tenant scenario: the light
/// tenant's p95 slowdown (shared vs solo) on each fabric.
fn tenant_report(scenario: &Scenario, fabric: &dyn Fabric) -> f64 {
    let (flows, tenants) = scenario.flows_with_tenants();
    let run = |fs: &[Flow]| {
        Simulation::new(fabric)
            .with_congestion(CreditConfig::credit(CREDITS))
            .detailed()
            .run(fs)
            .records()
            .to_vec()
    };
    let shared = run(&flows);
    let solos = vec![
        run(&scenario.tenant_flows(0)),
        run(&scenario.tenant_flows(1)),
    ];
    let report = tenant_slowdown(&tenants, &shared, &solos);
    report[1].slowdown
}

fn main() {
    let check = std::env::args().skip(1).any(|a| a == "--check");
    println!("== congestion lab: scenarios x fabrics x strategies ==");
    println!("   {NODES} nodes, credit flow control ({CREDITS} slot/link), seed {SEED:#x}\n");
    check_ideal_identity();

    let fat = FatTreeFabric::new(NODES, 8).unwrap();
    let mut violations: Vec<String> = Vec::new();
    let mut incast_fat_off_root = 0usize;

    for kind in ScenarioKind::ALL {
        let scenario = Scenario::preset(kind, NODES, SEED);
        scenario
            .validate_for(&fat)
            .expect("scenario fits the fat tree");
        let flows = scenario.generate();
        println!("{kind} ({} flows)", flows.len());
        println!(
            "  {:<16} {:>6} {:>12} {:>6} {:>6} {:>12} {:>8} {:>9} {:>9} {:>6}",
            "fabric",
            "flows",
            "makespan-ns",
            "trees",
            "depth",
            "stall-ns",
            "spread",
            "off-root",
            "max/mean",
            "gini"
        );
        let fat_m = run_cell(&fat, &flows);
        print_cell("fat-tree", &fat_m);
        if kind == ScenarioKind::Incast {
            incast_fat_off_root = fat_m.off_root;
        }

        for strategy in Strategy::ALL {
            let hf = HfastFabric::provisioned(
                &scenario.comm_graph(),
                ProvisionConfig::default(),
                strategy,
            );
            scenario.validate_for(&hf).expect("scenario fits HFAST");
            let m = run_cell(&hf, &flows);
            print_cell(&format!("hfast/{strategy}"), &m);
            if m.spread >= fat_m.spread {
                violations.push(format!(
                    "{kind} x {strategy}: hfast spread {:.2} >= fat-tree {:.2}",
                    m.spread, fat_m.spread
                ));
            }
        }

        if kind == ScenarioKind::MultiTenant {
            let hf = HfastFabric::provisioned(
                &scenario.comm_graph(),
                ProvisionConfig::default(),
                Strategy::PaperLinear,
            );
            let (fat_slow, hf_slow) = (
                tenant_report(&scenario, &fat),
                tenant_report(&scenario, &hf),
            );
            println!(
                "  light-tenant p95 slowdown (shared/solo): fat-tree {fat_slow:.2}x, \
                 hfast/paper_linear {hf_slow:.2}x"
            );
        }
        println!();
    }

    if check {
        let mut failed = false;
        if !violations.is_empty() {
            failed = true;
            for v in &violations {
                eprintln!("FAIL: {v}");
            }
        }
        if incast_fat_off_root == 0 {
            failed = true;
            eprintln!("FAIL: fat-tree incast produced no off-root victims — no congestion tree");
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "congestion check: hfast spread < fat-tree on every scenario x strategy cell, \
             fat-tree incast shows {incast_fat_off_root} off-root victims"
        );
    } else {
        println!(
            "shape: the fat tree's shared interior links let one saturated link \
             stall flows that never touch it, while hfast pins heavy pairs to \
             dedicated circuits and keeps probe traffic on per-node tree links — \
             congestion stays at the root instead of spreading."
        );
    }
}
