//! Measurement: run a kernel and reduce its profile to a Table 3 row.

use hfast_apps::{profile_app, CommKernel};
use hfast_ipm::CommProfile;
use hfast_topology::{fcn_utilization, tdc, BDP_CUTOFF};

/// A measured Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRow {
    /// Application name.
    pub name: &'static str,
    /// Processor count.
    pub procs: usize,
    /// % point-to-point calls.
    pub ptp_pct: f64,
    /// Median PTP buffer (bytes).
    pub median_ptp: u64,
    /// % collective calls.
    pub col_pct: f64,
    /// Median collective buffer (bytes).
    pub median_col: u64,
    /// Max TDC at the 2 KB cutoff.
    pub tdc_max: usize,
    /// Average TDC at the 2 KB cutoff.
    pub tdc_avg: f64,
    /// Max TDC without thresholding.
    pub tdc_max_uncut: usize,
    /// Average TDC without thresholding.
    pub tdc_avg_uncut: f64,
    /// FCN utilization (avg TDC / (P−1)).
    pub fcn_util_pct: f64,
    /// The steady-state profile behind the row (for figure binaries).
    pub steady: CommProfile,
}

/// Profiles `app` at `procs` ranks and reduces the steady-state region to
/// the paper's Table 3 metrics.
pub fn measure_app(app: &dyn CommKernel, procs: usize) -> AppRow {
    let outcome = profile_app(app, procs).unwrap_or_else(|e| {
        panic!("{} at P={procs} failed: {e}", app.name());
    });
    let steady = outcome.steady;
    let graph = steady.comm_graph();
    let cut = tdc(&graph, BDP_CUTOFF);
    let uncut = tdc(&graph, 0);
    AppRow {
        name: app.name(),
        procs,
        ptp_pct: 100.0 * steady.ptp_call_fraction(),
        median_ptp: steady.ptp_buffer_histogram().median().unwrap_or(0),
        col_pct: 100.0 * steady.collective_call_fraction(),
        median_col: steady.collective_buffer_histogram().median().unwrap_or(0),
        tdc_max: cut.max,
        tdc_avg: cut.avg,
        tdc_max_uncut: uncut.max,
        tdc_avg_uncut: uncut.avg,
        fcn_util_pct: 100.0 * fcn_utilization(&graph, BDP_CUTOFF),
        steady,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_apps::Cactus;

    #[test]
    fn measured_row_is_coherent() {
        let row = measure_app(&Cactus::new(4), 27);
        assert_eq!(row.name, "Cactus");
        assert!((row.ptp_pct + row.col_pct - 100.0).abs() < 1e-9);
        assert_eq!(row.tdc_max, 6);
        assert!(row.tdc_avg <= row.tdc_max as f64);
        assert!(row.fcn_util_pct > 0.0 && row.fcn_util_pct <= 100.0);
    }
}
