//! Measurement: run a kernel and reduce its profile to a Table 3 row.

use hfast_apps::{profile_app, CommKernel};
use hfast_ipm::CommProfile;
use hfast_topology::{fcn_utilization, tdc, BDP_CUTOFF};

/// A measured Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRow {
    /// Application name.
    pub name: &'static str,
    /// Processor count.
    pub procs: usize,
    /// % point-to-point calls.
    pub ptp_pct: f64,
    /// Median PTP buffer (bytes).
    pub median_ptp: u64,
    /// % collective calls.
    pub col_pct: f64,
    /// Median collective buffer (bytes).
    pub median_col: u64,
    /// Max TDC at the 2 KB cutoff.
    pub tdc_max: usize,
    /// Average TDC at the 2 KB cutoff.
    pub tdc_avg: f64,
    /// Max TDC without thresholding.
    pub tdc_max_uncut: usize,
    /// Average TDC without thresholding.
    pub tdc_avg_uncut: f64,
    /// FCN utilization (avg TDC / (P−1)).
    pub fcn_util_pct: f64,
    /// The steady-state profile behind the row (for figure binaries).
    pub steady: CommProfile,
}

/// Profiles `app` at `procs` ranks and reduces the steady-state region to
/// the paper's Table 3 metrics.
pub fn measure_app(app: &dyn CommKernel, procs: usize) -> AppRow {
    let outcome = profile_app(app, procs).unwrap_or_else(|e| {
        panic!("{} at P={procs} failed: {e}", app.name());
    });
    let steady = outcome.steady;
    let graph = steady.comm_graph();
    let cut = tdc(&graph, BDP_CUTOFF);
    let uncut = tdc(&graph, 0);
    AppRow {
        name: app.name(),
        procs,
        ptp_pct: 100.0 * steady.ptp_call_fraction(),
        median_ptp: steady.ptp_buffer_histogram().median().unwrap_or(0),
        col_pct: 100.0 * steady.collective_call_fraction(),
        median_col: steady.collective_buffer_histogram().median().unwrap_or(0),
        tdc_max: cut.max,
        tdc_avg: cut.avg,
        tdc_max_uncut: uncut.max,
        tdc_avg_uncut: uncut.avg,
        fcn_util_pct: 100.0 * fcn_utilization(&graph, BDP_CUTOFF),
        steady,
    }
}

/// Measures many `(app index, procs)` cells of the study grid in parallel.
///
/// App indices refer to [`all_apps`](hfast_apps::all_apps) order. Results
/// come back in input order regardless of thread scheduling, and each cell's
/// profile run is independent and internally deterministic, so the output is
/// byte-identical to measuring the cells one by one (`HFAST_THREADS=1`
/// forces exactly that).
pub fn measure_cells(cells: &[(usize, usize)]) -> Vec<AppRow> {
    hfast_par::par_map(cells.to_vec(), |(app_idx, procs)| {
        let apps = hfast_apps::all_apps();
        measure_app(apps[app_idx].as_ref(), procs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_apps::Cactus;

    #[test]
    fn parallel_cells_match_sequential() {
        // Wall-clock call timings inside the profile differ run to run;
        // every derived statistic (the published numbers) must not.
        fn deterministic_view(r: &AppRow) -> impl PartialEq + std::fmt::Debug {
            (
                r.name,
                r.procs,
                r.ptp_pct.to_bits(),
                r.median_ptp,
                r.col_pct.to_bits(),
                r.median_col,
                r.tdc_max,
                r.tdc_avg.to_bits(),
                r.tdc_max_uncut,
                r.tdc_avg_uncut.to_bits(),
                r.fcn_util_pct.to_bits(),
                r.steady.comm_graph(),
            )
        }
        let cells = [(0usize, 16usize), (0, 27), (1, 16)];
        let par = measure_cells(&cells);
        let seq: Vec<AppRow> = cells
            .iter()
            .map(|&(i, p)| measure_app(hfast_apps::all_apps()[i].as_ref(), p))
            .collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(deterministic_view(p), deterministic_view(s));
        }
    }

    #[test]
    fn measured_row_is_coherent() {
        let row = measure_app(&Cactus::new(4), 27);
        assert_eq!(row.name, "Cactus");
        assert!((row.ptp_pct + row.col_pct - 100.0).abs() < 1e-9);
        assert_eq!(row.tdc_max, 6);
        assert!(row.tdc_avg <= row.tdc_max as f64);
        assert!(row.fcn_util_pct > 0.0 && row.fcn_util_pct <= 100.0);
    }
}
