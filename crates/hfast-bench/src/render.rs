//! Terminal rendering helpers shared by the experiment binaries.

use hfast_ipm::format_bytes;
use hfast_topology::{tdc_sweep, CommGraph, TdcSummary, PAPER_CUTOFFS};

use crate::measure::AppRow;
use crate::paper::PaperRow;

/// Renders a measured-vs-paper Table 3 row pair.
pub fn table3_rows(measured: &AppRow, paper: Option<&PaperRow>) -> String {
    let mut out = format!(
        "{:<8} {:>4}  measured  {:>5.1}% {:>8} {:>6.1}% {:>6} {:>6},{:<7.1} {:>5.0}%\n",
        measured.name,
        measured.procs,
        measured.ptp_pct,
        format_bytes(measured.median_ptp),
        measured.col_pct,
        format_bytes(measured.median_col),
        measured.tdc_max,
        measured.tdc_avg,
        measured.fcn_util_pct,
    );
    if let Some(p) = paper {
        out.push_str(&format!(
            "{:<8} {:>4}  paper     {:>5.1}% {:>8} {:>6.1}% {:>6} {:>6},{:<7.1} {:>5.0}%\n",
            p.name,
            p.procs,
            p.ptp_pct,
            format_bytes(p.median_ptp),
            p.col_pct,
            format_bytes(p.median_col),
            p.tdc_max,
            p.tdc_avg,
            p.fcn_util_pct,
        ));
    }
    out
}

/// Header matching [`table3_rows`].
pub fn table3_header() -> String {
    format!(
        "{:<8} {:>4}  {:<8}  {:>6} {:>8} {:>7} {:>6} {:>14} {:>6}\n{}\n",
        "code",
        "P",
        "source",
        "%PTP",
        "medPTP",
        "%Col",
        "medCol",
        "TDC@2k(max,avg)",
        "FCNutil",
        "-".repeat(84)
    )
}

/// Renders a TDC-versus-cutoff sweep (the (b) panels of Figures 5-10) as an
/// aligned text table with `max` and `avg` series.
pub fn tdc_sweep_table(graph: &CommGraph, label: &str) -> String {
    let sweep = tdc_sweep(graph, &PAPER_CUTOFFS);
    let mut out = format!("TDC vs cutoff — {label}\n");
    out.push_str(&format!("{:>8} {:>6} {:>8}\n", "cutoff", "max", "avg"));
    for (cutoff, TdcSummary { max, avg, .. }) in sweep {
        out.push_str(&format!(
            "{:>8} {:>6} {:>8.1}\n",
            format_bytes(cutoff),
            max,
            avg
        ));
    }
    out
}

/// An ASCII sparkline of a cumulative distribution for terminal output.
pub fn cdf_line(points: &[(u64, f64)], width: usize) -> String {
    const BARS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if points.is_empty() {
        return String::new();
    }
    let max_x = points.last().expect("non-empty").0 as f64;
    let mut out = String::with_capacity(width);
    for i in 0..width {
        // Log-scale the x axis like the paper's buffer-size plots.
        let x = if max_x <= 1.0 {
            1.0
        } else {
            (max_x.ln() * (i as f64 + 1.0) / width as f64).exp()
        };
        let frac = points
            .iter()
            .take_while(|(b, _)| (*b as f64) <= x)
            .last()
            .map_or(0.0, |(_, f)| *f);
        let idx = (frac * (BARS.len() - 1) as f64).round() as usize;
        out.push(BARS[idx.min(BARS.len() - 1)]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_topology::generators::ring_graph;

    #[test]
    fn sweep_table_contains_all_cutoffs() {
        let g = ring_graph(8, 100_000);
        let t = tdc_sweep_table(&g, "ring");
        assert!(t.contains("ring"));
        assert_eq!(t.lines().count(), 2 + PAPER_CUTOFFS.len());
        assert!(t.contains("1MB"));
    }

    #[test]
    fn cdf_line_is_monotone_glyphs() {
        let points = vec![(8u64, 0.25), (64, 0.5), (1024, 1.0)];
        let line = cdf_line(&points, 20);
        assert_eq!(line.chars().count(), 20);
        let levels: Vec<usize> = line
            .chars()
            .map(|c| " ▁▂▃▄▅▆▇█".chars().position(|b| b == c).unwrap())
            .collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*levels.last().unwrap(), 8, "ends at 100%");
    }

    #[test]
    fn empty_cdf_is_empty() {
        assert!(cdf_line(&[], 10).is_empty());
    }
}
