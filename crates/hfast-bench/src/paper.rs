//! The paper's published numbers, transcribed for side-by-side comparison.

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Application name.
    pub name: &'static str,
    /// Processor count.
    pub procs: usize,
    /// % of calls that are point-to-point.
    pub ptp_pct: f64,
    /// Median point-to-point buffer in bytes.
    pub median_ptp: u64,
    /// % of calls that are collectives.
    pub col_pct: f64,
    /// Median collective buffer in bytes.
    pub median_col: u64,
    /// Max TDC at the 2 KB cutoff.
    pub tdc_max: usize,
    /// Average TDC at the 2 KB cutoff.
    pub tdc_avg: f64,
    /// FCN utilization (avg) as published.
    pub fcn_util_pct: f64,
}

/// Paper Table 3, verbatim (buffer sizes: `k` read as KiB; SuperLU's P=256
/// FCN utilization of 25 % is inconsistent with avgTDC/(P−1) — see
/// EXPERIMENTS.md).
pub const PAPER_TABLE3: [PaperRow; 12] = [
    PaperRow {
        name: "GTC",
        procs: 64,
        ptp_pct: 42.0,
        median_ptp: 128 << 10,
        col_pct: 58.0,
        median_col: 100,
        tdc_max: 2,
        tdc_avg: 2.0,
        fcn_util_pct: 3.0,
    },
    PaperRow {
        name: "GTC",
        procs: 256,
        ptp_pct: 40.2,
        median_ptp: 128 << 10,
        col_pct: 59.8,
        median_col: 100,
        tdc_max: 10,
        tdc_avg: 4.0,
        fcn_util_pct: 2.0,
    },
    PaperRow {
        name: "Cactus",
        procs: 64,
        ptp_pct: 99.4,
        median_ptp: 299 << 10,
        col_pct: 0.6,
        median_col: 8,
        tdc_max: 6,
        tdc_avg: 5.0,
        fcn_util_pct: 9.0,
    },
    PaperRow {
        name: "Cactus",
        procs: 256,
        ptp_pct: 99.5,
        median_ptp: 300 << 10,
        col_pct: 0.5,
        median_col: 8,
        tdc_max: 6,
        tdc_avg: 5.0,
        fcn_util_pct: 2.0,
    },
    PaperRow {
        name: "LBMHD",
        procs: 64,
        ptp_pct: 99.8,
        median_ptp: 811 << 10,
        col_pct: 0.2,
        median_col: 8,
        tdc_max: 12,
        tdc_avg: 11.5,
        fcn_util_pct: 19.0,
    },
    PaperRow {
        name: "LBMHD",
        procs: 256,
        ptp_pct: 99.9,
        median_ptp: 848 << 10,
        col_pct: 0.1,
        median_col: 8,
        tdc_max: 12,
        tdc_avg: 11.8,
        fcn_util_pct: 5.0,
    },
    PaperRow {
        name: "SuperLU",
        procs: 64,
        ptp_pct: 89.8,
        median_ptp: 64,
        col_pct: 10.2,
        median_col: 24,
        tdc_max: 14,
        tdc_avg: 14.0,
        fcn_util_pct: 22.0,
    },
    PaperRow {
        name: "SuperLU",
        procs: 256,
        ptp_pct: 92.8,
        median_ptp: 48,
        col_pct: 7.2,
        median_col: 24,
        tdc_max: 30,
        tdc_avg: 30.0,
        fcn_util_pct: 25.0,
    },
    PaperRow {
        name: "PMEMD",
        procs: 64,
        ptp_pct: 99.1,
        median_ptp: 6 << 10,
        col_pct: 0.9,
        median_col: 768,
        tdc_max: 63,
        tdc_avg: 63.0,
        fcn_util_pct: 100.0,
    },
    PaperRow {
        name: "PMEMD",
        procs: 256,
        ptp_pct: 98.6,
        median_ptp: 72,
        col_pct: 1.4,
        median_col: 768,
        tdc_max: 255,
        tdc_avg: 55.0,
        fcn_util_pct: 22.0,
    },
    PaperRow {
        name: "PARATEC",
        procs: 64,
        ptp_pct: 99.5,
        median_ptp: 64,
        col_pct: 0.5,
        median_col: 8,
        tdc_max: 63,
        tdc_avg: 63.0,
        fcn_util_pct: 100.0,
    },
    PaperRow {
        name: "PARATEC",
        procs: 256,
        ptp_pct: 99.9,
        median_ptp: 64,
        col_pct: 0.1,
        median_col: 4,
        tdc_max: 255,
        tdc_avg: 255.0,
        fcn_util_pct: 100.0,
    },
];

/// Looks up the paper row for an app/size pair.
pub fn paper_row(name: &str, procs: usize) -> Option<PaperRow> {
    PAPER_TABLE3
        .iter()
        .copied()
        .find(|r| r.name == name && r.procs == procs)
}

/// Paper Figure 2's call-type mix per application, in percent.
pub fn paper_call_mix(name: &str) -> &'static [(&'static str, f64)] {
    match name {
        "Cactus" => &[
            ("MPI_Wait", 39.3),
            ("MPI_Irecv", 26.8),
            ("MPI_Isend", 26.8),
            ("MPI_Waitall", 6.5),
        ],
        "GTC" => &[
            ("MPI_Gather", 47.4),
            ("MPI_Sendrecv", 40.8),
            ("MPI_Allreduce", 10.9),
        ],
        "LBMHD" => &[
            ("MPI_Irecv", 40.0),
            ("MPI_Isend", 40.0),
            ("MPI_Waitall", 20.0),
        ],
        "PARATEC" => &[("MPI_Wait", 49.6), ("MPI_Isend", 25.1), ("MPI_Irecv", 24.8)],
        "PMEMD" => &[
            ("MPI_Waitany", 36.6),
            ("MPI_Isend", 32.7),
            ("MPI_Irecv", 29.3),
        ],
        "SuperLU" => &[
            ("MPI_Wait", 30.6),
            ("MPI_Isend", 16.4),
            ("MPI_Irecv", 15.7),
            ("MPI_Recv", 15.4),
            ("MPI_Send", 14.7),
            ("MPI_Bcast", 5.3),
        ],
        _ => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_all_app_size_pairs() {
        let apps = ["GTC", "Cactus", "LBMHD", "SuperLU", "PMEMD", "PARATEC"];
        for app in apps {
            for procs in [64, 256] {
                assert!(paper_row(app, procs).is_some(), "{app}@{procs}");
            }
        }
        assert!(paper_row("GTC", 128).is_none());
    }

    #[test]
    fn percentages_sum_to_100() {
        for r in PAPER_TABLE3 {
            assert!(
                (r.ptp_pct + r.col_pct - 100.0).abs() < 0.11,
                "{} @ {}",
                r.name,
                r.procs
            );
        }
    }

    #[test]
    fn call_mix_known_for_all_apps() {
        for app in ["Cactus", "GTC", "LBMHD", "SuperLU", "PMEMD", "PARATEC"] {
            assert!(!paper_call_mix(app).is_empty());
        }
        assert!(paper_call_mix("nope").is_empty());
    }
}
