//! End-to-end serving integration: a real daemon on an ephemeral port,
//! the closed-loop load generator over ≥4 connections, and the PR's
//! acceptance properties — no dropped or mismatched responses, a cache
//! hit-rate above 50% on the repeated mix, byte-identical digests across
//! worker counts, and a clean drain.

use hfast_bench::loadgen::{self, LoadConfig};
use hfast_serve::{start, Client, Request, Response, ServerConfig};

fn test_load() -> LoadConfig {
    LoadConfig {
        connections: 4,
        requests_per_connection: 30,
        seed: 0x00D1_6E57,
        procs: 8,
        warmup: true,
    }
}

fn server_config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

/// Runs one daemon with `workers` workers under the standard load; the
/// returned digest summarizes every response byte. Asserts the run was
/// clean and the drain completed.
fn digest_with_workers(workers: usize) -> u64 {
    let server = start("127.0.0.1:0", server_config(workers)).expect("bind");
    let addr = server.local_addr().to_string();
    let report = loadgen::run(&addr, &test_load());
    assert_eq!(
        report.dropped, 0,
        "dropped responses with {workers} workers"
    );
    assert_eq!(report.errors, 0, "error responses with {workers} workers");
    assert_eq!(report.busy, 0, "load was shed with {workers} workers");
    assert_eq!(
        report.ok, report.sent,
        "every sent request got a well-formed response"
    );

    // The warmed-up mix revisits a 24-request pool, so most lookups hit.
    let mut client = Client::connect(&addr).expect("connect");
    match client.call(&Request::Stats).expect("stats") {
        Response::Stats {
            cache_hits,
            cache_misses,
            ..
        } => assert!(
            cache_hits > cache_misses,
            "hit-rate should exceed 50%: {cache_hits} hits vs {cache_misses} misses"
        ),
        other => panic!("expected Stats, got {other:?}"),
    }
    client.call(&Request::Shutdown).expect("shutdown");
    drop(client);
    server.join(); // a hang here (test timeout) means drain broke
    report.digest
}

#[test]
fn four_connection_load_is_clean_and_worker_count_invariant() {
    let single = digest_with_workers(1);
    let pooled = digest_with_workers(8);
    assert_eq!(
        single, pooled,
        "same seed must produce byte-identical responses with 1 and 8 workers"
    );
}

#[test]
fn same_seed_same_digest_across_runs() {
    let a = digest_with_workers(4);
    let b = digest_with_workers(4);
    assert_eq!(a, b, "identical runs must produce identical digests");
}
