//! Benchmarks of the discrete-event simulator across fabrics and loads,
//! including the path-cache ablation: cold (routes recomputed every run)
//! versus warm (a reused [`PathCache`]).

use hfast_bench::Harness;
use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::engine::{simulate_with_cache, PathCache};
use hfast_netsim::{simulate, traffic, FatTreeFabric, HfastFabric, TorusFabric};
use hfast_topology::generators::{balanced_dims3, torus3d_graph};

fn main() {
    let mut h = Harness::new("netsim");

    let n = 64;
    let flows = traffic::alltoall(n, 32 << 10);
    let graph = torus3d_graph(balanced_dims3(n), 1 << 20);

    let ft = FatTreeFabric::new(n, 8);
    h.bench("netsim_alltoall_64/fat-tree", || {
        simulate(&ft, std::hint::black_box(&flows))
    });
    let torus = TorusFabric::new(balanced_dims3(n));
    h.bench("netsim_alltoall_64/torus", || {
        simulate(&torus, std::hint::black_box(&flows))
    });
    let hfast = HfastFabric::new(Provisioning::per_node(&graph, ProvisionConfig::default()));
    h.bench("netsim_alltoall_64/hfast", || {
        simulate(&hfast, std::hint::black_box(&flows))
    });

    // Pure engine throughput: many small flows over a big torus. The
    // uniform-random load repeats (src, dst) pairs heavily, so this is
    // also the path-cache ablation: `simulate` re-resolves routes every
    // call (cold), the warm case amortizes them across runs.
    let big = TorusFabric::new((8, 8, 8));
    let many = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    h.bench("netsim/20k-flows-512-torus/cold", || {
        simulate(&big, std::hint::black_box(&many))
    });
    let mut cache = PathCache::new();
    simulate_with_cache(&big, &many, &mut cache); // prime
    h.bench("netsim/20k-flows-512-torus/warm", || {
        simulate_with_cache(&big, std::hint::black_box(&many), &mut cache)
    });
    h.report_speedup(
        "path_cache_warm",
        "netsim/20k-flows-512-torus/cold",
        "netsim/20k-flows-512-torus/warm",
    );

    h.finish();
}
