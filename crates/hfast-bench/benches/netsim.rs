//! Benchmarks of the discrete-event simulator across fabrics and loads,
//! including the path-cache ablation: cold (routes recomputed every run)
//! versus warm (a reused [`PathCache`]), the observability ablation (an
//! attached [`EngineObs`] versus none), the causal-tracing ablation (an
//! attached [`TraceRecorder`] versus none), the fault-replay overhead,
//! and the trace-off overhead guard against the PR-3 baseline.

use hfast_bench::Harness;
use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{
    traffic, transit_links, EngineObs, FatTreeFabric, FaultPlan, HfastFabric, RetryPolicy,
    Simulation, TorusFabric,
};
use hfast_topology::generators::{balanced_dims3, torus3d_graph};
use hfast_trace::TraceRecorder;

/// A recorded statistic (`"median_ns"`, `"min_ns"`, …) of case `name` in
/// the JSONL-per-line file at `path_env`, if present. Works on both the
/// assembled `BENCH_<tag>.json` baseline (`HFAST_BENCH_BASELINE`) and the
/// current run's accumulating JSONL stream (`HFAST_BENCH_JSON`).
fn recorded_stat(path_env: &str, name: &str, key: &str) -> Option<f64> {
    let path = std::env::var(path_env).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"name\":\"{name}\"");
    let line = text.lines().find(|l| l.contains(&needle))?;
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut h = Harness::new("netsim");

    let n = 64;
    let flows = traffic::alltoall(n, 32 << 10);
    let graph = torus3d_graph(balanced_dims3(n), 1 << 20);

    let ft = FatTreeFabric::new(n, 8).expect("valid shape");
    h.bench("netsim_alltoall_64/fat-tree", || {
        Simulation::new(&ft).run(std::hint::black_box(&flows))
    });
    let torus = TorusFabric::new(balanced_dims3(n)).expect("valid shape");
    h.bench("netsim_alltoall_64/torus", || {
        Simulation::new(&torus).run(std::hint::black_box(&flows))
    });
    let hfast = HfastFabric::new(Provisioning::per_node(&graph, ProvisionConfig::default()));
    h.bench("netsim_alltoall_64/hfast", || {
        Simulation::new(&hfast).run(std::hint::black_box(&flows))
    });

    // Pure engine throughput: many small flows over a big torus. The
    // uniform-random load repeats (src, dst) pairs heavily, so this is
    // also the path-cache ablation: the cache-free run re-resolves routes
    // every call (cold), the warm case amortizes them across runs.
    let big = TorusFabric::new((8, 8, 8)).expect("valid shape");
    let many = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    h.bench("netsim/20k-flows-512-torus/cold", || {
        Simulation::new(&big).run(std::hint::black_box(&many))
    });
    let mut cache = PathCache::new();
    Simulation::new(&big).with_cache(&mut cache).run(&many); // prime
    h.bench("netsim/20k-flows-512-torus/warm", || {
        Simulation::new(&big)
            .with_cache(&mut cache)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "path_cache_warm",
        "netsim/20k-flows-512-torus/cold",
        "netsim/20k-flows-512-torus/warm",
    );

    // Observability ablation: the same cold run with counters, histograms,
    // and the link timeline attached.
    let obs = EngineObs::with_timeline_capacity(4096);
    h.bench("netsim/20k-flows-512-torus/obs-on", || {
        Simulation::new(&big)
            .with_obs(&obs)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "obs_off_vs_on",
        "netsim/20k-flows-512-torus/obs-on",
        "netsim/20k-flows-512-torus/cold",
    );

    // Causal-tracing ablation: the same cold run with a span recorder
    // attached — every hop and flow becomes a span record. A fresh
    // recorder per iteration keeps memory bounded and prices the span
    // drop alongside the push, which is what a real capture pays.
    h.bench("netsim/20k-flows-512-torus/trace-on", || {
        let rec = TraceRecorder::new();
        Simulation::new(&big)
            .with_trace(&rec)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "trace_off_vs_on",
        "netsim/20k-flows-512-torus/trace-on",
        "netsim/20k-flows-512-torus/cold",
    );

    // Fault-replay ablation: the same load with a seeded mid-run outage
    // (12 transit links down for 500 us each) and the default retry
    // policy. This prices the dynamic loop itself — stale-slot checks,
    // fault events, rerouting — against the fault-free run above.
    let eligible = transit_links(&big, &many);
    let plan = FaultPlan::builder()
        .random_link_failures(0x5C05, 12, &eligible, (0, 2_000_000), Some(500_000))
        .build(&big)
        .expect("valid plan");
    h.bench("netsim/20k-flows-512-torus/faulted", || {
        Simulation::new(&big)
            .with_faults(&plan)
            .with_retry(RetryPolicy::default())
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "faults_off_vs_on",
        "netsim/20k-flows-512-torus/faulted",
        "netsim/20k-flows-512-torus/cold",
    );

    // Overhead guard: with no TraceRecorder attached, tracing is one
    // `Option` check per run, so the cold run must stay within 5% of the
    // recorded PR-3 baseline (scripts/bench.sh exports
    // HFAST_BENCH_BASELINE=BENCH_pr3.json when present). Raw
    // cross-session timing comparisons measure mostly machine-speed
    // drift, so the guard (a) compares fastest samples (min_ns, the
    // least-throttled cost), (b) measures the cold case twice — once up
    // front, once here — taking the faster, and (c) normalizes by a
    // calibration case whose code is identical across PRs
    // (tdc_sweep/naive/complete-256, from the topology suite that
    // scripts/bench.sh runs earlier into the same JSONL stream): any
    // slowdown shared with the untouched calibration workload is the
    // machine, not the engine. The ratio lands in BENCH_<tag>.json;
    // values > 1.05 mean the tracing hooks taxed trace-off runs.
    h.bench("netsim/20k-flows-512-torus/cold-recheck", || {
        Simulation::new(&big).run(std::hint::black_box(&many))
    });
    const COLD: &str = "netsim/20k-flows-512-torus/cold";
    const CALIBRATION: &str = "tdc_sweep/naive/complete-256";
    if let (Some(base), Some(first), Some(recheck)) = (
        recorded_stat("HFAST_BENCH_BASELINE", COLD, "min_ns"),
        h.min_ns(COLD),
        h.min_ns("netsim/20k-flows-512-torus/cold-recheck"),
    ) {
        let drift = match (
            recorded_stat("HFAST_BENCH_BASELINE", CALIBRATION, "min_ns"),
            recorded_stat("HFAST_BENCH_JSON", CALIBRATION, "min_ns"),
        ) {
            (Some(cal_base), Some(cal_now)) => cal_now / cal_base,
            _ => 1.0, // standalone run: fall back to the raw ratio
        };
        h.record_value("guard/trace_off_vs_pr3", first.min(recheck) / base / drift);
    }

    h.finish();
}
