//! Benchmarks of the discrete-event simulator across fabrics and loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::{simulate, traffic, FatTreeFabric, HfastFabric, TorusFabric};
use hfast_topology::generators::{balanced_dims3, torus3d_graph};

fn bench_fabrics(c: &mut Criterion) {
    let n = 64;
    let flows = traffic::alltoall(n, 32 << 10);
    let graph = torus3d_graph(balanced_dims3(n), 1 << 20);
    let mut group = c.benchmark_group("netsim_alltoall_64");
    group.bench_function(BenchmarkId::from_parameter("fat-tree"), |b| {
        let fabric = FatTreeFabric::new(n, 8);
        b.iter(|| simulate(&fabric, std::hint::black_box(&flows)))
    });
    group.bench_function(BenchmarkId::from_parameter("torus"), |b| {
        let fabric = TorusFabric::new(balanced_dims3(n));
        b.iter(|| simulate(&fabric, std::hint::black_box(&flows)))
    });
    group.bench_function(BenchmarkId::from_parameter("hfast"), |b| {
        let fabric =
            HfastFabric::new(Provisioning::per_node(&graph, ProvisionConfig::default()));
        b.iter(|| simulate(&fabric, std::hint::black_box(&flows)))
    });
    group.finish();
}

fn bench_event_rate(c: &mut Criterion) {
    // Pure engine throughput: many small flows over a big torus.
    let fabric = TorusFabric::new((8, 8, 8));
    let flows = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    c.bench_function("netsim/20k-flows-512-torus", |b| {
        b.iter(|| simulate(&fabric, std::hint::black_box(&flows)))
    });
}

criterion_group!(benches, bench_fabrics, bench_event_rate);
criterion_main!(benches);
