//! Benchmarks of the discrete-event simulator across fabrics and loads,
//! including the path-cache ablation: cold (routes recomputed every run)
//! versus warm (a reused [`PathCache`]), the observability ablation (an
//! attached [`EngineObs`] versus none), the causal-tracing ablation (an
//! attached [`TraceRecorder`] versus none), the fault-replay overhead,
//! and the trace-off overhead guard against the PR-3 baseline — plus the
//! ideal-dispatch guard for the congestion rework (an explicit
//! `CongestionMode::Ideal` must price like the plain loop against the
//! PR-9 baseline) and the credit-mode incast replay with its headline
//! HFAST-vs-fat-tree congestion-spread ratio.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use hfast_bench::Harness;
use hfast_core::{PaperLinear, ProvisionConfig, Provisioner, Strategy};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{
    traffic, transit_links, CreditConfig, EngineObs, Fabric, FatTreeFabric, FaultPlan, HfastFabric,
    RetryPolicy, Scenario, ScenarioKind, Simulation, TorusFabric,
};
use hfast_topology::generators::{balanced_dims3, torus3d_graph};
use hfast_trace::{congestion_trees, TraceRecorder};

/// A recorded statistic (`"median_ns"`, `"min_ns"`, …) of case `name` in
/// the JSONL-per-line file at `path_env`, if present. Works on both the
/// assembled `BENCH_<tag>.json` baseline (`HFAST_BENCH_BASELINE`) and the
/// current run's accumulating JSONL stream (`HFAST_BENCH_JSON`).
fn recorded_stat(path_env: &str, name: &str, key: &str) -> Option<f64> {
    let path = std::env::var(path_env).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"name\":\"{name}\"");
    let line = text.lines().find(|l| l.contains(&needle))?;
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut h = Harness::new("netsim");

    let n = 64;
    let flows = traffic::alltoall(n, 32 << 10);
    let graph = torus3d_graph(balanced_dims3(n), 1 << 20);

    let ft = FatTreeFabric::new(n, 8).expect("valid shape");
    h.bench("netsim_alltoall_64/fat-tree", || {
        Simulation::new(&ft).run(std::hint::black_box(&flows))
    });
    let torus = TorusFabric::new(balanced_dims3(n)).expect("valid shape");
    h.bench("netsim_alltoall_64/torus", || {
        Simulation::new(&torus).run(std::hint::black_box(&flows))
    });
    let hfast = HfastFabric::new(PaperLinear.provision(&graph, ProvisionConfig::default()));
    h.bench("netsim_alltoall_64/hfast", || {
        Simulation::new(&hfast).run(std::hint::black_box(&flows))
    });

    // Pure engine throughput: many small flows over a big torus. The
    // uniform-random load repeats (src, dst) pairs heavily, so this is
    // also the path-cache ablation: the cache-free run re-resolves routes
    // every call (cold), the warm case amortizes them across runs.
    let big = TorusFabric::new((8, 8, 8)).expect("valid shape");
    let many = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    h.bench("netsim/20k-flows-512-torus/cold", || {
        Simulation::new(&big).run(std::hint::black_box(&many))
    });
    let mut cache = PathCache::new();
    Simulation::new(&big).with_cache(&mut cache).run(&many); // prime
    h.bench("netsim/20k-flows-512-torus/warm", || {
        Simulation::new(&big)
            .with_cache(&mut cache)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "path_cache_warm",
        "netsim/20k-flows-512-torus/cold",
        "netsim/20k-flows-512-torus/warm",
    );

    // Observability ablation: the same cold run with counters, histograms,
    // and the link timeline attached.
    let obs = EngineObs::with_timeline_capacity(4096);
    h.bench("netsim/20k-flows-512-torus/obs-on", || {
        Simulation::new(&big)
            .with_obs(&obs)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "obs_off_vs_on",
        "netsim/20k-flows-512-torus/obs-on",
        "netsim/20k-flows-512-torus/cold",
    );

    // Causal-tracing ablation: the same cold run with a span recorder
    // attached — every hop and flow becomes a span record. A fresh
    // recorder per iteration keeps memory bounded and prices the span
    // drop alongside the push, which is what a real capture pays.
    h.bench("netsim/20k-flows-512-torus/trace-on", || {
        let rec = TraceRecorder::new();
        Simulation::new(&big)
            .with_trace(&rec)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "trace_off_vs_on",
        "netsim/20k-flows-512-torus/trace-on",
        "netsim/20k-flows-512-torus/cold",
    );

    // Fault-replay ablation: the same load with a seeded mid-run outage
    // (12 transit links down for 500 us each) and the default retry
    // policy. This prices the dynamic loop itself — stale-slot checks,
    // fault events, rerouting — against the fault-free run above.
    let eligible = transit_links(&big, &many);
    let plan = FaultPlan::builder()
        .random_link_failures(0x5C05, 12, &eligible, (0, 2_000_000), Some(500_000))
        .build(&big)
        .expect("valid plan");
    h.bench("netsim/20k-flows-512-torus/faulted", || {
        Simulation::new(&big)
            .with_faults(&plan)
            .with_retry(RetryPolicy::default())
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "faults_off_vs_on",
        "netsim/20k-flows-512-torus/faulted",
        "netsim/20k-flows-512-torus/cold",
    );

    // Overhead guard: with no TraceRecorder attached, tracing is one
    // `Option` check per run, so the cold run must stay within 5% of the
    // recorded PR-3 baseline (scripts/bench.sh exports
    // HFAST_BENCH_BASELINE=BENCH_pr3.json when present). Raw
    // cross-session timing comparisons measure mostly machine-speed
    // drift, so the guard (a) compares fastest samples (min_ns, the
    // least-throttled cost), (b) measures the cold case twice — once up
    // front, once here — taking the faster, and (c) normalizes by a
    // calibration case whose code is identical across PRs
    // (tdc_sweep/naive/complete-256, from the topology suite that
    // scripts/bench.sh runs earlier into the same JSONL stream): any
    // slowdown shared with the untouched calibration workload is the
    // machine, not the engine. The ratio lands in BENCH_<tag>.json;
    // values > 1.05 mean the tracing hooks taxed trace-off runs.
    h.bench("netsim/20k-flows-512-torus/cold-recheck", || {
        Simulation::new(&big).run(std::hint::black_box(&many))
    });
    const COLD: &str = "netsim/20k-flows-512-torus/cold";
    const CALIBRATION: &str = "tdc_sweep/naive/complete-256";
    if let (Some(base), Some(first), Some(recheck)) = (
        recorded_stat("HFAST_BENCH_BASELINE", COLD, "min_ns"),
        h.min_ns(COLD),
        h.min_ns("netsim/20k-flows-512-torus/cold-recheck"),
    ) {
        let drift = match (
            recorded_stat("HFAST_BENCH_BASELINE", CALIBRATION, "min_ns"),
            recorded_stat("HFAST_BENCH_JSON", CALIBRATION, "min_ns"),
        ) {
            (Some(cal_base), Some(cal_now)) => cal_now / cal_base,
            _ => 1.0, // standalone run: fall back to the raw ratio
        };
        h.record_value("guard/trace_off_vs_pr3", first.min(recheck) / base / drift);
    }

    // ---- Event-loop rewrite: replica of the PR-5 loop vs the current
    // engine, measured loop-vs-loop in one process so machine drift
    // cancels exactly. The replica reproduces the old static loop
    // structure faithfully: a `BinaryHeap` of 32-byte events (all 120k
    // seeds resident), one virtual `Fabric::link` call per event, the
    // per-pair `Option<Vec<LinkId>>` route indirection, and a
    // `serialize_ns` float division per event. Its per-flow delivery
    // times are asserted equal to the engine's before anything is timed,
    // so the speedup compares two implementations of the *same*
    // simulation.
    let big_dyn: &dyn Fabric = &big;
    let mut pair_slot: HashMap<(usize, usize), u32> = HashMap::new();
    let mut slot_paths: Vec<Option<Vec<usize>>> = Vec::new();
    let mut flow_slot: Vec<u32> = Vec::with_capacity(many.len());
    for f in &many {
        let s = *pair_slot.entry((f.src, f.dst)).or_insert_with(|| {
            slot_paths.push(big_dyn.path(f.src, f.dst));
            (slot_paths.len() - 1) as u32
        });
        flow_slot.push(s);
    }
    let mut legacy_link_free: Vec<u64> = vec![0; big_dyn.link_count()];
    let mut legacy_ends: Vec<Option<u64>> = vec![None; many.len()];
    let legacy_loop = |ends: &mut Vec<Option<u64>>, free: &mut Vec<u64>| -> u64 {
        ends.fill(None);
        free.fill(0);
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (i, f) in many.iter().enumerate() {
            match &slot_paths[flow_slot[i] as usize] {
                Some(p) if p.is_empty() => ends[i] = Some(f.start_ns),
                Some(_) => {
                    heap.push(Reverse((f.start_ns, seq, i as u32, 0)));
                    seq += 1;
                }
                None => {}
            }
        }
        let mut n = 0u64;
        while let Some(Reverse((t, _, flow, hop))) = heap.pop() {
            n += 1;
            let path = slot_paths[flow_slot[flow as usize] as usize]
                .as_ref()
                .expect("queued flows have paths");
            let link = path[hop as usize];
            let spec = big_dyn.link(link);
            let start = t.max(free[link]);
            let ser = spec.serialize_ns(many[flow as usize].bytes);
            free[link] = start + ser;
            let header_out = start + spec.latency_ns;
            if (hop as usize) + 1 < path.len() {
                heap.push(Reverse((header_out, seq, flow, hop + 1)));
                seq += 1;
            } else {
                ends[flow as usize] = Some(header_out + ser);
            }
        }
        n
    };

    let reference = Simulation::new(&big)
        .with_cache(&mut cache)
        .detailed()
        .run(&many);
    let legacy_events = legacy_loop(&mut legacy_ends, &mut legacy_link_free);
    assert_eq!(legacy_events, reference.perf.events, "event counts agree");
    for (r, end) in reference.records().iter().zip(&legacy_ends) {
        assert_eq!(r.end_ns, *end, "legacy replica diverged on flow {}", r.flow);
    }

    h.bench("netsim/20k-flows-512-torus/eventloop-legacy", || {
        legacy_loop(&mut legacy_ends, &mut legacy_link_free)
    });
    // The speedup interleaves the two loops and compares fastest samples:
    // this box drifts by tens of percent across seconds, so timing legacy
    // in one block and the new loop in another measures mostly machine
    // state. Alternating them puts both minima in the same wall-clock
    // window. The engine times its own loop (LoopPerf excludes route
    // indexing, table setup, and stats); the legacy replica is all loop,
    // so the comparison slightly *understates* the engine's advantage.
    let mut legacy_min = u64::MAX;
    let mut new_min = u64::MAX;
    for _ in 0..12 {
        let t = std::time::Instant::now();
        std::hint::black_box(legacy_loop(&mut legacy_ends, &mut legacy_link_free));
        legacy_min = legacy_min.min(t.elapsed().as_nanos() as u64);
        for _ in 0..3 {
            let out = Simulation::new(&big)
                .with_cache(&mut cache)
                .run(std::hint::black_box(&many));
            new_min = new_min.min(out.perf.loop_ns);
        }
    }
    h.record_value(
        "speedup/eventloop_pr5_vs_pr6",
        legacy_min as f64 / new_min as f64,
    );

    // Determinism guard: the conservative-parallel executor must return
    // byte-identical results to the sequential loop (1.0 = identical;
    // anything else aborts the bench).
    let seq_run = Simulation::new(&big).detailed().with_threads(1).run(&many);
    let par_run = Simulation::new(&big).detailed().with_threads(8).run(&many);
    assert_eq!(
        seq_run, par_run,
        "parallel run diverged from sequential on the 20k-flow suite"
    );
    h.record_value("guard/eventloop_parallel_vs_seq", 1.0);

    // Congestion-mode guard: `CongestionMode::Ideal` is dispatched before
    // the existing loops ever run, so an explicit ideal-mode builder must
    // price identically to the plain cold run. Same protocol as the PR-3
    // trace guard — fastest samples, calibration-normalized against the
    // PR-9 baseline's cold case; values > 1.05 mean the congestion
    // dispatch taxed runs that never asked for it.
    h.bench("netsim/20k-flows-512-torus/ideal-mode", || {
        Simulation::new(&big)
            .with_congestion(CreditConfig::default())
            .run(std::hint::black_box(&many))
    });
    if let (Some(base), Some(ideal)) = (
        recorded_stat("HFAST_BENCH_BASELINE", COLD, "min_ns"),
        h.min_ns("netsim/20k-flows-512-torus/ideal-mode"),
    ) {
        let drift = match (
            recorded_stat("HFAST_BENCH_BASELINE", CALIBRATION, "min_ns"),
            recorded_stat("HFAST_BENCH_JSON", CALIBRATION, "min_ns"),
        ) {
            (Some(cal_base), Some(cal_now)) => cal_now / cal_base,
            _ => 1.0,
        };
        h.record_value("guard/congestion_ideal_vs_pr9", ideal / base / drift);
    }

    // Credit-mode cost and the headline congestion-spread rows: the
    // incast scenario replayed under credit flow control on a fat tree
    // and on an HFAST fabric provisioned for it, compared on each
    // fabric's worst congestion-tree spread ratio — the paper's
    // isolation claim says hfast/fat-tree stays well below 1.
    let incast = Scenario::preset(ScenarioKind::Incast, n, 0xC0DE);
    let incast_flows = incast.generate();
    h.bench("netsim/credit/incast-64-fat-tree", || {
        Simulation::new(&ft)
            .with_congestion(CreditConfig::credit(1))
            .run(std::hint::black_box(&incast_flows))
    });
    let spread = |fabric: &dyn Fabric| -> f64 {
        let rec = TraceRecorder::new();
        Simulation::new(fabric)
            .with_congestion(CreditConfig::credit(1))
            .with_trace(&rec)
            .run(&incast_flows);
        congestion_trees(&rec.snapshot())
            .iter()
            .map(|t| t.spread_ratio)
            .fold(0.0, f64::max)
    };
    let hf_incast = HfastFabric::provisioned(
        &incast.comm_graph(),
        ProvisionConfig::default(),
        Strategy::PaperLinear,
    );
    let (hf_spread, ft_spread) = (spread(&hf_incast), spread(&ft));
    assert!(
        ft_spread > 0.0,
        "fat-tree incast formed no congestion tree — spread ratio undefined"
    );
    h.record_value("congestion/spread_hfast_vs_fattree", hf_spread / ft_spread);
    // The same claim as a factor > 1: the direct ratio (~0.04) rounds to
    // 0.0 in the JSONL's one-decimal format, so the inverse is the row
    // baselines can actually compare. An hfast spread of zero (perfect
    // isolation) would make it infinite; floor the denominator so the
    // row stays finite JSON.
    h.record_value(
        "congestion/isolation_fattree_vs_hfast",
        ft_spread / hf_spread.max(0.01),
    );

    h.finish();
}
