//! Benchmarks of the discrete-event simulator across fabrics and loads,
//! including the path-cache ablation: cold (routes recomputed every run)
//! versus warm (a reused [`PathCache`]), the observability ablation (an
//! attached [`EngineObs`] versus none), and the obs-off overhead guard
//! against the PR-1 baseline.

use hfast_bench::Harness;
use hfast_core::{ProvisionConfig, Provisioning};
use hfast_netsim::engine::PathCache;
use hfast_netsim::{traffic, EngineObs, FatTreeFabric, HfastFabric, Simulation, TorusFabric};
use hfast_topology::generators::{balanced_dims3, torus3d_graph};

/// Median ns of `suite/name` in the JSONL baseline file at
/// `HFAST_BENCH_BASELINE`, if present.
fn baseline_median_ns(name: &str) -> Option<f64> {
    let path = std::env::var("HFAST_BENCH_BASELINE").ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"name\":\"{name}\"");
    let line = text.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"median_ns\":").nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let mut h = Harness::new("netsim");

    let n = 64;
    let flows = traffic::alltoall(n, 32 << 10);
    let graph = torus3d_graph(balanced_dims3(n), 1 << 20);

    let ft = FatTreeFabric::new(n, 8);
    h.bench("netsim_alltoall_64/fat-tree", || {
        Simulation::new(&ft).run(std::hint::black_box(&flows))
    });
    let torus = TorusFabric::new(balanced_dims3(n));
    h.bench("netsim_alltoall_64/torus", || {
        Simulation::new(&torus).run(std::hint::black_box(&flows))
    });
    let hfast = HfastFabric::new(Provisioning::per_node(&graph, ProvisionConfig::default()));
    h.bench("netsim_alltoall_64/hfast", || {
        Simulation::new(&hfast).run(std::hint::black_box(&flows))
    });

    // Pure engine throughput: many small flows over a big torus. The
    // uniform-random load repeats (src, dst) pairs heavily, so this is
    // also the path-cache ablation: the cache-free run re-resolves routes
    // every call (cold), the warm case amortizes them across runs.
    let big = TorusFabric::new((8, 8, 8));
    let many = traffic::uniform_random(512, 20_000, 4096, 1_000_000, 42);
    h.bench("netsim/20k-flows-512-torus/cold", || {
        Simulation::new(&big).run(std::hint::black_box(&many))
    });
    let mut cache = PathCache::new();
    Simulation::new(&big).with_cache(&mut cache).run(&many); // prime
    h.bench("netsim/20k-flows-512-torus/warm", || {
        Simulation::new(&big)
            .with_cache(&mut cache)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "path_cache_warm",
        "netsim/20k-flows-512-torus/cold",
        "netsim/20k-flows-512-torus/warm",
    );

    // Observability ablation: the same cold run with counters, histograms,
    // and the link timeline attached.
    let obs = EngineObs::with_timeline_capacity(4096);
    h.bench("netsim/20k-flows-512-torus/obs-on", || {
        Simulation::new(&big)
            .with_obs(&obs)
            .run(std::hint::black_box(&many))
    });
    h.report_speedup(
        "obs_off_vs_on",
        "netsim/20k-flows-512-torus/obs-on",
        "netsim/20k-flows-512-torus/cold",
    );

    // Overhead guard: the obs-off cold run must stay within 5% of the
    // recorded PR-1 baseline (scripts/bench.sh exports
    // HFAST_BENCH_BASELINE=BENCH_pr1.json when present). The ratio lands
    // in BENCH_<tag>.json; values > 1.05 mean the instrumented engine got
    // slower with observability disabled.
    if let (Some(base), Some(now)) = (
        baseline_median_ns("netsim/20k-flows-512-torus/cold"),
        h.median_ns("netsim/20k-flows-512-torus/cold"),
    ) {
        h.record_value("guard/obs_off_vs_pr1_cold", now / base);
    }

    h.finish();
}
