//! Benchmarks of the topology-analysis layer: TDC sweeps, structure
//! detection, and graph construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfast_topology::generators::{complete_graph, mesh3d_graph};
use hfast_topology::{detect_structure, tdc_sweep, CommGraph, CsrGraph, PAPER_CUTOFFS};

fn bench_tdc_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdc_sweep");
    for n in [64usize, 256] {
        let g = complete_graph(n, 32 << 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| tdc_sweep(std::hint::black_box(g), &PAPER_CUTOFFS))
        });
    }
    group.finish();
}

fn bench_detect_structure(c: &mut Criterion) {
    let mesh = mesh3d_graph((8, 8, 4), 300 << 10);
    c.bench_function("detect_structure/mesh-256", |b| {
        b.iter(|| detect_structure(std::hint::black_box(&mesh), 2048))
    });
}

fn bench_graph_build(c: &mut Criterion) {
    c.bench_function("comm_graph_build/64k-messages", |b| {
        b.iter(|| {
            let mut g = CommGraph::new(256);
            for i in 0..65536u64 {
                let a = (i % 256) as usize;
                let bnode = ((i * 31) % 256) as usize;
                if a != bnode {
                    g.add_message(a, bnode, 1024 + (i % 4096));
                }
            }
            g
        })
    });
}

fn bench_csr_conversion(c: &mut Criterion) {
    let g = complete_graph(256, 32 << 10);
    c.bench_function("csr_from_graph/complete-256", |b| {
        b.iter(|| CsrGraph::from_graph(std::hint::black_box(&g), 2048))
    });
}

criterion_group!(
    benches,
    bench_tdc_sweep,
    bench_detect_structure,
    bench_graph_build,
    bench_csr_conversion
);
criterion_main!(benches);
