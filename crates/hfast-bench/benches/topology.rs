//! Benchmarks of the topology-analysis layer: the multi-cutoff TDC sweep
//! (single-pass vs naive per-cutoff rescan — the PR's headline
//! optimization), structure detection, and graph construction.

use hfast_bench::Harness;
use hfast_topology::generators::{complete_graph, mesh3d_graph};
use hfast_topology::{
    detect_structure, tdc_sweep, tdc_sweep_csr, tdc_sweep_naive, CommGraph, CsrGraph, PAPER_CUTOFFS,
};

fn main() {
    let mut h = Harness::new("topology");

    for n in [64usize, 256] {
        let g = complete_graph(n, 32 << 10);
        h.bench(&format!("tdc_sweep/naive/complete-{n}"), || {
            tdc_sweep_naive(std::hint::black_box(&g), &PAPER_CUTOFFS)
        });
        h.bench(&format!("tdc_sweep/fast/complete-{n}"), || {
            tdc_sweep(std::hint::black_box(&g), &PAPER_CUTOFFS)
        });
        h.report_speedup(
            &format!("multi_cutoff_sweep_{n}"),
            &format!("tdc_sweep/naive/complete-{n}"),
            &format!("tdc_sweep/fast/complete-{n}"),
        );
    }

    // Sweep over a prebuilt CSR — what the figure binaries pay per call
    // once the snapshot is shared.
    let g256 = complete_graph(256, 32 << 10);
    let csr256 = CsrGraph::from_graph(&g256, 0);
    h.bench("tdc_sweep/csr-prebuilt/complete-256", || {
        tdc_sweep_csr(std::hint::black_box(&csr256), &PAPER_CUTOFFS)
    });

    // A sparse, mesh-shaped graph — the regime the study apps live in.
    let mesh = mesh3d_graph((8, 8, 4), 300 << 10);
    h.bench("tdc_sweep/naive/mesh-256", || {
        tdc_sweep_naive(std::hint::black_box(&mesh), &PAPER_CUTOFFS)
    });
    h.bench("tdc_sweep/fast/mesh-256", || {
        tdc_sweep(std::hint::black_box(&mesh), &PAPER_CUTOFFS)
    });
    h.report_speedup(
        "multi_cutoff_sweep_mesh",
        "tdc_sweep/naive/mesh-256",
        "tdc_sweep/fast/mesh-256",
    );

    h.bench("detect_structure/mesh-256", || {
        detect_structure(std::hint::black_box(&mesh), 2048)
    });

    h.bench("comm_graph_build/64k-messages", || {
        let mut g = CommGraph::new(256);
        for i in 0..65536u64 {
            let a = (i % 256) as usize;
            let bnode = ((i * 31) % 256) as usize;
            if a != bnode {
                g.add_message(a, bnode, 1024 + (i % 4096));
            }
        }
        g
    });

    h.bench("csr_from_graph/complete-256", || {
        CsrGraph::from_graph(std::hint::black_box(&g256), 2048)
    });

    h.finish();
}
