//! Benchmarks of the HFAST provisioning algorithms, including the ablation
//! the paper calls out: the linear-time per-node mapping versus the
//! clique-clustering heuristic (future work implemented here).

use hfast_bench::Harness;
use hfast_core::{cluster_nodes, optimize_clusters, ProvisionConfig, Provisioning};
use hfast_topology::generators::{complete_graph, mesh3d_graph, torus3d_graph};
use hfast_topology::CommGraph;

fn graphs() -> Vec<(&'static str, CommGraph)> {
    vec![
        ("mesh-4x4x4", mesh3d_graph((4, 4, 4), 300 << 10)),
        ("torus-8x8x4", torus3d_graph((8, 8, 4), 300 << 10)),
        ("complete-64", complete_graph(64, 32 << 10)),
    ]
}

fn main() {
    let mut h = Harness::new("provision");

    for (name, graph) in graphs() {
        h.bench(&format!("provision_per_node/{name}"), || {
            Provisioning::per_node(std::hint::black_box(&graph), ProvisionConfig::default())
        });
    }

    for (name, graph) in graphs() {
        h.bench(&format!("provision_clustered/{name}"), || {
            let clusters = cluster_nodes(std::hint::black_box(&graph), &ProvisionConfig::default());
            Provisioning::build(&graph, ProvisionConfig::default(), clusters)
        });
    }

    // Port-count ablation: report block totals, then bench route() lookups
    // over both layouts.
    let graph = torus3d_graph((8, 8, 4), 300 << 10);
    let config = ProvisionConfig::default();
    let per_node = Provisioning::per_node(&graph, config);
    let clustered = Provisioning::build(&graph, config, cluster_nodes(&graph, &config));
    eprintln!(
        "[ablation] blocks: per-node {} vs clustered {}",
        per_node.total_blocks(),
        clustered.total_blocks()
    );
    h.bench("route_lookup/per_node", || {
        let mut hops = 0usize;
        for a in 0..64usize {
            for b2 in 0..64usize {
                if let Some(r) = per_node.route(a, b2) {
                    hops += r.switch_hops;
                }
            }
        }
        hops
    });
    h.bench("route_lookup/clustered", || {
        let mut hops = 0usize;
        for a in 0..64usize {
            for b2 in 0..64usize {
                if let Some(r) = clustered.route(a, b2) {
                    hops += r.switch_hops;
                }
            }
        }
        hops
    });

    // §6 ablation: greedy clustering vs annealing-refined clustering.
    let greedy = cluster_nodes(&graph, &config);
    let greedy_blocks = Provisioning::build(&graph, config, greedy.clone()).total_blocks();
    let refined = optimize_clusters(&graph, &config, greedy.clone(), 4000, 1);
    eprintln!(
        "[ablation] blocks: greedy {} vs annealed {}",
        greedy_blocks, refined.final_blocks
    );
    h.bench("anneal_4000_moves/torus-256", || {
        optimize_clusters(
            std::hint::black_box(&graph),
            &config,
            greedy.clone(),
            4000,
            1,
        )
    });

    h.finish();
}
