//! Benchmarks of the HFAST provisioning algorithms, including the ablation
//! the paper calls out: the linear-time per-node mapping versus the
//! clique-clustering heuristic (future work implemented here).
//!
//! PR 7 guards:
//!
//! - `guard/provision_trait_vs_pr6` — the [`Provisioner`] trait extraction
//!   must not slow the paper heuristic down: fastest boxed-trait sample
//!   over the fastest static-dispatch sample (the exact PR-6 code path)
//!   must stay <= 1.05.
//! - `speedup/reprovision_incremental_vs_scratch` — PaperLinear's
//!   O(changed-edges) incremental path versus a from-scratch rebuild over
//!   a GTC sync-point replay, must be > 1.

use hfast_apps::{all_apps, profile_app};
use hfast_bench::Harness;
use hfast_core::{
    cluster_nodes, optimize_clusters, Clustered, GraphDelta, PaperLinear, ProvisionConfig,
    Provisioner, Strategy,
};
use hfast_topology::generators::{complete_graph, mesh3d_graph, torus3d_graph};
use hfast_topology::CommGraph;

fn graphs() -> Vec<(&'static str, CommGraph)> {
    vec![
        ("mesh-4x4x4", mesh3d_graph((4, 4, 4), 300 << 10)),
        ("torus-8x8x4", torus3d_graph((8, 8, 4), 300 << 10)),
        ("complete-64", complete_graph(64, 32 << 10)),
    ]
}

/// A GTC sync-point replay: the profiled steady-state graph, then one
/// window per drifting heavy chord. Returns (previous provisioning, graph
/// after the window, delta) triples ready for `reprovision`.
fn gtc_windows(config: ProvisionConfig) -> Vec<(hfast_core::Provisioning, CommGraph, GraphDelta)> {
    let apps = all_apps();
    let gtc = apps
        .iter()
        .find(|a| a.name() == "GTC")
        .expect("GTC kernel present");
    let outcome = profile_app(gtc.as_ref(), 64).expect("GTC profiles at 64 ranks");
    let mut graph = outcome.steady.comm_graph();
    let mut prev = PaperLinear.provision(&graph, config);
    let mut windows = Vec::new();
    for w in 0..8usize {
        // Each sync point surfaces one new above-cutoff pair (a drifting
        // gather partner) — the shape §2.3's runtime is built to chase.
        let (a, b) = ((w * 7) % 64, (w * 13 + 31) % 64);
        let mut next = graph.clone();
        next.add_message(a, b, 1 << 20);
        let delta = GraphDelta::diff(&graph, &next);
        let out = PaperLinear.reprovision(prev.clone(), &next, &delta);
        windows.push((prev, next.clone(), delta));
        prev = out.provisioning;
        graph = next;
    }
    windows
}

fn main() {
    let mut h = Harness::new("provision");

    // Static dispatch: the PR-6 entry point (`Provisioning::per_node`) was
    // extracted verbatim into `PaperLinear::provision`, so this IS the
    // PR-6 code path and keeps the baseline case name.
    for (name, graph) in graphs() {
        h.bench(&format!("provision_per_node/{name}"), || {
            PaperLinear.provision(std::hint::black_box(&graph), ProvisionConfig::default())
        });
    }

    // Boxed-trait dispatch: the path every strategy-selecting caller
    // (ReconfigEngine, hfast-serve, AdaptiveReplay) actually takes.
    let boxed = Strategy::PaperLinear.provisioner();
    for (name, graph) in graphs() {
        h.bench(&format!("provision_trait/{name}"), || {
            boxed.provision(std::hint::black_box(&graph), ProvisionConfig::default())
        });
    }
    if let (Some(t), Some(d)) = (
        h.min_ns("provision_trait/torus-8x8x4"),
        h.min_ns("provision_per_node/torus-8x8x4"),
    ) {
        // Same process, same graph, back to back: no drift normalization
        // needed. Must stay <= 1.05.
        h.record_value("guard/provision_trait_vs_pr6", t / d);
    }

    for (name, graph) in graphs() {
        h.bench(&format!("provision_clustered/{name}"), || {
            let clusters = cluster_nodes(std::hint::black_box(&graph), &ProvisionConfig::default());
            Clustered::new(clusters).provision(&graph, ProvisionConfig::default())
        });
    }

    // PR 7: incremental re-provisioning versus scratch over a GTC
    // sync-point replay (one drifting heavy chord per window).
    let config = ProvisionConfig::default();
    let windows = gtc_windows(config);
    h.bench("reprovision_scratch/gtc-64", || {
        let mut blocks = 0usize;
        for (_, graph, _) in &windows {
            blocks += PaperLinear.provision(graph, config).total_blocks();
        }
        blocks
    });
    h.bench("reprovision_incremental/gtc-64", || {
        let mut blocks = 0usize;
        for (prev, graph, delta) in &windows {
            blocks += PaperLinear
                .reprovision(prev.clone(), graph, delta)
                .provisioning
                .total_blocks();
        }
        blocks
    });
    h.report_speedup(
        "reprovision_incremental_vs_scratch",
        "reprovision_scratch/gtc-64",
        "reprovision_incremental/gtc-64",
    );

    // Port-count ablation: report block totals, then bench route() lookups
    // over both layouts.
    let graph = torus3d_graph((8, 8, 4), 300 << 10);
    let per_node = PaperLinear.provision(&graph, config);
    let clustered = Clustered::new(cluster_nodes(&graph, &config)).provision(&graph, config);
    eprintln!(
        "[ablation] blocks: per-node {} vs clustered {}",
        per_node.total_blocks(),
        clustered.total_blocks()
    );
    h.bench("route_lookup/per_node", || {
        let mut hops = 0usize;
        for a in 0..64usize {
            for b2 in 0..64usize {
                if let Some(r) = per_node.route(a, b2) {
                    hops += r.switch_hops;
                }
            }
        }
        hops
    });
    h.bench("route_lookup/clustered", || {
        let mut hops = 0usize;
        for a in 0..64usize {
            for b2 in 0..64usize {
                if let Some(r) = clustered.route(a, b2) {
                    hops += r.switch_hops;
                }
            }
        }
        hops
    });

    // §6 ablation: greedy clustering vs annealing-refined clustering.
    let greedy = cluster_nodes(&graph, &config);
    let greedy_blocks = Clustered::new(greedy.clone())
        .provision(&graph, config)
        .total_blocks();
    let refined = optimize_clusters(&graph, &config, greedy.clone(), 4000, 1);
    eprintln!(
        "[ablation] blocks: greedy {} vs annealed {}",
        greedy_blocks, refined.final_blocks
    );
    h.bench("anneal_4000_moves/torus-256", || {
        optimize_clusters(
            std::hint::black_box(&graph),
            &config,
            greedy.clone(),
            4000,
            1,
        )
    });

    h.finish();
}
