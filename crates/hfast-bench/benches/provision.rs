//! Benchmarks of the HFAST provisioning algorithms, including the ablation
//! the paper calls out: the linear-time per-node mapping versus the
//! clique-clustering heuristic (future work implemented here).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfast_core::{cluster_nodes, optimize_clusters, ProvisionConfig, Provisioning};
use hfast_topology::generators::{complete_graph, mesh3d_graph, torus3d_graph};
use hfast_topology::CommGraph;

fn graphs() -> Vec<(&'static str, CommGraph)> {
    vec![
        ("mesh-4x4x4", mesh3d_graph((4, 4, 4), 300 << 10)),
        ("torus-8x8x4", torus3d_graph((8, 8, 4), 300 << 10)),
        ("complete-64", complete_graph(64, 32 << 10)),
    ]
}

fn bench_per_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("provision_per_node");
    for (name, graph) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| Provisioning::per_node(std::hint::black_box(g), ProvisionConfig::default()))
        });
    }
    group.finish();
}

fn bench_clustered(c: &mut Criterion) {
    let mut group = c.benchmark_group("provision_clustered");
    for (name, graph) in graphs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| {
                let clusters = cluster_nodes(std::hint::black_box(g), &ProvisionConfig::default());
                Provisioning::build(g, ProvisionConfig::default(), clusters)
            })
        });
    }
    group.finish();
}

fn bench_ablation_block_savings(c: &mut Criterion) {
    // Not a timing benchmark per se: report the port-count ablation as a
    // throughput-of-quality measure by benching route() over both layouts.
    let graph = torus3d_graph((8, 8, 4), 300 << 10);
    let config = ProvisionConfig::default();
    let per_node = Provisioning::per_node(&graph, config);
    let clustered = Provisioning::build(&graph, config, cluster_nodes(&graph, &config));
    eprintln!(
        "[ablation] blocks: per-node {} vs clustered {}",
        per_node.total_blocks(),
        clustered.total_blocks()
    );
    let mut group = c.benchmark_group("route_lookup");
    group.bench_function("per_node", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64usize {
                for b2 in 0..64usize {
                    if let Some(r) = per_node.route(a, b2) {
                        hops += r.switch_hops;
                    }
                }
            }
            hops
        })
    });
    group.bench_function("clustered", |b| {
        b.iter(|| {
            let mut hops = 0usize;
            for a in 0..64usize {
                for b2 in 0..64usize {
                    if let Some(r) = clustered.route(a, b2) {
                        hops += r.switch_hops;
                    }
                }
            }
            hops
        })
    });
    group.finish();
}

fn bench_annealing(c: &mut Criterion) {
    // §6 ablation: greedy clustering vs annealing-refined clustering.
    let graph = torus3d_graph((8, 8, 4), 300 << 10);
    let config = ProvisionConfig::default();
    let greedy = cluster_nodes(&graph, &config);
    let greedy_blocks = Provisioning::build(&graph, config, greedy.clone()).total_blocks();
    let refined = optimize_clusters(&graph, &config, greedy.clone(), 4000, 1);
    eprintln!(
        "[ablation] blocks: greedy {} vs annealed {}",
        greedy_blocks, refined.final_blocks
    );
    c.bench_function("anneal_4000_moves/torus-256", |b| {
        b.iter(|| {
            optimize_clusters(
                std::hint::black_box(&graph),
                &config,
                greedy.clone(),
                4000,
                1,
            )
        })
    });
}

criterion_group!(
    benches,
    bench_per_node,
    bench_clustered,
    bench_ablation_block_savings,
    bench_annealing
);
criterion_main!(benches);
