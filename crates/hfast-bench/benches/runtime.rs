//! Benchmarks of the message-passing substrate: point-to-point throughput,
//! collective algorithms, and profiled-versus-bare overhead (IPM's "low
//! overhead" claim, measured).

use std::sync::Arc;

use hfast_bench::Harness;
use hfast_ipm::IpmProfiler;
use hfast_mpi::{CommHook, Payload, ReduceOp, Tag, World, WorldConfig};

fn ring_rounds(size: usize, rounds: usize, hook: Option<Arc<dyn CommHook>>) {
    let mut config = WorldConfig::new(size);
    if let Some(h) = hook {
        config = config.hook(h);
    }
    World::run_with(config, |comm| {
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        for _ in 0..rounds {
            let req = comm.isend(right, Tag(1), Payload::synthetic(4096)).unwrap();
            comm.recv(left, Tag(1)).unwrap();
            comm.wait(req).unwrap();
        }
    })
    .unwrap();
}

fn main() {
    let mut h = Harness::new("runtime");

    h.bench("runtime/ring-16x64-bare", || ring_rounds(16, 64, None));
    h.bench("runtime/ring-16x64-profiled", || {
        let prof = Arc::new(IpmProfiler::new(16));
        ring_rounds(16, 64, Some(prof as Arc<dyn CommHook>))
    });

    h.bench("runtime/allreduce-32", || {
        World::run(32, |comm| {
            for _ in 0..8 {
                comm.allreduce(Payload::synthetic(1024), ReduceOp::Sum)
                    .unwrap();
            }
        })
        .unwrap()
    });
    h.bench("runtime/alltoall-16", || {
        World::run(16, |comm| {
            let blocks = vec![Payload::synthetic(4096); 16];
            comm.alltoall(blocks).unwrap()
        })
        .unwrap()
    });

    h.bench("runtime/spawn-64-ranks", || {
        World::run(64, |comm| comm.rank()).unwrap()
    });

    h.finish();
}
