//! Benchmarks of the serving daemon: request round-trip latencies over a
//! real socket (cache hit versus compute, v1 versus v2 envelope), a
//! sustained closed-loop load (throughput and tail latency, recorded for
//! `BENCH_<tag>.json`), a two-shard fleet run priced against the single
//! node, and the observability ablation — the full per-request
//! `ServeObs` record sequence priced against the bare handler call.

use hfast_bench::{loadgen, Harness};
use hfast_obs::ServeObs;
use hfast_serve::{
    execute, start, AppSpec, Client, Registry, Request, ServerConfig, WireVersion, ENDPOINTS,
};

fn main() {
    let mut h = Harness::new("serve");
    let fast = std::env::var("HFAST_BENCH_FAST").is_ok_and(|v| v != "0");

    let app = AppSpec::Inline {
        n: 32,
        edges: (0..32)
            .map(|i| (i, (i + 1) % 32, 1 << 16, 16, 4096))
            .collect(),
    };
    let tdc = Request::Tdc {
        app,
        cutoffs: vec![0, 2048, 64 << 10],
    };

    // Socket round-trips against a live daemon: the cache-hit path (conn
    // thread only) and the compute path (cache defeated by a changing
    // cutoff, so every call crosses the queue and a worker).
    let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    client.call(&tdc).expect("prime cache");
    h.bench("serve/roundtrip/cache-hit", || {
        client.call_text(&tdc).expect("cached call")
    });

    // The same cached round-trip in both envelope versions. The v2 body
    // is the v1 body plus a `"v":2` tag on each side, so the guard pins
    // that version negotiation costs essentially nothing on the wire:
    // anything over 5% means the envelope path regressed.
    h.bench("serve/roundtrip/v1", || {
        client.call_versioned(&tdc, WireVersion::V1).expect("v1")
    });
    h.bench("serve/roundtrip/v2", || {
        client.call_versioned(&tdc, WireVersion::V2).expect("v2")
    });
    if let (Some(v1), Some(v2)) = (
        h.min_ns("serve/roundtrip/v1"),
        h.min_ns("serve/roundtrip/v2"),
    ) {
        h.record_value("guard/serve_v2_vs_pr7", v2 / v1);
    }
    let mut cutoff = 0u64;
    h.bench("serve/roundtrip/compute", || {
        cutoff += 1; // distinct request every iteration: always a miss
        client
            .call(&Request::Provision {
                app: provision_app(),
                block_ports: 16,
                cutoff,
                strategy: None,
            })
            .expect("compute call")
    });

    fn provision_app() -> AppSpec {
        AppSpec::Inline {
            n: 16,
            edges: (0..16)
                .map(|i| (i, (i + 1) % 16, 1 << 14, 8, 2048))
                .collect(),
        }
    }

    // Sustained closed-loop mix over the six paper apps. One measured
    // run (not a h.bench repeat: the load generator is its own repeated
    // sampler); throughput and tail latency land in the JSON stream.
    let load = loadgen::LoadConfig {
        connections: 4,
        requests_per_connection: if fast { 25 } else { 100 },
        ..loadgen::LoadConfig::default()
    };
    let report = loadgen::run(&addr, &load);
    assert_eq!(report.dropped, 0, "load run dropped responses");
    h.record_value("serve/throughput_rps", report.throughput_rps);
    h.record_value("serve/p50_ms", report.p50_ns as f64 / 1e6);
    h.record_value("serve/p99_ms", report.p99_ns as f64 / 1e6);

    // The same load over a two-shard fleet, routed client-side with
    // consistent hashing. Correctness first — the digest must match the
    // single node byte-for-byte — then the throughput ratio. On this
    // cache-heavy mix two shards roughly double the serving capacity,
    // but the recorded value is informational, not a guard: a loaded CI
    // box can flatten the scaling without anything being wrong.
    let second = start("127.0.0.1:0", ServerConfig::default()).expect("bind second shard");
    let shards = vec![addr.clone(), second.local_addr().to_string()];
    let fleet_report = loadgen::run_fleet(&shards, &load);
    assert_eq!(fleet_report.dropped, 0, "fleet run dropped responses");
    assert_eq!(
        fleet_report.digest, report.digest,
        "two-shard fleet must serve byte-identical responses"
    );
    h.record_value(
        "speedup/fleet_2shard_vs_single",
        fleet_report.throughput_rps / report.throughput_rps,
    );

    for shard in &shards {
        let mut drain = Client::connect(shard).expect("connect for drain");
        drain.call(&Request::Shutdown).expect("shutdown");
    }
    second.join();
    server.join();

    // Observability ablation: the bare handler call versus the same call
    // wrapped in the exact ServeObs sequence the daemon performs per
    // request (endpoint counter, admission gauge, two histogram records).
    // The recorded guard is obs-on over obs-off; > 1.05 means metric
    // collection taxed serving by more than 5%.
    let registry = Registry::new();
    h.bench("serve/handle/obs-off", || execute(&tdc, &registry));
    let obs = ServeObs::new(&ENDPOINTS);
    h.bench("serve/handle/obs-on", || {
        obs.record_request(tdc.endpoint_index());
        obs.request_admitted();
        obs.queue_wait_ns.record(1_000);
        let resp = execute(&tdc, &registry);
        obs.service_ns.record(50_000);
        obs.request_done();
        resp
    });
    if let (Some(off), Some(on)) = (
        h.min_ns("serve/handle/obs-off"),
        h.min_ns("serve/handle/obs-on"),
    ) {
        h.record_value("guard/serve_obs_overhead", on / off);
    }

    h.finish();
}
