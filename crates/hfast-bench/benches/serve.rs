//! Benchmarks of the serving daemon: request round-trip latencies over a
//! real socket (cache hit versus compute, v1 versus v2 envelope), a
//! sustained closed-loop load (throughput and tail latency, recorded for
//! `BENCH_<tag>.json`), a two-shard fleet run priced against the single
//! node, the observability ablation — the full per-request `ServeObs`
//! record sequence priced against the bare handler call — and the
//! telemetry-plane guards: telemetry-off round-trips against the PR-8
//! baseline, and the traced round-trip against the untraced one (the
//! `HFAST_TRACE` switch is probed once per process, so the telemetry-on
//! daemon is this binary re-exec'd in `--daemon` mode).

use std::io::{BufRead as _, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use hfast_bench::{loadgen, Harness};
use hfast_obs::ServeObs;
use hfast_serve::{
    execute, start, AppSpec, Client, FleetClient, Registry, Request, ServerConfig, WireVersion,
    ENDPOINTS,
};
use hfast_trace::TraceRecorder;

/// A recorded statistic (`"min_ns"`, …) of case `name` in the JSONL file
/// named by `path_env` — the assembled `BENCH_<tag>.json` baseline
/// (`HFAST_BENCH_BASELINE`) or this run's stream (`HFAST_BENCH_JSON`).
fn recorded_stat(path_env: &str, name: &str, key: &str) -> Option<f64> {
    let path = std::env::var(path_env).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let needle = format!("\"name\":\"{name}\"");
    let line = text.lines().find(|l| l.contains(&needle))?;
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let num: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// `--daemon` mode: one serving process whose telemetry switches come
/// from the environment the parent set, printing `READY ADDR`.
fn daemon_mode() {
    let server = start("127.0.0.1:0", ServerConfig::default()).expect("daemon bind");
    println!("READY {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
}

/// Re-execs this bench binary as a daemon with the given telemetry
/// environment, returning the child and its address.
fn spawn_daemon(telemetry: Option<(&str, &str)>) -> (Child, String) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.arg("--daemon")
        .env_remove("HFAST_TRACE")
        .env_remove("HFAST_OBS")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some((trace, obs)) = telemetry {
        cmd.env("HFAST_TRACE", trace).env("HFAST_OBS", obs);
    }
    let mut child = cmd.spawn().expect("spawn daemon");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read READY");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .expect("READY line")
        .to_string();
    (child, addr)
}

fn main() {
    if std::env::args().any(|a| a == "--daemon") {
        daemon_mode();
        return;
    }
    let mut h = Harness::new("serve");
    let fast = std::env::var("HFAST_BENCH_FAST").is_ok_and(|v| v != "0");

    let app = AppSpec::Inline {
        n: 32,
        edges: (0..32)
            .map(|i| (i, (i + 1) % 32, 1 << 16, 16, 4096))
            .collect(),
    };
    let tdc = Request::Tdc {
        app,
        cutoffs: vec![0, 2048, 64 << 10],
    };

    // Socket round-trips against a live daemon: the cache-hit path (conn
    // thread only) and the compute path (cache defeated by a changing
    // cutoff, so every call crosses the queue and a worker).
    let server = start("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connect");
    client.call(&tdc).expect("prime cache");
    h.bench("serve/roundtrip/cache-hit", || {
        client.call_text(&tdc).expect("cached call")
    });

    // The same cached round-trip in both envelope versions. The v2 body
    // is the v1 body plus a `"v":2` tag on each side, so the guard pins
    // that version negotiation costs essentially nothing on the wire:
    // anything over 5% means the envelope path regressed.
    h.bench("serve/roundtrip/v1", || {
        client.call_versioned(&tdc, WireVersion::V1).expect("v1")
    });
    h.bench("serve/roundtrip/v2", || {
        client.call_versioned(&tdc, WireVersion::V2).expect("v2")
    });
    if let (Some(v1), Some(v2)) = (
        h.min_ns("serve/roundtrip/v1"),
        h.min_ns("serve/roundtrip/v2"),
    ) {
        h.record_value("guard/serve_v2_vs_pr7", v2 / v1);
    }
    let mut cutoff = 0u64;
    h.bench("serve/roundtrip/compute", || {
        cutoff += 1; // distinct request every iteration: always a miss
        client
            .call(&Request::Provision {
                app: provision_app(),
                block_ports: 16,
                cutoff,
                strategy: None,
            })
            .expect("compute call")
    });

    fn provision_app() -> AppSpec {
        AppSpec::Inline {
            n: 16,
            edges: (0..16)
                .map(|i| (i, (i + 1) % 16, 1 << 14, 8, 2048))
                .collect(),
        }
    }

    // Sustained closed-loop mix over the six paper apps. One measured
    // run (not a h.bench repeat: the load generator is its own repeated
    // sampler); throughput and tail latency land in the JSON stream.
    let load = loadgen::LoadConfig {
        connections: 4,
        requests_per_connection: if fast { 25 } else { 100 },
        ..loadgen::LoadConfig::default()
    };
    let report = loadgen::run(&addr, &load);
    assert_eq!(report.dropped, 0, "load run dropped responses");
    h.record_value("serve/throughput_rps", report.throughput_rps);
    h.record_value("serve/p50_ms", report.p50_ns as f64 / 1e6);
    h.record_value("serve/p99_ms", report.p99_ns as f64 / 1e6);

    // The same load over a two-shard fleet, routed client-side with
    // consistent hashing. Correctness first — the digest must match the
    // single node byte-for-byte — then the throughput ratio. On this
    // cache-heavy mix two shards roughly double the serving capacity,
    // but the recorded value is informational, not a guard: a loaded CI
    // box can flatten the scaling without anything being wrong.
    let second = start("127.0.0.1:0", ServerConfig::default()).expect("bind second shard");
    let shards = vec![addr.clone(), second.local_addr().to_string()];
    let fleet_report = loadgen::run_fleet(&shards, &load);
    assert_eq!(fleet_report.dropped, 0, "fleet run dropped responses");
    assert_eq!(
        fleet_report.digest, report.digest,
        "two-shard fleet must serve byte-identical responses"
    );
    h.record_value(
        "speedup/fleet_2shard_vs_single",
        fleet_report.throughput_rps / report.throughput_rps,
    );

    for shard in &shards {
        let mut drain = Client::connect(shard).expect("connect for drain");
        drain.call(&Request::Shutdown).expect("shutdown");
    }
    second.join();
    server.join();

    // Observability ablation: the bare handler call versus the same call
    // wrapped in the exact ServeObs sequence the daemon performs per
    // request (endpoint counter, admission gauge, two histogram records).
    // The recorded guard is obs-on over obs-off; > 1.05 means metric
    // collection taxed serving by more than 5%.
    let registry = Registry::new();
    h.bench("serve/handle/obs-off", || execute(&tdc, &registry));
    let obs = ServeObs::new(&ENDPOINTS);
    h.bench("serve/handle/obs-on", || {
        obs.record_request(tdc.endpoint_index());
        obs.request_admitted();
        obs.queue_wait_ns.record(1_000);
        let resp = execute(&tdc, &registry);
        obs.service_ns.record(50_000);
        obs.request_done();
        resp
    });
    if let (Some(off), Some(on)) = (
        h.min_ns("serve/handle/obs-off"),
        h.min_ns("serve/handle/obs-on"),
    ) {
        h.record_value("guard/serve_obs_overhead", on / off);
    }

    // Telemetry ablation over a real socket. The `HFAST_TRACE`/`HFAST_OBS`
    // switches are probed once per process, so both sides run as
    // subprocess daemons: one with telemetry stripped, one exporting
    // spans — and the telemetry-on side is driven by a tracing
    // `FleetClient`, so the measured loop pays the whole plane (client
    // root span, traced envelope, server-side decode + four span
    // records + the rolling window) while the off side pays none of it.
    let dir = std::env::temp_dir().join(format!("hfast-serve-bench-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let (mut off_child, off_addr) = spawn_daemon(None);
    let trace_sink = dir.join("trace.jsonl").display().to_string();
    let obs_sink = dir.join("obs.jsonl").display().to_string();
    let (mut on_child, on_addr) = spawn_daemon(Some((&trace_sink, &obs_sink)));

    let mut off_client = Client::connect(&off_addr).expect("connect off daemon");
    off_client.call(&tdc).expect("prime off cache");
    h.bench("serve/roundtrip/telemetry-off", || {
        off_client.call_text(&tdc).expect("telemetry-off call")
    });
    let rec = Arc::new(TraceRecorder::new());
    let mut on_client =
        FleetClient::connect(std::slice::from_ref(&on_addr)).with_trace(Arc::clone(&rec));
    on_client.call(&tdc).expect("prime on cache");
    h.bench("serve/roundtrip/telemetry-on", || {
        on_client.call_text(&tdc).expect("telemetry-on call")
    });
    if let (Some(off), Some(on)) = (
        h.min_ns("serve/roundtrip/telemetry-off"),
        h.min_ns("serve/roundtrip/telemetry-on"),
    ) {
        h.record_value("overhead/telemetry_on_vs_off", on / off);
    }
    for addr in [&off_addr, &on_addr] {
        let mut drain = Client::connect(addr).expect("connect for drain");
        drain.call(&Request::Shutdown).expect("shutdown daemon");
    }
    let _ = off_child.wait();
    let _ = on_child.wait();
    let _ = std::fs::remove_dir_all(&dir);

    // Cross-session guard: with telemetry off, the cache-hit round-trip
    // must stay within 5% of the recorded PR-8 baseline (scripts/bench.sh
    // exports HFAST_BENCH_BASELINE when present). Same recipe as the
    // netsim trace-off guard: fastest samples, the telemetry-off case
    // measured twice (the `cache-hit` case up top and the subprocess
    // round-trip here, taking the faster), drift-normalized by a
    // calibration case untouched across PRs (from the topology suite that
    // bench.sh runs earlier into the same JSONL stream). Values > 1.05
    // mean the telemetry plane taxed telemetry-off serving.
    const CACHE_HIT: &str = "serve/roundtrip/cache-hit";
    const CALIBRATION: &str = "tdc_sweep/naive/complete-256";
    if let (Some(base), Some(first), Some(recheck)) = (
        recorded_stat("HFAST_BENCH_BASELINE", CACHE_HIT, "min_ns"),
        h.min_ns(CACHE_HIT),
        h.min_ns("serve/roundtrip/telemetry-off"),
    ) {
        let drift = match (
            recorded_stat("HFAST_BENCH_BASELINE", CALIBRATION, "min_ns"),
            recorded_stat("HFAST_BENCH_JSON", CALIBRATION, "min_ns"),
        ) {
            (Some(cal_base), Some(cal_now)) => cal_now / cal_base,
            _ => 1.0, // standalone run: fall back to the raw ratio
        };
        h.record_value(
            "guard/telemetry_off_vs_pr8",
            first.min(recheck) / base / drift,
        );
    }

    h.finish();
}
