//! End-to-end benchmarks: profiling each study application at P = 64
//! (threads + channels + IPM), the pipeline every experiment binary runs,
//! and the full apps × sizes measurement grid sequential vs parallel.

use hfast_apps::{all_apps, profile_app, Cactus, STUDY_SIZES};
use hfast_bench::{measure_cells, Harness};
use hfast_core::Provisioner as _;
use hfast_par::par_map_with;

fn main() {
    let mut h = Harness::new("apps");

    for app in all_apps() {
        h.bench(&format!("profile_app_p64/{}", app.name()), || {
            profile_app(app.as_ref(), 64).unwrap()
        });
    }

    // Profile once, then bench the analysis that follows.
    let outcome = profile_app(&Cactus::default(), 64).unwrap();
    h.bench("analysis/profile-to-provisioning", || {
        let graph = outcome.steady.comm_graph();
        let summary = hfast_topology::tdc(&graph, 2048);
        let prov =
            hfast_core::PaperLinear.provision(&graph, hfast_core::ProvisionConfig::default());
        (summary.max, prov.total_blocks())
    });

    // The experiments binary's measurement grid, 1 thread vs the
    // HFAST_THREADS default — the wall-clock win the driver parallelism
    // buys. (Identical outputs either way; see measure_cells.)
    let app_count = all_apps().len();
    let cells: Vec<(usize, usize)> = (0..app_count)
        .flat_map(|a| STUDY_SIZES.iter().map(move |&p| (a, p)))
        .collect();
    h.bench("experiment_grid/sequential", || {
        par_map_with(1, cells.clone(), |(a, p)| {
            hfast_bench::measure_app(all_apps()[a].as_ref(), p)
        })
    });
    h.bench("experiment_grid/parallel", || measure_cells(&cells));
    h.report_speedup(
        "experiment_grid",
        "experiment_grid/sequential",
        "experiment_grid/parallel",
    );

    h.finish();
}
