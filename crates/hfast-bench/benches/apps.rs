//! End-to-end benchmarks: profiling each study application at P = 64
//! (threads + channels + IPM), the pipeline every experiment binary runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfast_apps::{all_apps, profile_app, Cactus};

fn bench_profile_each_app(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_app_p64");
    group.sample_size(10);
    for app in all_apps() {
        group.bench_function(BenchmarkId::from_parameter(app.name()), |b| {
            b.iter(|| profile_app(app.as_ref(), 64).unwrap())
        });
    }
    group.finish();
}

fn bench_analysis_pipeline(c: &mut Criterion) {
    // Profile once, then bench the analysis that follows.
    let outcome = profile_app(&Cactus::default(), 64).unwrap();
    c.bench_function("analysis/profile-to-provisioning", |b| {
        b.iter(|| {
            let graph = outcome.steady.comm_graph();
            let summary = hfast_topology::tdc(&graph, 2048);
            let prov = hfast_core::Provisioning::per_node(
                &graph,
                hfast_core::ProvisionConfig::default(),
            );
            (summary.max, prov.total_blocks())
        })
    });
}

criterion_group!(benches, bench_profile_each_app, bench_analysis_pipeline);
criterion_main!(benches);
