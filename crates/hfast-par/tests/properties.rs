//! Property-based tests for the deterministic parallel-map utility: for any
//! input and any worker count, `par_map_with` must return exactly what a
//! sequential `map` returns, in the same order.

use hfast_par::{forall, par_chunks, par_map_with, Rng64};

#[test]
fn par_map_equals_sequential_map_for_all_thread_counts() {
    forall("par_map_equals_sequential_map", 64, |rng| {
        let items: Vec<u64> = (0..rng.range(0, 200)).map(|_| rng.next_u64()).collect();
        // A non-trivial pure function with observable ordering (index mixed
        // into the output so any slot shuffle is caught).
        let expected: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| (i, x.rotate_left((i % 63) as u32) ^ 0xDEAD_BEEF))
            .collect();
        for threads in 1..=8 {
            let items2 = items.clone();
            let got = par_map_with(
                threads,
                items2.into_iter().enumerate().collect::<Vec<_>>(),
                |(i, x): (usize, u64)| (i, x.rotate_left((i % 63) as u32) ^ 0xDEAD_BEEF),
            );
            assert_eq!(got, expected, "threads={threads}");
        }
    });
}

#[test]
fn par_map_is_deterministic_across_repeated_runs() {
    forall("par_map_deterministic", 32, |rng| {
        let items: Vec<u64> = (0..rng.range(1, 150)).map(|_| rng.next_u64()).collect();
        let runs: Vec<Vec<u64>> = (0..4)
            .map(|_| par_map_with(8, items.clone(), |x| x.wrapping_mul(0x9E37_79B9)))
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    });
}

#[test]
fn par_chunks_covers_every_item_in_order() {
    forall("par_chunks_covers_in_order", 64, |rng| {
        let items: Vec<u64> = (0..rng.range(1, 300)).map(|_| rng.next_u64()).collect();
        let chunk = rng.range(1, 40);
        let sums = par_chunks(&items, chunk, |c: &[u64]| {
            c.iter().copied().map(u128::from).sum::<u128>()
        });
        let total: u128 = sums.iter().sum();
        assert_eq!(total, items.iter().copied().map(u128::from).sum::<u128>());
        assert_eq!(sums.len(), items.len().div_ceil(chunk));
        // Chunk results arrive in input order.
        let expected: Vec<u128> = items
            .chunks(chunk)
            .map(|c| c.iter().copied().map(u128::from).sum())
            .collect();
        assert_eq!(sums, expected);
    });
}

#[test]
fn rng_streams_are_platform_stable() {
    // Pin a few absolute values so any accidental change to the SplitMix64
    // constants (which would silently re-seed every synthetic workload)
    // fails loudly.
    let mut r = Rng64::new(0);
    assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    let mut r = Rng64::new(42);
    let first = r.next_u64();
    let mut r2 = Rng64::new(42);
    assert_eq!(first, r2.next_u64());
}
