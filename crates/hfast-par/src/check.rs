//! A minimal property-test harness.
//!
//! Each case gets a PRNG derived deterministically from a base seed and the
//! case index; the property draws whatever random structure it needs from
//! that PRNG and asserts with the standard `assert!` family. On failure the
//! harness reports the property name, case index, and per-case seed, then
//! re-raises the original panic so the assertion message is preserved.
//!
//! `HFAST_CHECK_SEED=<n>` overrides the base seed (to replay a failure or
//! diversify CI); `HFAST_CHECK_CASES=<n>` scales the case count.

use crate::rng::Rng64;

/// Default base seed mixed into every property.
pub const DEFAULT_BASE_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

fn base_seed() -> u64 {
    std::env::var("HFAST_CHECK_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_BASE_SEED)
}

fn case_count(requested: usize) -> usize {
    std::env::var("HFAST_CHECK_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(requested)
        .max(1)
}

/// Seed of case `case` under base seed `base` (exposed so a failing case
/// can be replayed in isolation).
pub fn case_seed(base: u64, case: u64) -> u64 {
    // SplitMix-style mixing keeps neighbouring cases decorrelated.
    Rng64::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Runs `property` on `cases` seeded random cases.
///
/// The property receives a fresh [`Rng64`] per case. Panics (assertion
/// failures) are reported with the case index and seed, then propagated.
pub fn forall<F>(name: &str, cases: usize, property: F)
where
    F: Fn(&mut Rng64) + std::panic::RefUnwindSafe,
{
    let base = base_seed();
    for case in 0..case_count(cases) as u64 {
        let seed = case_seed(base, case);
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng64::new(seed);
            property(&mut rng);
        });
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed on case {case} (seed {seed:#x}); \
                 replay with HFAST_CHECK_SEED={base} or Rng64::new({seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        forall("counts", 17, |_rng| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        // HFAST_CHECK_CASES may scale this in exotic environments; at
        // minimum every requested case ran once.
        assert!(counter.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    }

    #[test]
    #[should_panic(expected = "deliberate failure")]
    fn failing_property_propagates() {
        forall("fails", 10, |rng| {
            let x = rng.range(0, 100);
            assert!(x < 1000, "impossible");
            if x < 200 {
                panic!("deliberate failure");
            }
        });
    }

    #[test]
    fn case_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for c in 0..1000 {
            assert!(seen.insert(case_seed(DEFAULT_BASE_SEED, c)));
        }
    }
}
