//! A small, seeded, deterministic PRNG (SplitMix64).
//!
//! Not cryptographic — its job is reproducible synthetic workloads and
//! property-test case generation, identical on every platform and run.

/// SplitMix64 generator state.
///
/// Equal seeds produce equal streams; the generator passes the usual
/// statistical batteries for this class and has period 2^64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A fresh generator whose stream is independent of this one's
    /// continuation (useful for per-case seeding).
    pub fn split(&mut self) -> Rng64 {
        Rng64::new(self.next_u64() ^ 0xA5A5_A5A5_5A5A_5A5A)
    }

    /// Uniform `u64` in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping is biased by at most
        // span/2^64 — negligible for test-case generation, and exactly
        // reproducible, which is what we need.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw with probability `p`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// A uniformly chosen element of `items`. Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = Rng64::new(43);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let v = r.range(3, 17);
            assert!((3..17).contains(&v));
            let u = r.range_u64(0, 1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng64::new(99);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            if x < 0.5 {
                low += 1;
            }
        }
        assert!((4000..6000).contains(&low), "roughly balanced: {low}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_differ() {
        let mut r = Rng64::new(1);
        let mut s = r.split();
        let a: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::new(0).range(5, 5);
    }
}
