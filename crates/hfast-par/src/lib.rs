//! # hfast-par — deterministic parallelism utilities
//!
//! The analysis pipeline behind the paper's tables and figures is a sweep:
//! applications × study sizes × message-size cutoffs, every cell independent
//! of the rest. This crate supplies the parallel substrate that lets the
//! harness fan those cells out across cores while keeping every output
//! **bit-identical** to the sequential run:
//!
//! * [`par`] — [`par_map`]/[`par_chunks`] built on [`std::thread::scope`]
//!   (zero dependencies). Results are returned in input order, so callers
//!   that print or reduce them observe exactly the sequential order no
//!   matter how the OS schedules the workers. The worker count honours the
//!   `HFAST_THREADS` environment variable and falls back to the machine's
//!   available parallelism; `HFAST_THREADS=1` is a true sequential path
//!   (no threads spawned at all).
//! * [`rng`] — a small, seeded, splittable PRNG ([`rng::Rng64`],
//!   SplitMix64) used by the synthetic workload generator and the property
//!   tests. Deterministic across platforms and runs.
//! * [`check`] — a minimal property-test harness ([`check::forall`]):
//!   seeded random cases, failure reporting with the case index and seed so
//!   a red run can be replayed exactly.

#![warn(missing_docs)]

pub mod check;
pub mod par;
pub mod rng;

pub use check::forall;
pub use par::{par_chunks, par_map, par_map_range, par_map_with, thread_count};
pub use rng::Rng64;
