//! Deterministic `par_map`/`par_chunks` on scoped threads.
//!
//! The contract that matters for the reproduction: **output order equals
//! input order**, regardless of thread count or OS scheduling. Workers pull
//! items off a shared atomic cursor (so an expensive cell does not stall its
//! chunk-mates), but every result lands in the slot of its input index, so
//! the caller sees the sequential ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the harness should use.
///
/// `HFAST_THREADS=<n>` forces `n` (minimum 1); unset or unparseable falls
/// back to [`std::thread::available_parallelism`]. `HFAST_THREADS=1` selects
/// the sequential path — no threads are spawned and execution order is the
/// plain left-to-right `map`.
pub fn thread_count() -> usize {
    match std::env::var("HFAST_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// [`par_map`] with an explicit worker count.
///
/// `threads <= 1` (or a 0/1-item input) runs sequentially on the calling
/// thread. Results are returned in input order. If a worker panics, the
/// panic propagates to the caller once the scope joins.
pub fn par_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("each index claimed once");
                let out = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index produced a result")
        })
        .collect()
}

/// Maps `f` over `items` on [`thread_count`] workers, returning results in
/// input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_with(thread_count(), items, f)
}

/// Maps `f` over the index range `0..n` on `threads` workers, returning
/// results in index order.
///
/// Unlike [`par_map_with`] there is no input vector to shuttle through
/// per-item slots — `f` closes over whatever shared state it needs — so
/// this is the cheap shape for fan-outs that are invoked repeatedly (the
/// netsim engine's lookahead windows call it once per large batch).
/// `threads <= 1` or `n <= 1` runs sequentially on the calling thread.
pub fn par_map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                *results[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index produced a result")
        })
        .collect()
}

/// Maps `f` over consecutive chunks of `items` (the last chunk may be
/// short), returning per-chunk results in chunk order.
///
/// `chunk == 0` is treated as `1`. Uses [`thread_count`] workers.
pub fn par_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let chunk = chunk.max(1);
    let ranges: Vec<(usize, usize)> = (0..items.len())
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(items.len())))
        .collect();
    par_map(ranges, |(lo, hi)| f(&items[lo..hi]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map_with(threads, items.clone(), |x| x * 3 + 1);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn map_range_matches_sequential() {
        let expected: Vec<usize> = (0..131).map(|i| i * i).collect();
        for threads in [1, 2, 8] {
            assert_eq!(par_map_range(threads, 131, |i| i * i), expected);
        }
        assert_eq!(par_map_range(4, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert_eq!(par_map_with(4, empty, |x| x), Vec::<u32>::new());
        assert_eq!(par_map_with(4, vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn chunks_cover_everything_in_order() {
        let items: Vec<u64> = (0..100).collect();
        let sums = par_chunks(&items, 7, |c| c.iter().sum::<u64>());
        assert_eq!(sums.len(), 15, "ceil(100/7)");
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        // First chunk is exactly 0..7.
        assert_eq!(sums[0], (0..7).sum::<u64>());
    }

    #[test]
    fn zero_chunk_is_clamped() {
        let items = [1u64, 2, 3];
        let out = par_chunks(&items, 0, |c| c.len());
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn more_threads_than_items() {
        let got = par_map_with(16, vec![1, 2, 3], |x| x * x);
        assert_eq!(got, vec![1, 4, 9]);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        par_map_with(2, vec![0, 1, 2, 3], |x| {
            if x == 2 {
                panic!("deliberate");
            }
            x
        });
    }
}
