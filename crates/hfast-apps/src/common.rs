//! Shared helpers for the application kernels.

use hfast_mpi::{Comm, Payload, Request, Result, SrcSel, Tag, TagSel};

/// Tags used by the kernels (one namespace per exchange flavour so repeated
/// steps cannot cross-match).
pub mod tags {
    use hfast_mpi::Tag;

    /// Halo/ghost-zone exchanges.
    pub const HALO: Tag = Tag(100);
    /// Toroidal particle shifts.
    pub const SHIFT: Tag = Tag(200);
    /// Block/panel transfers.
    pub const BLOCK: Tag = Tag(300);
    /// Tiny control messages.
    pub const CONTROL: Tag = Tag(400);
    /// Transpose traffic.
    pub const TRANSPOSE: Tag = Tag(500);
    /// Force/spatial-decomposition exchanges.
    pub const FORCE: Tag = Tag(600);
}

/// A symmetric nonblocking halo exchange with a set of partners:
/// post all receives, post all sends, wait for every receive individually,
/// wait for `immediate_send_waits` sends individually, and complete the rest
/// with one `waitall`.
///
/// The split between individual waits and the final `waitall` exists so the
/// kernels can reproduce each application's measured call mix (e.g. Cactus
/// shows both a large `MPI_Wait` slice and a small `MPI_Waitall` slice in
/// Figure 2).
pub fn halo_exchange(
    comm: &mut Comm,
    partners: &[usize],
    bytes: usize,
    tag: Tag,
    immediate_send_waits: usize,
) -> Result<()> {
    let mut recvs: Vec<Request> = Vec::with_capacity(partners.len());
    for &p in partners {
        recvs.push(comm.irecv(SrcSel::Rank(p), TagSel::Tag(tag), bytes)?);
    }
    let mut sends: Vec<Request> = Vec::with_capacity(partners.len());
    for &p in partners {
        sends.push(comm.isend(p, tag, Payload::synthetic(bytes))?);
    }
    for r in recvs {
        comm.wait(r)?;
    }
    let tail: Vec<Request> = if immediate_send_waits >= sends.len() {
        for s in sends {
            comm.wait(s)?;
        }
        Vec::new()
    } else {
        let tail = sends.split_off(immediate_send_waits);
        for s in sends {
            comm.wait(s)?;
        }
        tail
    };
    if !tail.is_empty() {
        comm.waitall(tail)?;
    }
    Ok(())
}

/// Pairwise symmetric exchange where each side both isends and irecvs one
/// message and completes with per-pair `waitall` (LBMHD's 40/40/20 mix).
pub fn paired_exchange(
    comm: &mut Comm,
    partners: &[usize],
    bytes: usize,
    tag: Tag,
    pairs_per_waitall: usize,
) -> Result<()> {
    let mut pending: Vec<Request> = Vec::new();
    let mut pairs_in_batch = 0;
    for &p in partners {
        pending.push(comm.irecv(SrcSel::Rank(p), TagSel::Tag(tag), bytes)?);
        pending.push(comm.isend(p, tag, Payload::synthetic(bytes))?);
        pairs_in_batch += 1;
        if pairs_in_batch == pairs_per_waitall {
            comm.waitall(std::mem::take(&mut pending))?;
            pairs_in_batch = 0;
        }
    }
    if !pending.is_empty() {
        comm.waitall(pending)?;
    }
    Ok(())
}

/// Side-aware wrap-around ring distance between ranks.
pub fn ring_distance(a: usize, b: usize, n: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(n - d)
}

/// The 2D process-grid shape used by SuperLU-style kernels: the squarest
/// `rows × cols = p` factorization.
pub fn grid2d(p: usize) -> (usize, usize) {
    let mut rows = (p as f64).sqrt() as usize;
    while rows > 1 && !p.is_multiple_of(rows) {
        rows -= 1;
    }
    (rows.max(1), p / rows.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfast_mpi::World;

    #[test]
    fn grid2d_factors() {
        assert_eq!(grid2d(64), (8, 8));
        assert_eq!(grid2d(256), (16, 16));
        assert_eq!(grid2d(12), (3, 4));
        assert_eq!(grid2d(7), (1, 7));
        assert_eq!(grid2d(1), (1, 1));
    }

    #[test]
    fn ring_distance_wraps() {
        assert_eq!(ring_distance(0, 1, 8), 1);
        assert_eq!(ring_distance(0, 7, 8), 1);
        assert_eq!(ring_distance(0, 4, 8), 4);
        assert_eq!(ring_distance(2, 2, 8), 0);
    }

    #[test]
    fn halo_exchange_completes_symmetrically() {
        World::run(4, |comm| {
            let partners: Vec<usize> = (0..4).filter(|&p| p != comm.rank()).collect();
            halo_exchange(comm, &partners, 1024, tags::HALO, 1).unwrap();
            assert_eq!(comm.outstanding_recvs(), 0);
            assert_eq!(comm.unexpected_depth(), 0);
        })
        .unwrap();
    }

    #[test]
    fn paired_exchange_batches() {
        World::run(6, |comm| {
            let r = comm.rank();
            let partners = vec![(r + 1) % 6, (r + 5) % 6, (r + 2) % 6, (r + 4) % 6];
            paired_exchange(comm, &partners, 4096, tags::HALO, 2).unwrap();
            assert_eq!(comm.outstanding_recvs(), 0);
        })
        .unwrap();
    }
}
