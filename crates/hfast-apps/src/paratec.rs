//! PARATEC — plane-wave DFT with 3D FFT transposes (paper Figure 10).
//!
//! PARATEC's 3D FFTs require two stages of global transposes. The first is
//! non-local: every rank exchanges similar-size (~32 KB) messages with
//! *every* other rank, producing the uniform all-to-all background of the
//! volume matrix. The second stage only touches neighbouring ranks,
//! producing extra traffic along the diagonal. Abundant small control
//! messages accompany the transposes (the 64 B median buffer of Table 3).
//! The communication fully utilizes an FCN's bisection — the paper's
//! case-iv archetype, where HFAST offers no advantage.
//!
//! Calibration targets:
//! * TDC = (P−1, P−1) at every cutoff up to 32 KB; only above 32 KB does
//!   the partner count collapse (to the diagonal neighbours).
//! * Call mix ≈ Isend 25.1 %, Irecv 24.8 %, Wait 49.6 %.
//! * Median PTP buffer 64 B; collectives ≤ 0.5 % at 4-8 B.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Payload, ReduceOp, Request, Result, SrcSel, Tag, TagSel};

use crate::common::tags;
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// First-stage transpose block (the uniform 32 KB background of Fig. 10a).
pub const TRANSPOSE_BYTES: usize = 32 << 10;
/// Second-stage neighbour exchange (the diagonal band, above 32 KB).
pub const DIAGONAL_BYTES: usize = 256 << 10;
/// Control/handshake payload (Table 3: 64 B median).
pub const CONTROL_BYTES: usize = 64;
/// Diagonal reach of the second transpose stage.
pub const DIAGONAL_REACH: usize = 2;

/// The PARATEC communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Paratec {
    /// SCF iterations (each performs both transpose stages).
    pub steps: usize,
}

impl Paratec {
    /// Kernel with an explicit iteration count.
    pub fn new(steps: usize) -> Self {
        Paratec { steps }
    }
}

impl Default for Paratec {
    /// Two SCF iterations.
    fn default() -> Self {
        Paratec::new(2)
    }
}

impl CommKernel for Paratec {
    fn name(&self) -> &'static str {
        "PARATEC"
    }

    fn meta(&self) -> AppMeta {
        lookup("PARATEC").expect("PARATEC is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let p = comm.size();
        let rank = comm.rank();
        profiler.enter_region(rank, "steady");
        // Initial convergence-criterion reduction (makes the collective
        // median 8 B, as Table 3 reports at P = 64).
        comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)?;
        for _step in 0..self.steps {
            // Stage 1: global transpose. Per partner: one 32 KB block and
            // two 64 B control messages, all nonblocking, each request
            // completed with an individual MPI_Wait — the 25/25/50 mix.
            let mut recvs: Vec<Request> = Vec::with_capacity(3 * (p - 1));
            for off in 1..p {
                let from = (rank + p - off) % p;
                recvs.push(comm.irecv(
                    SrcSel::Rank(from),
                    TagSel::Tag(tags::TRANSPOSE),
                    TRANSPOSE_BYTES,
                )?);
                for c in 0..2u32 {
                    recvs.push(comm.irecv(
                        SrcSel::Rank(from),
                        TagSel::Tag(Tag(tags::CONTROL.0 + c)),
                        CONTROL_BYTES,
                    )?);
                }
            }
            let mut sends: Vec<Request> = Vec::with_capacity(3 * (p - 1));
            for off in 1..p {
                let to = (rank + off) % p;
                sends.push(comm.isend(to, tags::TRANSPOSE, Payload::synthetic(TRANSPOSE_BYTES))?);
                for c in 0..2u32 {
                    sends.push(comm.isend(
                        to,
                        Tag(tags::CONTROL.0 + c),
                        Payload::synthetic(CONTROL_BYTES),
                    )?);
                }
            }
            for r in recvs {
                comm.wait(r)?;
            }
            for s in sends {
                comm.wait(s)?;
            }

            // Stage 2: neighbour transpose along the diagonal.
            if p > 2 * DIAGONAL_REACH {
                let mut reqs: Vec<Request> = Vec::new();
                for d in 1..=DIAGONAL_REACH {
                    let ahead = (rank + d) % p;
                    let behind = (rank + p - d) % p;
                    reqs.push(comm.irecv(
                        SrcSel::Rank(behind),
                        TagSel::Tag(Tag(tags::TRANSPOSE.0 + d as u32)),
                        DIAGONAL_BYTES,
                    )?);
                    reqs.push(comm.isend(
                        ahead,
                        Tag(tags::TRANSPOSE.0 + d as u32),
                        Payload::synthetic(DIAGONAL_BYTES),
                    )?);
                }
                for r in reqs {
                    comm.wait(r)?;
                }
            }

            // Convergence checks: tiny global reductions.
            comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)?;
            comm.allreduce(Payload::synthetic(4), ReduceOp::Max)?;
        }
        profiler.exit_region(rank);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::tdc;

    #[test]
    fn tdc_is_full_and_cutoff_insensitive_to_32k() {
        let out = profile_app(&Paratec::new(1), 64).unwrap();
        let g = out.steady.comm_graph();
        for cutoff in [0u64, 2048, 16 << 10, 32 << 10] {
            let s = tdc(&g, cutoff);
            assert_eq!(
                (s.max, s.min),
                (63, 63),
                "TDC must be P−1 at cutoff {cutoff}"
            );
        }
        // Above 32 KB only the diagonal band survives.
        let above = tdc(&g, (32 << 10) + 1);
        assert_eq!(above.max, 2 * DIAGONAL_REACH);
    }

    #[test]
    fn call_mix_is_25_25_50() {
        let out = profile_app(&Paratec::new(1), 32).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        assert!((mix[&CallKind::Isend] - 25.1).abs() < 1.5, "{mix:?}");
        assert!((mix[&CallKind::Irecv] - 24.8).abs() < 1.5);
        assert!((mix[&CallKind::Wait] - 49.6).abs() < 1.5);
        assert!(out.steady.ptp_call_fraction() > 0.99);
    }

    #[test]
    fn median_buffer_is_tiny_despite_transposes() {
        let out = profile_app(&Paratec::new(1), 32).unwrap();
        assert_eq!(out.steady.ptp_buffer_histogram().median(), Some(64));
        let col = out.steady.collective_buffer_histogram();
        assert!(col.median().unwrap() <= 8);
    }

    #[test]
    fn diagonal_band_carries_extra_volume() {
        let out = profile_app(&Paratec::new(1), 16).unwrap();
        let g = out.steady.comm_graph();
        let near = g.edge(3, 4).bytes;
        let far = g.edge(3, 11).bytes;
        assert!(
            near > far,
            "diagonal neighbours exchange more: {near} vs {far}"
        );
        assert!(far > 0, "but the background is uniform and nonzero");
        assert_eq!(g.edge(3, 11).max_msg, TRANSPOSE_BYTES as u64);
    }
}
