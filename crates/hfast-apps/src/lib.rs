//! # hfast-apps — the six SC'05 study applications
//!
//! Communication-kernel replicas of the applications profiled in the paper
//! (Table 2): Cactus, LBMHD, GTC, SuperLU, PMEMD, and PARATEC. The paper's
//! analysis consumes only each code's *messaging behaviour* — which ranks
//! exchange messages, of what sizes, through which MPI calls — so each
//! kernel here reproduces that behaviour (the decomposition geometry, the
//! partner structure, the buffer-size distribution, and the call mix of
//! paper Figure 2), calibrated against the published numbers in Table 3 and
//! Figures 2-10.
//!
//! The kernels run on the [`hfast_mpi`] simulated runtime and are profiled
//! through [`hfast_ipm`], exactly as the real codes ran under MPI + IPM on
//! Seaborg.
//!
//! ```
//! use hfast_apps::{Cactus, profile_app};
//!
//! let outcome = profile_app(&Cactus::default(), 64).unwrap();
//! let graph = outcome.steady.comm_graph();
//! let tdc = hfast_topology::tdc(&graph, 2048);
//! assert_eq!(tdc.max, 6); // 3D stencil: six faces
//! ```

#![warn(missing_docs)]

pub mod cactus;
pub mod common;
pub mod gtc;
pub mod lbmhd;
pub mod meta;
pub mod paratec;
pub mod pmemd;
pub mod runner;
pub mod superlu;
pub mod synthetic;

pub use cactus::Cactus;
pub use gtc::Gtc;
pub use lbmhd::Lbmhd;
pub use meta::AppMeta;
pub use paratec::Paratec;
pub use pmemd::Pmemd;
pub use runner::{profile_app, profile_app_with, AppOutcome};
pub use superlu::SuperLu;
pub use synthetic::Synthetic;

use hfast_ipm::IpmProfiler;
use hfast_mpi::Comm;

/// A runnable application communication kernel.
pub trait CommKernel: Sync {
    /// Short name as used in the paper's tables and figures.
    fn name(&self) -> &'static str;

    /// Table 2 metadata for the application.
    fn meta(&self) -> AppMeta;

    /// Executes the kernel on one rank. Implementations bracket their
    /// steady-state phase in the profiler's `"steady"` region (and any
    /// initialization in `"init"`), mirroring how the paper separates
    /// SuperLU's setup traffic from its solve phase.
    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> hfast_mpi::Result<()>;
}

/// All six study applications with their calibrated default step counts.
pub fn all_apps() -> Vec<Box<dyn CommKernel>> {
    vec![
        Box::new(Cactus::default()),
        Box::new(Lbmhd::default()),
        Box::new(Gtc::default()),
        Box::new(SuperLu::default()),
        Box::new(Pmemd::default()),
        Box::new(Paratec::default()),
    ]
}

/// The processor counts studied in the paper.
pub const STUDY_SIZES: [usize; 2] = [64, 256];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_all_six() {
        let apps = all_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["Cactus", "LBMHD", "GTC", "SuperLU", "PMEMD", "PARATEC"]
        );
    }
}
