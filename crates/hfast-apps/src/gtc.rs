//! GTC — gyrokinetic toroidal particle-in-cell (paper Figure 5).
//!
//! GTC uses a one-dimensional domain decomposition across the toroidal
//! grid: each rank exchanges ~128 KB particle buffers with its two toroidal
//! neighbours via `MPI_Sendrecv`, plus a particle decomposition *within*
//! each toroidal plane that is served by gathers (GTC is the paper's most
//! collective-heavy code: ≈47 % `MPI_Gather`). At P = 256 (64 planes × 4
//! particle domains), the per-plane leader ranks additionally coordinate
//! with nearby planes' leaders, which drives the maximum TDC far above the
//! average — the paper's case-iii archetype.
//!
//! Calibration targets:
//! * P = 64: TDC (2, 2) — a pure ring.
//! * P = 256: TDC 17 max unthresholded → 10 max at the 2 KB cutoff, 4 avg.
//! * Call mix ≈ Gather 47.4 %, Sendrecv 40.8 %, Allreduce 10.9 %.
//! * Median PTP buffer 128 KB; median collective buffer 100 bytes.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Group, Payload, ReduceOp, Result, Tag};

use crate::common::tags;
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// Toroidal particle-shift buffer (Table 3: 128 KB median).
pub const SHIFT_BYTES: usize = 128 << 10;
/// Charge-deposition gather contribution per rank.
pub const GATHER_BYTES: usize = 100;
/// Full-grid deposition gather issued on every third step — the minority of
/// collective calls above the 2 KB threshold that gives Figure 3 its tail.
pub const GRID_GATHER_BYTES: usize = 4096;
/// Leader-to-leader coordination payload (above the 2 KB cutoff).
pub const LEADER_BYTES: usize = 4096;
/// Leader-to-leader bookkeeping payload (below the cutoff).
pub const LEADER_SMALL_BYTES: usize = 512;
/// Maximum toroidal planes (GTC production runs use 64 planes).
pub const MAX_PLANES: usize = 64;

/// The GTC communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Gtc {
    /// 15-step communication cycles to run.
    pub cycles: usize,
}

impl Gtc {
    /// Kernel with an explicit cycle count.
    pub fn new(cycles: usize) -> Self {
        Gtc { cycles }
    }

    /// Decomposition: (planes, particle domains per plane).
    pub fn decomposition(procs: usize) -> (usize, usize) {
        let planes = procs.min(MAX_PLANES);
        assert!(
            procs.is_multiple_of(planes),
            "GTC needs a processor count divisible into {planes} planes"
        );
        (planes, procs / planes)
    }
}

impl Default for Gtc {
    /// One full 15-step cycle.
    fn default() -> Self {
        Gtc::new(1)
    }
}

impl CommKernel for Gtc {
    fn name(&self) -> &'static str {
        "GTC"
    }

    fn meta(&self) -> AppMeta {
        lookup("GTC").expect("GTC is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let p = comm.size();
        let (planes, domains) = Self::decomposition(p);
        let rank = comm.rank();
        let plane = rank / domains;
        let domain = rank % domains;
        let at = |pl: usize, dom: usize| (pl % planes) * domains + dom;
        let right = at(plane + 1, domain);
        let left = at(plane + planes - 1, domain);
        let plane_group = Group::new((0..domains).map(|d| at(plane, d)).collect())?;
        let plane_root = at(plane, 0);
        let is_leader = domain == 0 && domains > 1;

        profiler.enter_region(rank, "steady");
        for _cycle in 0..self.cycles {
            for step in 0..15usize {
                // Particle shift: forward then backward, 128 KB each.
                comm.sendrecv(
                    right,
                    tags::SHIFT,
                    Payload::synthetic(SHIFT_BYTES),
                    left,
                    tags::SHIFT,
                )?;
                comm.sendrecv(
                    left,
                    Tag(tags::SHIFT.0 + 1),
                    Payload::synthetic(SHIFT_BYTES),
                    right,
                    Tag(tags::SHIFT.0 + 1),
                )?;
                // Charge deposition gathers within the plane: two per step,
                // three every third step (35 per 15-step cycle).
                let gathers = if step % 3 == 2 { 3 } else { 2 };
                for g in 0..gathers {
                    // The third gather of a 3-gather step moves the full
                    // deposition grid rather than per-particle moments.
                    let bytes = if g == 2 {
                        GRID_GATHER_BYTES
                    } else {
                        GATHER_BYTES
                    };
                    comm.gather_in(&plane_group, plane_root, Payload::synthetic(bytes))?;
                }
                // Field solve residual reductions on 8 of 15 steps.
                if step % 2 == 0 {
                    comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)?;
                }
            }
            // Leader coordination once per cycle: plane leaders exchange
            // flux-surface data with nearby planes' leaders. This is the
            // non-mesh-isomorphic component that inflates GTC's max TDC.
            if is_leader {
                // ±1..5: above-cutoff payloads. The ±1 partners coincide
                // with the leaders' own ring neighbours, so the thresholded
                // partner set is exactly {±1..5} → max TDC 10 at the 2 KB
                // cutoff.
                for d in 1..=5usize {
                    let ahead = at(plane + d, 0);
                    let behind = at(plane + planes - d, 0);
                    comm.sendrecv(
                        ahead,
                        Tag(tags::SHIFT.0 + 10 + d as u32),
                        Payload::synthetic(LEADER_BYTES),
                        behind,
                        Tag(tags::SHIFT.0 + 10 + d as u32),
                    )?;
                }
                // ±6..8 plus the antipodal plane: small bookkeeping →
                // unthresholded max TDC reaches 10+6+1 = 17.
                for d in 6..=8usize {
                    let ahead = at(plane + d, 0);
                    let behind = at(plane + planes - d, 0);
                    comm.sendrecv(
                        ahead,
                        Tag(tags::SHIFT.0 + 10 + d as u32),
                        Payload::synthetic(LEADER_SMALL_BYTES),
                        behind,
                        Tag(tags::SHIFT.0 + 10 + d as u32),
                    )?;
                }
                let opposite = at(plane + planes / 2, 0);
                comm.sendrecv(
                    opposite,
                    Tag(tags::SHIFT.0 + 30),
                    Payload::synthetic(LEADER_SMALL_BYTES),
                    opposite,
                    Tag(tags::SHIFT.0 + 30),
                )?;
            }
        }
        profiler.exit_region(rank);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::{tdc, BDP_CUTOFF};

    #[test]
    fn p64_is_a_pure_ring() {
        let out = profile_app(&Gtc::default(), 64).unwrap();
        let g = out.steady.comm_graph();
        let s = tdc(&g, BDP_CUTOFF);
        assert_eq!((s.max, s.avg), (2, 2.0), "paper Table 3: (2, 2)");
        assert_eq!(tdc(&g, 0).max, 2, "no sub-cutoff extras at P=64");
    }

    #[test]
    fn call_mix_is_gather_heavy() {
        let out = profile_app(&Gtc::default(), 64).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        // Paper: Gather 47.4, Sendrecv 40.8, Allreduce 10.9.
        assert!((mix[&CallKind::Gather] - 47.4).abs() < 2.0, "{mix:?}");
        assert!((mix[&CallKind::Sendrecv] - 40.8).abs() < 2.0);
        assert!((mix[&CallKind::Allreduce] - 10.9).abs() < 1.5);
        assert!(out.steady.collective_call_fraction() > 0.55);
    }

    #[test]
    fn buffers_match_table3() {
        let out = profile_app(&Gtc::default(), 64).unwrap();
        assert_eq!(
            out.steady.ptp_buffer_histogram().median(),
            Some(SHIFT_BYTES as u64)
        );
        assert_eq!(
            out.steady.collective_buffer_histogram().median(),
            Some(GATHER_BYTES as u64)
        );
    }

    #[test]
    fn decomposition_shapes() {
        assert_eq!(Gtc::decomposition(64), (64, 1));
        assert_eq!(Gtc::decomposition(256), (64, 4));
        assert_eq!(Gtc::decomposition(128), (64, 2));
        assert_eq!(Gtc::decomposition(32), (32, 1));
    }

    #[test]
    fn p128_leaders_inflate_max_tdc() {
        // Same mechanism as the paper's P=256 case at a cheaper test size:
        // 64 planes × 2 domains; leaders reach 17 partners unthresholded,
        // 10 at the cutoff; non-leaders stay at 2.
        let out = profile_app(&Gtc::default(), 128).unwrap();
        let g = out.steady.comm_graph();
        let uncut = tdc(&g, 0);
        let cut = tdc(&g, BDP_CUTOFF);
        assert_eq!(uncut.max, 17);
        assert_eq!(cut.max, 10);
        assert_eq!(cut.min, 2);
        // Leaders are half the ranks at P=128: avg = (10 + 2) / 2.
        assert!((cut.avg - 6.0).abs() < 0.01, "avg {}", cut.avg);
    }
}
