//! Profiling harness: run a kernel under IPM and collect its profiles.

use std::sync::Arc;
use std::time::Duration;

use hfast_ipm::{CommProfile, IpmProfiler};
use hfast_mpi::{CommHook, MpiError, World, WorldConfig};

use crate::CommKernel;

/// Result of a profiled application run.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Application name.
    pub name: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Profile over the whole run (initialization included).
    pub merged: CommProfile,
    /// Profile of the `"steady"` region only — the paper's analysis input.
    pub steady: CommProfile,
}

/// Runs `app` at `procs` ranks under the IPM profiler and returns both the
/// merged and the steady-state profiles (paper §3.2: "we use IPM's
/// regioning feature … to examine only the profiling data from one section
/// of the code").
pub fn profile_app(app: &dyn CommKernel, procs: usize) -> Result<AppOutcome, MpiError> {
    let profiler = Arc::new(IpmProfiler::new(procs));
    let prof_for_ranks = Arc::clone(&profiler);
    World::run_with(
        WorldConfig::new(procs)
            .timeout(Duration::from_secs(60))
            .hook(Arc::clone(&profiler) as Arc<dyn CommHook>),
        move |comm| app.run(comm, &prof_for_ranks),
    )?
    .into_iter()
    .collect::<Result<Vec<()>, MpiError>>()?;
    Ok(AppOutcome {
        name: app.name(),
        procs,
        merged: profiler.profile(),
        steady: profiler.region_profile("steady"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cactus;

    #[test]
    fn outcome_distinguishes_regions() {
        let out = profile_app(&Cactus::new(4), 8).unwrap();
        assert_eq!(out.name, "Cactus");
        assert_eq!(out.procs, 8);
        assert!(out.steady.total_calls() > 0);
        assert!(out.merged.total_calls() >= out.steady.total_calls());
    }
}
