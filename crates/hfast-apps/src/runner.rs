//! Profiling harness: run a kernel under IPM and collect its profiles.

use std::sync::Arc;
use std::time::Duration;

use hfast_ipm::{CommProfile, IpmProfiler};
use hfast_mpi::{CommHook, MpiError, World, WorldConfig};

use crate::CommKernel;

/// Result of a profiled application run.
#[derive(Debug, Clone)]
pub struct AppOutcome {
    /// Application name.
    pub name: &'static str,
    /// Processor count.
    pub procs: usize,
    /// Profile over the whole run (initialization included).
    pub merged: CommProfile,
    /// Profile of the `"steady"` region only — the paper's analysis input.
    pub steady: CommProfile,
}

/// Runs `app` at `procs` ranks under the IPM profiler and returns both the
/// merged and the steady-state profiles (paper §3.2: "we use IPM's
/// regioning feature … to examine only the profiling data from one section
/// of the code").
pub fn profile_app(app: &dyn CommKernel, procs: usize) -> Result<AppOutcome, MpiError> {
    profile_app_with(
        app,
        procs,
        WorldConfig::new(procs).timeout(Duration::from_secs(60)),
    )
}

/// Like [`profile_app`], but composes the profiler into a caller-supplied
/// [`WorldConfig`] — e.g. one carrying a trace recorder, an extra hook, or
/// a different timeout. The config's `size` is overridden to `procs` and
/// the IPM profiler is chained after any hook already installed.
pub fn profile_app_with(
    app: &dyn CommKernel,
    procs: usize,
    config: WorldConfig,
) -> Result<AppOutcome, MpiError> {
    let profiler = Arc::new(IpmProfiler::new(procs));
    let prof_for_ranks = Arc::clone(&profiler);
    let base_hook = config.hook.clone();
    let mut config = config.hook(Arc::new(hfast_mpi::MultiHook::new(vec![
        base_hook,
        Arc::clone(&profiler) as Arc<dyn CommHook>,
    ])));
    config.size = procs;
    World::run_with(config, move |comm| app.run(comm, &prof_for_ranks))?
        .into_iter()
        .collect::<Result<Vec<()>, MpiError>>()?;
    Ok(AppOutcome {
        name: app.name(),
        procs,
        merged: profiler.profile(),
        steady: profiler.region_profile("steady"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cactus;

    #[test]
    fn outcome_distinguishes_regions() {
        let out = profile_app(&Cactus::new(4), 8).unwrap();
        assert_eq!(out.name, "Cactus");
        assert_eq!(out.procs, 8);
        assert!(out.steady.total_calls() > 0);
        assert!(out.merged.total_calls() >= out.steady.total_calls());
    }

    #[test]
    fn custom_config_composes_trace_and_profiler() {
        let rec = Arc::new(hfast_trace::TraceRecorder::new());
        let cfg = WorldConfig::new(1).trace(Arc::clone(&rec));
        let out = profile_app_with(&Cactus::new(4), 8, cfg).unwrap();
        assert_eq!(out.procs, 8, "config size overridden to procs");
        assert!(out.steady.total_calls() > 0, "profiler still attached");
        assert!(!rec.is_empty(), "ranks recorded spans into the recorder");
        let doc = hfast_trace::export(&rec.snapshot());
        let stats = hfast_trace::validate(&doc).expect("valid trace JSON");
        assert_eq!(stats.rank_tracks, 8, "one track per rank");
        assert!(stats.linked_recvs > 0);
        assert_eq!(stats.orphan_recvs, 0, "every recv has its send parent");
    }
}
