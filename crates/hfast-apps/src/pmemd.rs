//! PMEMD — particle mesh Ewald molecular dynamics (paper Figure 9).
//!
//! PMEMD spatially decomposes the molecule; the data a rank exchanges with
//! another "drops off as their spatial regions become more distant", so the
//! volume matrix is a dense band that decays away from the diagonal. Every
//! rank still touches every other rank (sometimes with zero-byte messages
//! when "a communicating partner expects a message that is not necessary"),
//! so the unthresholded TDC is P while the thresholded TDC is governed by
//! the decay rate — and one "hot" rank holding the dense solute region
//! keeps the *maximum* TDC at P even after thresholding. The divergence of
//! maximum from average TDC makes PMEMD a case-iii code.
//!
//! Calibration targets:
//! * P = 64: TDC @ 2 KB = (63, 63) — everything above the cutoff.
//! * P = 256: TDC @ 2 KB = (255, ≈55).
//! * Call mix ≈ Isend 32.7 %, Irecv 29.3 %, Waitany 36.6 %.
//! * Median PTP buffer ≈ 6 KB (P=64) / 72 B (P=256); collectives ≈ 1 % at
//!   768 B.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Payload, ReduceOp, Request, Result, SrcSel, TagSel};

use crate::common::{ring_distance, tags};
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// Interaction-volume scale factor (bytes·ranks).
const VOLUME_SCALE: f64 = 758_000.0;
/// Spatial decay exponent (fraction-of-ring units).
const DECAY: f64 = 3.51;
/// Tiny bookkeeping payload for distant partners (Table 3: 72 B median at
/// P = 256).
pub const TINY_BYTES: usize = 72;
/// Reduction payload (Table 3: 768 B median collective buffer).
pub const COLLECTIVE_BYTES: usize = 768;
/// The rank holding the dense solute region (max TDC = P − 1 thresholded).
pub const HOT_RANK: usize = 0;

/// The PMEMD communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Pmemd {
    /// Force/energy evaluation steps.
    pub steps: usize,
}

impl Pmemd {
    /// Kernel with an explicit step count.
    pub fn new(steps: usize) -> Self {
        Pmemd { steps }
    }

    /// Ring distance up to which exchanges stay above the 2 KB cutoff:
    /// shrinks as the fixed molecule is split across more ranks.
    pub fn cutoff_distance(procs: usize) -> usize {
        (procs / 2).min(6912 / procs.max(1)).max(1)
    }

    /// Bytes rank `src` sends to rank `dst` per step.
    ///
    /// Within [`cutoff_distance`](Self::cutoff_distance), an exponentially
    /// decaying interaction volume clamped to stay circuit-worthy; beyond
    /// it, tiny bookkeeping. Pairs involving the hot rank always carry
    /// ≥ 4 KB.
    pub fn message_bytes(procs: usize, src: usize, dst: usize) -> usize {
        let d = ring_distance(src, dst, procs);
        if d == 0 {
            return 0;
        }
        let decayed = (VOLUME_SCALE / procs as f64) * (-DECAY * d as f64 / procs as f64).exp();
        if src == HOT_RANK || dst == HOT_RANK {
            return (decayed as usize).max(4096);
        }
        if d <= Self::cutoff_distance(procs) {
            (decayed as usize).max(2048)
        } else {
            TINY_BYTES
        }
    }

    /// Collectives issued per step (reductions of energies/virials); grows
    /// mildly with concurrency to track the paper's 0.9 → 1.4 % share.
    pub fn collectives_per_step(procs: usize) -> usize {
        (procs / 24).max(2)
    }
}

impl Default for Pmemd {
    /// Three force evaluations (each touches every pair, so the topology
    /// is complete after one).
    fn default() -> Self {
        Pmemd::new(3)
    }
}

impl CommKernel for Pmemd {
    fn name(&self) -> &'static str {
        "PMEMD"
    }

    fn meta(&self) -> AppMeta {
        lookup("PMEMD").expect("PMEMD is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let p = comm.size();
        let rank = comm.rank();
        profiler.enter_region(rank, "steady");
        for _step in 0..self.steps {
            // Post receives from every partner, then send to every partner.
            let mut pool: Vec<Request> = Vec::with_capacity(2 * p);
            for off in 1..p {
                let from = (rank + p - off) % p;
                pool.push(comm.irecv(
                    SrcSel::Rank(from),
                    TagSel::Tag(tags::FORCE),
                    Self::message_bytes(p, from, rank),
                )?);
            }
            let mut send_reqs: Vec<Request> = Vec::with_capacity(p);
            for off in 1..p {
                let to = (rank + off) % p;
                send_reqs.push(comm.isend(
                    to,
                    tags::FORCE,
                    Payload::synthetic(Self::message_bytes(p, rank, to)),
                )?);
            }
            // The "unnecessary message" case: a zero-byte send to the
            // antipodal partner that the receiver drains with the rest.
            if p > 2 {
                let opposite = (rank + p / 2) % p;
                send_reqs.push(comm.isend(opposite, tags::CONTROL, Payload::synthetic(0))?);
                pool.push(comm.irecv(
                    SrcSel::Rank((rank + p - p / 2) % p),
                    TagSel::Tag(tags::CONTROL),
                    0,
                )?);
            }
            // Drive completion with MPI_Waitany, folding in a quarter of
            // the send requests (PMEMD's measured mix shows slightly more
            // Waitany than Irecv).
            let fold = send_reqs.len() / 4;
            pool.extend(send_reqs.drain(..fold));
            while !pool.is_empty() {
                comm.waitany(&mut pool)?;
            }
            // Energy/virial reductions.
            for _ in 0..Self::collectives_per_step(p) {
                comm.allreduce(Payload::synthetic(COLLECTIVE_BYTES), ReduceOp::Sum)?;
            }
        }
        profiler.exit_region(rank);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::{tdc, BDP_CUTOFF};

    #[test]
    fn p64_everything_is_above_cutoff() {
        let out = profile_app(&Pmemd::new(1), 64).unwrap();
        let g = out.steady.comm_graph();
        let cut = tdc(&g, BDP_CUTOFF);
        assert_eq!((cut.max, cut.min), (63, 63), "paper Table 3: (63, 63)");
    }

    #[test]
    fn message_sizes_decay_with_distance() {
        let near = Pmemd::message_bytes(256, 10, 11);
        let mid = Pmemd::message_bytes(256, 10, 30);
        let far = Pmemd::message_bytes(256, 10, 150);
        assert!(near > mid, "{near} > {mid}");
        assert!(mid >= 2048);
        assert_eq!(far, TINY_BYTES);
        assert_eq!(Pmemd::message_bytes(256, 5, 5), 0);
        // Symmetric in distance.
        assert_eq!(
            Pmemd::message_bytes(256, 10, 30),
            Pmemd::message_bytes(256, 30, 10)
        );
    }

    #[test]
    fn hot_rank_is_circuit_worthy_to_everyone() {
        for dst in 1..256 {
            assert!(Pmemd::message_bytes(256, HOT_RANK, dst) >= 4096);
        }
    }

    #[test]
    fn cutoff_distance_shrinks_with_concurrency() {
        assert_eq!(Pmemd::cutoff_distance(64), 32, "whole ring at P=64");
        assert_eq!(Pmemd::cutoff_distance(256), 27);
        assert!(Pmemd::cutoff_distance(512) < Pmemd::cutoff_distance(256));
    }

    #[test]
    fn call_mix_is_waitany_driven() {
        let out = profile_app(&Pmemd::new(2), 32).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        // Paper: Isend 32.7, Irecv 29.3, Waitany 36.6.
        assert!((mix[&CallKind::Isend] - 32.7).abs() < 5.0, "{mix:?}");
        assert!((mix[&CallKind::Irecv] - 29.3).abs() < 5.0);
        assert!((mix[&CallKind::Waitany] - 36.6).abs() < 5.0);
        assert!(
            !mix.contains_key(&CallKind::Wait),
            "no plain MPI_Wait slice"
        );
    }

    #[test]
    fn median_buffer_is_6k_at_p64() {
        let out = profile_app(&Pmemd::new(1), 64).unwrap();
        let median = out.steady.ptp_buffer_histogram().median().unwrap();
        assert!(
            (4000..=8000).contains(&median),
            "paper: 6k median at P=64, got {median}"
        );
        assert_eq!(
            out.steady.collective_buffer_histogram().median(),
            Some(COLLECTIVE_BYTES as u64)
        );
    }

    #[test]
    fn zero_byte_messages_exist() {
        let out = profile_app(&Pmemd::new(1), 16).unwrap();
        let has_zero = out
            .steady
            .entries
            .iter()
            .any(|e| e.kind == CallKind::Isend && e.bytes == 0);
        assert!(has_zero, "PMEMD sends 0-byte buffers (paper Table 3 note)");
    }
}
