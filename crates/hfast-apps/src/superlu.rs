//! SuperLU — sparse LU factorization on a 2D process grid (paper Figure 8).
//!
//! SuperLU-DIST arranges ranks in a √P × √P grid; panel factorization sends
//! L/U blocks along process rows and columns (the partners that matter at
//! the bandwidth-delay cutoff: `2(√P − 1)` of them, so the thresholded TDC
//! scales with √P), while pivot/symbolic bookkeeping trickles tiny blocking
//! messages to *every* rank over the course of the solve (unthresholded
//! connectivity = P). Initialization redistributes the input matrix from
//! rank 0 — traffic the paper explicitly excludes via IPM regions.
//!
//! Calibration targets:
//! * TDC @ 2 KB = (14, 14) at P = 64 and (30, 30) at P = 256 — `2(√P−1)`.
//! * Unthresholded connectivity ≈ P.
//! * Call mix ≈ Wait 30.6 %, Isend 16.4 %, Irecv 15.7 %, Recv 15.4 %,
//!   Send 14.7 %, Bcast 5.3 %.
//! * Median PTP buffer 64 B (P=64) / 48 B (P=256); median collective 24 B.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Group, Payload, Result, SrcSel, Tag, TagSel};

use crate::common::{grid2d, tags};
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// L/U block sizes cycled through panel updates (all above the cutoff).
pub const BLOCK_BYTES: [usize; 4] = [4 << 10, 8 << 10, 16 << 10, 32 << 10];
/// Row/column broadcast payload (Table 3: 24 B median collective buffer).
pub const BCAST_BYTES: usize = 24;
/// Matrix redistribution chunk during initialization.
pub const INIT_BYTES: usize = 1 << 20;

/// The SuperLU communication kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuperLu {
    /// Panel steps; `None` runs `P − 1` steps so the pivot bookkeeping
    /// touches every rank pair (the unthresholded connectivity-of-P
    /// behaviour the paper reports).
    pub steps: Option<usize>,
}

impl SuperLu {
    /// Kernel with an explicit step count.
    pub fn new(steps: usize) -> Self {
        SuperLu { steps: Some(steps) }
    }

    /// Tiny bookkeeping message size (Table 3 medians: 64 B / 48 B).
    pub fn tiny_bytes(procs: usize) -> usize {
        if procs >= 256 {
            48
        } else {
            64
        }
    }
}

impl CommKernel for SuperLu {
    fn name(&self) -> &'static str {
        "SuperLU"
    }

    fn meta(&self) -> AppMeta {
        lookup("SuperLU").expect("SuperLU is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let p = comm.size();
        let rank = comm.rank();
        let (rows, cols) = grid2d(p);
        let (row, col) = (rank / cols, rank % cols);
        let steps = self.steps.unwrap_or(p.saturating_sub(1)).max(1);
        let tiny = Self::tiny_bytes(p);
        let row_group = Group::new((0..cols).map(|c| row * cols + c).collect())?;
        let row_root = row * cols;

        // Initialization: rank 0 redistributes the input matrix — the
        // traffic the paper's steady-state analysis excludes (§3.2).
        profiler.enter_region(rank, "init");
        for _ in 0..2 {
            let payload = (rank == 0).then(|| Payload::synthetic(INIT_BYTES));
            comm.bcast(0, payload)?;
        }
        profiler.exit_region(rank);

        profiler.enter_region(rank, "steady");
        for s in 0..steps {
            // Panel block transfer: shift along the row on even steps,
            // along the column on odd steps (covers all 2(√P−1) partners).
            let bytes = BLOCK_BYTES[s % BLOCK_BYTES.len()];
            let (to, from) = if s % 2 == 0 && cols > 1 {
                let off = 1 + (s / 2) % (cols - 1);
                (
                    row * cols + (col + off) % cols,
                    row * cols + (col + cols - off) % cols,
                )
            } else if rows > 1 {
                let off = 1 + (s / 2) % (rows - 1);
                (
                    ((row + off) % rows) * cols + col,
                    ((row + rows - off) % rows) * cols + col,
                )
            } else {
                let off = 1 + (s / 2) % (cols.max(2) - 1);
                (
                    row * cols + (col + off) % cols,
                    row * cols + (col + cols - off) % cols,
                )
            };
            let rreq = comm.irecv(SrcSel::Rank(from), TagSel::Tag(tags::BLOCK), bytes)?;
            let sreq = comm.isend(to, tags::BLOCK, Payload::synthetic(bytes))?;
            comm.wait(rreq)?;
            comm.wait(sreq)?;

            // Pivot bookkeeping: one tiny blocking exchange per step with a
            // rotating partner — over P−1 steps this touches every rank.
            let off = 1 + s % (p - 1).max(1);
            let to_tiny = (rank + off) % p;
            let from_tiny = (rank + p - off) % p;
            comm.send(
                to_tiny,
                Tag(tags::CONTROL.0 + (s % 7) as u32),
                Payload::synthetic(tiny),
            )?;
            comm.recv(from_tiny, Tag(tags::CONTROL.0 + (s % 7) as u32))?;

            // Panel description broadcast along the process row.
            if s % 3 == 0 {
                let payload = (rank == row_root).then(|| Payload::synthetic(BCAST_BYTES));
                comm.bcast_in(&row_group, row_root, payload)?;
            }
            // Pivot-growth barrier every fourth step.
            if s % 4 == 3 {
                comm.barrier()?;
            }
        }
        profiler.exit_region(rank);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::{tdc, BDP_CUTOFF};

    #[test]
    fn thresholded_tdc_is_row_plus_col() {
        let out = profile_app(&SuperLu::default(), 64).unwrap();
        let g = out.steady.comm_graph();
        let cut = tdc(&g, BDP_CUTOFF);
        assert_eq!((cut.max, cut.min), (14, 14), "2(√64 − 1) = 14");
        assert!((cut.avg - 14.0).abs() < 1e-9);
    }

    #[test]
    fn unthresholded_connectivity_is_full() {
        let out = profile_app(&SuperLu::default(), 64).unwrap();
        let g = out.steady.comm_graph();
        let uncut = tdc(&g, 0);
        assert_eq!(uncut.max, 63, "tiny pivot traffic touches every pair");
        assert_eq!(uncut.min, 63);
    }

    #[test]
    fn tdc_scales_with_sqrt_p() {
        // 16 ranks: 2(√16 − 1) = 6.
        let out = profile_app(&SuperLu::default(), 16).unwrap();
        let g = out.steady.comm_graph();
        assert_eq!(tdc(&g, BDP_CUTOFF).max, 6);
    }

    #[test]
    fn call_mix_matches_figure2() {
        let out = profile_app(&SuperLu::default(), 64).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        // Paper: Wait 30.6, Isend 16.4, Irecv 15.7, Recv 15.4, Send 14.7,
        // Bcast 5.3 (+ Other 1.9, here the barrier slice).
        assert!((mix[&CallKind::Wait] - 30.6).abs() < 2.0, "{mix:?}");
        assert!((mix[&CallKind::Isend] - 16.4).abs() < 2.0);
        assert!((mix[&CallKind::Irecv] - 15.7).abs() < 2.0);
        assert!((mix[&CallKind::Send] - 14.7).abs() < 2.0);
        assert!((mix[&CallKind::Recv] - 15.4).abs() < 2.0);
        assert!((mix[&CallKind::Bcast] - 5.3).abs() < 1.5);
    }

    #[test]
    fn medians_match_table3() {
        let out = profile_app(&SuperLu::default(), 64).unwrap();
        assert_eq!(out.steady.ptp_buffer_histogram().median(), Some(64));
        assert_eq!(out.steady.collective_buffer_histogram().median(), Some(24));
        assert_eq!(SuperLu::tiny_bytes(256), 48);
    }

    #[test]
    fn init_traffic_is_excluded_from_steady_state() {
        let out = profile_app(&SuperLu::new(4), 16).unwrap();
        let steady_max = out.steady.ptp_buffer_histogram().max().unwrap_or(0);
        assert!(steady_max < INIT_BYTES as u64);
        // The merged profile sees the 1 MB redistribution.
        let merged_col_max = out.merged.collective_buffer_histogram().max().unwrap();
        assert_eq!(merged_col_max, INIT_BYTES as u64);
    }
}
