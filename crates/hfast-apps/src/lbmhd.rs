//! LBMHD — lattice Boltzmann magneto-hydrodynamics (paper Figure 7).
//!
//! LBMHD streams lattice distributions in 27 directions but is optimized to
//! communicate with only 12 partners; the interpolation between the
//! diagonal streaming lattice and the underlying grid scatters the partners
//! *off* the rank diagonal (unlike Cactus's axis bands). The pattern is
//! isotropic — every rank sees the same 12 relative partners — yet not
//! isomorphic to any regular mesh, making LBMHD the paper's case-ii
//! archetype.
//!
//! Calibration targets:
//! * TDC = 12 max / ≈11.5-11.8 avg at both scales, insensitive to cutoff
//!   and concurrency.
//! * Call mix exactly Isend 40 %, Irecv 40 %, Waitall 20 %.
//! * Median PTP buffer ≈ 811 KB (P=64) / 848 KB (P=256).

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Payload, ReduceOp, Result};

use crate::common::{grid2d, paired_exchange, tags};
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// The 12 interpolation-shifted partner offsets on the 2D process grid:
/// knight-like and long-diagonal displacements (no axis neighbours — the
/// streaming directions land between grid rows after interpolation).
pub const OFFSETS: [(isize, isize); 12] = [
    (1, 2),
    (2, 1),
    (2, 2),
    (-1, 2),
    (-2, 1),
    (-2, 2),
    (1, -2),
    (2, -1),
    (2, -2),
    (-1, -2),
    (-2, -1),
    (-2, -2),
];

/// The LBMHD communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Lbmhd {
    /// Lattice update steps.
    pub steps: usize,
}

impl Lbmhd {
    /// Kernel with an explicit step count.
    pub fn new(steps: usize) -> Self {
        Lbmhd { steps }
    }

    /// Streaming buffer size; Table 3 reports 811 KB at P = 64 growing to
    /// 848 KB at P = 256 (the aggregated velocity-space payload grows
    /// slightly with the partition count in the paper's weak-scaled runs).
    pub fn buffer_bytes(procs: usize) -> usize {
        if procs <= 64 {
            811 << 10
        } else if procs >= 256 {
            848 << 10
        } else {
            // Interpolate in log2(P) between the two measured points.
            let t = ((procs as f64).log2() - 6.0) / 2.0;
            ((811.0 + t * 37.0) as usize) << 10
        }
    }

    /// The 12 lattice partners of `rank` (periodic 2D process grid).
    pub fn partners(procs: usize, rank: usize) -> Vec<usize> {
        let (rows, cols) = grid2d(procs);
        let (r, c) = (rank / cols, rank % cols);
        let mut out: Vec<usize> = OFFSETS
            .iter()
            .map(|&(dr, dc)| {
                let nr = (r as isize + dr).rem_euclid(rows as isize) as usize;
                let nc = (c as isize + dc).rem_euclid(cols as isize) as usize;
                nr * cols + nc
            })
            .filter(|&p| p != rank)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl Default for Lbmhd {
    /// 16 lattice updates: one tiny-reduction cycle.
    fn default() -> Self {
        Lbmhd::new(16)
    }
}

impl CommKernel for Lbmhd {
    fn name(&self) -> &'static str {
        "LBMHD"
    }

    fn meta(&self) -> AppMeta {
        lookup("LBMHD").expect("LBMHD is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let partners = Self::partners(comm.size(), comm.rank());
        let bytes = Self::buffer_bytes(comm.size());
        profiler.enter_region(comm.rank(), "steady");
        for step in 0..self.steps {
            // Streaming exchange: isend+irecv per partner, one waitall per
            // two partners → exactly the 40/40/20 mix of Figure 2.
            paired_exchange(comm, &partners, bytes, tags::HALO, 2)?;
            if step % 16 == 15 {
                comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)?;
            }
        }
        profiler.exit_region(comm.rank());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::{detect_structure, tdc, StructureClass, BDP_CUTOFF};

    #[test]
    fn twelve_partners_everywhere() {
        for &p in &[64usize, 256] {
            for rank in [0, 1, p / 2, p - 1] {
                let partners = Lbmhd::partners(p, rank);
                assert_eq!(partners.len(), 12, "P={p} rank={rank}");
                // Symmetry: every partner lists us back.
                for &q in &partners {
                    assert!(
                        Lbmhd::partners(p, q).contains(&rank),
                        "P={p}: {q} must list {rank}"
                    );
                }
            }
        }
    }

    #[test]
    fn tdc_matches_paper() {
        let out = profile_app(&Lbmhd::new(4), 64).unwrap();
        let g = out.steady.comm_graph();
        let s = tdc(&g, BDP_CUTOFF);
        assert_eq!(s.max, 12);
        assert!(s.avg > 11.0, "near-uniform degree 12: {}", s.avg);
        // Insensitive to thresholding (811 KB faces).
        assert_eq!(tdc(&g, 0).max, 12);
        assert_eq!(tdc(&g, 128 << 10).max, 12);
    }

    #[test]
    fn pattern_is_scattered_not_mesh() {
        let out = profile_app(&Lbmhd::new(2), 64).unwrap();
        let g = out.steady.comm_graph();
        assert_eq!(detect_structure(&g, 0), StructureClass::Irregular);
        // No axis-neighbour (diagonal band) traffic.
        assert_eq!(g.edge(0, 1).count, 0);
    }

    #[test]
    fn call_mix_is_40_40_20() {
        let out = profile_app(&Lbmhd::new(8), 64).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        assert!((mix[&CallKind::Isend] - 40.0).abs() < 0.5, "{mix:?}");
        assert!((mix[&CallKind::Irecv] - 40.0).abs() < 0.5);
        assert!((mix[&CallKind::Waitall] - 20.0).abs() < 0.5);
    }

    #[test]
    fn buffer_sizes_match_table3() {
        assert_eq!(Lbmhd::buffer_bytes(64), 811 << 10);
        assert_eq!(Lbmhd::buffer_bytes(256), 848 << 10);
        let mid = Lbmhd::buffer_bytes(128);
        assert!(mid > (811 << 10) && mid < (848 << 10));
        let out = profile_app(&Lbmhd::new(2), 64).unwrap();
        assert_eq!(
            out.steady.ptp_buffer_histogram().median(),
            Some((811 << 10) as u64)
        );
    }
}
