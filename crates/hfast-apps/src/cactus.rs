//! Cactus — 3D finite-difference ghost-zone exchange (paper Figure 6).
//!
//! Cactus solves Einstein's equations by finite differencing on a regular
//! 3D grid, block-decomposed over ranks. Each rank exchanges ~300 KB ghost
//! faces with up to six axis neighbours per iteration through nonblocking
//! sends/receives, plus a tiny global reduction every few iterations.
//!
//! Calibration targets (paper Table 3 / Figures 2, 6):
//! * TDC (max, avg) ≈ (6, 5) at both P = 64 and 256, insensitive to the
//!   message-size cutoff.
//! * Call mix ≈ Irecv 26.8 %, Isend 26.8 %, Wait 39.3 %, Waitall 6.5 %.
//! * Median PTP buffer ≈ 300 KB; collectives ≈ 0.5 % of calls at 8 bytes.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Payload, ReduceOp, Result};
use hfast_topology::generators::{balanced_dims3, mesh3d_neighbors};

use crate::common::{halo_exchange, tags};
use crate::meta::{lookup, AppMeta};
use crate::CommKernel;

/// Ghost-face size: Table 3 reports 299-300 KB medians.
pub const FACE_BYTES: usize = 300 << 10;

/// The Cactus communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Cactus {
    /// Evolution iterations to run.
    pub steps: usize,
}

impl Cactus {
    /// Kernel with an explicit iteration count.
    pub fn new(steps: usize) -> Self {
        Cactus { steps }
    }

    /// Axis neighbours of `rank` in the non-periodic 3D block decomposition.
    pub fn partners(procs: usize, rank: usize) -> Vec<usize> {
        mesh3d_neighbors(balanced_dims3(procs), rank)
    }
}

impl Default for Cactus {
    /// 16 iterations: two full 8-step reduction cycles.
    fn default() -> Self {
        Cactus::new(16)
    }
}

impl CommKernel for Cactus {
    fn name(&self) -> &'static str {
        "Cactus"
    }

    fn meta(&self) -> AppMeta {
        lookup("Cactus").expect("Cactus is in Table 2")
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let partners = Self::partners(comm.size(), comm.rank());
        profiler.enter_region(comm.rank(), "steady");
        for step in 0..self.steps {
            // Ghost exchange: wait each receive and half the sends
            // individually, sweep the rest with one waitall — this is what
            // produces Cactus's measured Wait/Waitall split.
            halo_exchange(comm, &partners, FACE_BYTES, tags::HALO, partners.len() / 2)?;
            // Constraint-norm reduction every 8 iterations (tiny payload).
            if step % 8 == 0 {
                comm.allreduce(Payload::synthetic(8), ReduceOp::Max)?;
            }
        }
        profiler.exit_region(comm.rank());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_mpi::CallKind;
    use hfast_topology::{detect_structure, tdc, StructureClass, BDP_CUTOFF};

    #[test]
    fn tdc_matches_paper() {
        let out = profile_app(&Cactus::default(), 64).unwrap();
        let g = out.steady.comm_graph();
        let uncut = tdc(&g, 0);
        assert_eq!(uncut.max, 6);
        assert!(
            (uncut.avg - 4.5).abs() < 0.01,
            "4x4x4 mesh avg: {}",
            uncut.avg
        );
        // Insensitive to thresholding (all faces ≫ 2 KB).
        let cut = tdc(&g, BDP_CUTOFF);
        assert_eq!(cut.max, uncut.max);
        assert_eq!(cut.avg, uncut.avg);
    }

    #[test]
    fn topology_is_a_mesh() {
        let out = profile_app(&Cactus::new(2), 64).unwrap();
        let g = out.steady.comm_graph();
        assert_eq!(
            detect_structure(&g, BDP_CUTOFF),
            StructureClass::Mesh3D(4, 4, 4)
        );
    }

    #[test]
    fn call_mix_matches_figure2() {
        let out = profile_app(&Cactus::default(), 64).unwrap();
        let mix: std::collections::BTreeMap<_, _> = out.steady.call_mix().into_iter().collect();
        // Paper: Irecv 26.8, Isend 26.8, Wait 39.3, Waitall 6.5, Other 0.6.
        assert!((mix[&CallKind::Irecv] - 26.8).abs() < 2.0, "{mix:?}");
        assert!((mix[&CallKind::Isend] - 26.8).abs() < 2.0);
        assert!((mix[&CallKind::Wait] - 39.3).abs() < 3.0);
        assert!((mix[&CallKind::Waitall] - 6.5).abs() < 2.5);
        assert!(out.steady.ptp_call_fraction() > 0.99);
    }

    #[test]
    fn buffers_match_table3() {
        let out = profile_app(&Cactus::new(8), 64).unwrap();
        let ptp = out.steady.ptp_buffer_histogram();
        assert_eq!(ptp.median(), Some(FACE_BYTES as u64));
        let col = out.steady.collective_buffer_histogram();
        assert_eq!(col.median(), Some(8));
    }

    #[test]
    fn non_power_of_two_sizes_run() {
        let out = profile_app(&Cactus::new(2), 27).unwrap();
        let g = out.steady.comm_graph();
        assert_eq!(tdc(&g, 0).max, 6, "3x3x3 interior nodes have 6 partners");
    }
}
