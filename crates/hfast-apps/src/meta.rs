//! Application metadata — paper Table 2.

/// One row of the paper's Table 2: the studied application's provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppMeta {
    /// Application name.
    pub name: &'static str,
    /// Approximate lines of code of the original application.
    pub lines: u32,
    /// Scientific discipline.
    pub discipline: &'static str,
    /// Problem and numerical method.
    pub problem: &'static str,
    /// Data-structure characterization.
    pub structure: &'static str,
}

/// The Table 2 rows, in paper order.
pub const TABLE2: [AppMeta; 6] = [
    AppMeta {
        name: "Cactus",
        lines: 84_000,
        discipline: "Astrophysics",
        problem: "Einstein's Theory of GR via Finite Differencing",
        structure: "Grid",
    },
    AppMeta {
        name: "LBMHD",
        lines: 1_500,
        discipline: "Plasma Physics",
        problem: "Magneto-Hydrodynamics via Lattice Boltzmann",
        structure: "Lattice/Grid",
    },
    AppMeta {
        name: "GTC",
        lines: 5_000,
        discipline: "Magnetic Fusion",
        problem: "Vlasov-Poisson Equation via Particle in Cell",
        structure: "Particle/Grid",
    },
    AppMeta {
        name: "SuperLU",
        lines: 42_000,
        discipline: "Linear Algebra",
        problem: "Sparse Solve via LU Decomposition",
        structure: "Sparse Matrix",
    },
    AppMeta {
        name: "PMEMD",
        lines: 37_000,
        discipline: "Life Sciences",
        problem: "Molecular Dynamics via Particle Mesh Ewald",
        structure: "Particle",
    },
    AppMeta {
        name: "PARATEC",
        lines: 50_000,
        discipline: "Material Science",
        problem: "Density Functional Theory via FFT",
        structure: "Fourier/Grid",
    },
];

/// Looks up a Table 2 row by application name.
pub fn lookup(name: &str) -> Option<AppMeta> {
    TABLE2.iter().copied().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        assert_eq!(TABLE2.len(), 6);
        assert_eq!(lookup("Cactus").unwrap().lines, 84_000);
        assert_eq!(lookup("PARATEC").unwrap().discipline, "Material Science");
        assert_eq!(lookup("GTC").unwrap().structure, "Particle/Grid");
        assert!(lookup("Chombo").is_none());
    }
}
