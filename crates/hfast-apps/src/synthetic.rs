//! Synthetic workloads: seeded random communication patterns.
//!
//! Beyond the six calibrated study codes, downstream users evaluating HFAST
//! for *their* machine want to sweep arbitrary points in the
//! (degree, message size, isotropy) space. [`Synthetic`] generates a
//! deterministic random pattern from a seed: every rank derives the same
//! global symmetric partner graph, so the kernel needs no coordination.

use hfast_ipm::IpmProfiler;
use hfast_mpi::{Comm, Payload, ReduceOp, Result, SrcSel, TagSel};
use hfast_par::Rng64;

use crate::common::tags;
use crate::meta::AppMeta;
use crate::CommKernel;

/// A seeded random-topology communication kernel.
#[derive(Debug, Clone, Copy)]
pub struct Synthetic {
    /// RNG seed; equal seeds produce identical patterns at equal sizes.
    pub seed: u64,
    /// Target partners per rank (an Erdős–Rényi-style expected degree).
    pub degree: usize,
    /// Bytes per exchange.
    pub msg_bytes: usize,
    /// Exchange steps.
    pub steps: usize,
    /// Issue a tiny allreduce every this many steps (0 = never).
    pub collective_every: usize,
}

impl Synthetic {
    /// A pattern with the given seed and expected degree.
    pub fn new(seed: u64, degree: usize, msg_bytes: usize) -> Self {
        Synthetic {
            seed,
            degree,
            msg_bytes,
            steps: 4,
            collective_every: 2,
        }
    }

    /// The global symmetric partner lists, derived identically on every
    /// rank from the seed.
    pub fn partner_lists(&self, procs: usize) -> Vec<Vec<usize>> {
        let mut rng = Rng64::new(self.seed);
        let mut partners: Vec<Vec<usize>> = vec![Vec::new(); procs];
        if procs < 2 {
            return partners;
        }
        // Expected-degree sampling: each rank proposes `degree` partners;
        // edges are symmetric, so realized degrees cluster around the
        // target without exceeding 2×.
        for v in 0..procs {
            while partners[v].len() < self.degree.min(procs - 1) {
                let u = rng.range(0, procs);
                if u != v && !partners[v].contains(&u) {
                    partners[v].push(u);
                    partners[u].push(v);
                }
            }
        }
        for list in &mut partners {
            list.sort_unstable();
            list.dedup();
        }
        partners
    }
}

impl CommKernel for Synthetic {
    fn name(&self) -> &'static str {
        "Synthetic"
    }

    fn meta(&self) -> AppMeta {
        AppMeta {
            name: "Synthetic",
            lines: 0,
            discipline: "Benchmarking",
            problem: "Seeded random communication pattern",
            structure: "Random graph",
        }
    }

    fn run(&self, comm: &mut Comm, profiler: &IpmProfiler) -> Result<()> {
        let lists = self.partner_lists(comm.size());
        let mine = &lists[comm.rank()];
        profiler.enter_region(comm.rank(), "steady");
        for step in 0..self.steps {
            let mut reqs = Vec::with_capacity(2 * mine.len());
            for &p in mine {
                reqs.push(comm.irecv(SrcSel::Rank(p), TagSel::Tag(tags::HALO), self.msg_bytes)?);
            }
            for &p in mine {
                reqs.push(comm.isend(p, tags::HALO, Payload::synthetic(self.msg_bytes))?);
            }
            comm.waitall(reqs)?;
            if self.collective_every > 0 && step % self.collective_every == 0 {
                comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)?;
            }
        }
        profiler.exit_region(comm.rank());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::profile_app;
    use hfast_topology::{tdc, BDP_CUTOFF};

    #[test]
    fn partner_lists_are_symmetric_and_deterministic() {
        let app = Synthetic::new(7, 5, 64 << 10);
        let a = app.partner_lists(32);
        let b = app.partner_lists(32);
        assert_eq!(a, b, "same seed, same pattern");
        for (v, list) in a.iter().enumerate() {
            for &u in list {
                assert!(a[u].contains(&v), "symmetry: {u} must list {v}");
                assert_ne!(u, v);
            }
        }
        let c = Synthetic::new(8, 5, 64 << 10).partner_lists(32);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn degrees_cluster_near_target() {
        let app = Synthetic::new(42, 6, 4096);
        let lists = app.partner_lists(64);
        for list in &lists {
            assert!(list.len() >= 6, "at least the target degree");
            assert!(list.len() <= 18, "not wildly above it: {}", list.len());
        }
    }

    #[test]
    fn profiled_run_matches_generated_pattern() {
        let app = Synthetic::new(3, 4, 32 << 10);
        let out = profile_app(&app, 16).unwrap();
        let g = out.steady.comm_graph();
        let lists = app.partner_lists(16);
        for (v, list) in lists.iter().enumerate() {
            assert_eq!(g.degree_thresholded(v, BDP_CUTOFF), list.len());
        }
        let s = tdc(&g, BDP_CUTOFF);
        assert!(s.min >= 4);
    }

    #[test]
    fn degenerate_sizes() {
        let app = Synthetic::new(1, 3, 1024);
        assert!(app.partner_lists(1)[0].is_empty());
        let out = profile_app(&app, 2).unwrap();
        assert!(out.steady.total_calls() > 0);
    }
}
