//! Property-based tests for the application kernels' pattern generators:
//! partner relations must be symmetric (a sendrecv/halo exchange deadlocks
//! or drops traffic otherwise) and deterministic.

use proptest::prelude::*;

use hfast_apps::{Cactus, Lbmhd, Pmemd, Synthetic};

proptest! {
    #[test]
    fn cactus_partners_are_symmetric(procs in 2usize..100, rank_seed in 0usize..1000) {
        let rank = rank_seed % procs;
        for p in Cactus::partners(procs, rank) {
            prop_assert!(p < procs);
            prop_assert_ne!(p, rank);
            prop_assert!(
                Cactus::partners(procs, p).contains(&rank),
                "mesh neighbourhood must be mutual: {} vs {}",
                rank,
                p
            );
        }
    }

    #[test]
    fn lbmhd_partners_are_symmetric_and_bounded(
        procs in prop::sample::select(vec![16usize, 36, 64, 100, 144, 256]),
        rank_seed in 0usize..1000,
    ) {
        let rank = rank_seed % procs;
        let partners = Lbmhd::partners(procs, rank);
        prop_assert!(partners.len() <= 12);
        for p in partners {
            prop_assert!(
                Lbmhd::partners(procs, p).contains(&rank),
                "offset set must be closed under negation"
            );
        }
    }

    #[test]
    fn pmemd_message_sizes_are_symmetric_and_monotone(
        procs in prop::sample::select(vec![16usize, 64, 128, 256]),
        a in 0usize..256,
        b in 0usize..256,
    ) {
        let (a, b) = (a % procs, b % procs);
        prop_assert_eq!(
            Pmemd::message_bytes(procs, a, b),
            Pmemd::message_bytes(procs, b, a)
        );
        // Decay monotonicity for non-hot pairs: a partner one step farther
        // (up to the cutoff distance) never receives more bytes.
        let src = 1usize; // never the hot rank
        let cut = Pmemd::cutoff_distance(procs);
        for d in 1..cut.min(procs - 3) {
            let nearer = Pmemd::message_bytes(procs, src, src + d);
            let farther = Pmemd::message_bytes(procs, src, src + d + 1);
            if src + d + 1 != hfast_apps::pmemd::HOT_RANK {
                prop_assert!(nearer >= farther, "d={d}: {nearer} < {farther}");
            }
        }
    }

    #[test]
    fn synthetic_patterns_symmetric_for_any_seed(
        seed in 0u64..10_000,
        degree in 1usize..8,
        procs in 4usize..48,
    ) {
        let app = Synthetic::new(seed, degree, 4096);
        let lists = app.partner_lists(procs);
        prop_assert_eq!(lists.len(), procs);
        for (v, list) in lists.iter().enumerate() {
            prop_assert!(list.len() >= degree.min(procs - 1));
            for &u in list {
                prop_assert_ne!(u, v);
                prop_assert!(lists[u].contains(&v));
            }
        }
        // Determinism.
        prop_assert_eq!(&lists, &app.partner_lists(procs));
    }
}
