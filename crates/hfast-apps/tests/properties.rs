//! Property-based tests for the application kernels' pattern generators:
//! partner relations must be symmetric (a sendrecv/halo exchange deadlocks
//! or drops traffic otherwise) and deterministic.

use hfast_apps::{Cactus, Lbmhd, Pmemd, Synthetic};
use hfast_par::forall;

#[test]
fn cactus_partners_are_symmetric() {
    forall("cactus_partners_are_symmetric", 256, |rng| {
        let procs = rng.range(2, 100);
        let rank = rng.range(0, 1000) % procs;
        for p in Cactus::partners(procs, rank) {
            assert!(p < procs);
            assert_ne!(p, rank);
            assert!(
                Cactus::partners(procs, p).contains(&rank),
                "mesh neighbourhood must be mutual: {} vs {}",
                rank,
                p
            );
        }
    });
}

#[test]
fn lbmhd_partners_are_symmetric_and_bounded() {
    forall("lbmhd_partners_are_symmetric_and_bounded", 256, |rng| {
        let procs = *rng.pick(&[16usize, 36, 64, 100, 144, 256]);
        let rank = rng.range(0, 1000) % procs;
        let partners = Lbmhd::partners(procs, rank);
        assert!(partners.len() <= 12);
        for p in partners {
            assert!(
                Lbmhd::partners(procs, p).contains(&rank),
                "offset set must be closed under negation"
            );
        }
    });
}

#[test]
fn pmemd_message_sizes_are_symmetric_and_monotone() {
    forall(
        "pmemd_message_sizes_are_symmetric_and_monotone",
        256,
        |rng| {
            let procs = *rng.pick(&[16usize, 64, 128, 256]);
            let a = rng.range(0, 256) % procs;
            let b = rng.range(0, 256) % procs;
            assert_eq!(
                Pmemd::message_bytes(procs, a, b),
                Pmemd::message_bytes(procs, b, a)
            );
            // Decay monotonicity for non-hot pairs: a partner one step farther
            // (up to the cutoff distance) never receives more bytes.
            let src = 1usize; // never the hot rank
            let cut = Pmemd::cutoff_distance(procs);
            for d in 1..cut.min(procs - 3) {
                let nearer = Pmemd::message_bytes(procs, src, src + d);
                let farther = Pmemd::message_bytes(procs, src, src + d + 1);
                if src + d + 1 != hfast_apps::pmemd::HOT_RANK {
                    assert!(nearer >= farther, "d={d}: {nearer} < {farther}");
                }
            }
        },
    );
}

#[test]
fn synthetic_patterns_symmetric_for_any_seed() {
    forall("synthetic_patterns_symmetric_for_any_seed", 128, |rng| {
        let seed = rng.range_u64(0, 10_000);
        let degree = rng.range(1, 8);
        let procs = rng.range(4, 48);
        let app = Synthetic::new(seed, degree, 4096);
        let lists = app.partner_lists(procs);
        assert_eq!(lists.len(), procs);
        for (v, list) in lists.iter().enumerate() {
            assert!(list.len() >= degree.min(procs - 1));
            for &u in list {
                assert_ne!(u, v);
                assert!(lists[u].contains(&v));
            }
        }
        // Determinism.
        assert_eq!(&lists, &app.partner_lists(procs));
    });
}
