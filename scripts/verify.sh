#!/usr/bin/env bash
# Tier-1 verification: build, format, lint, test (unit + doc).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q
cargo test --doc --workspace -q
# Fault-replay smoke: exits non-zero unless HFAST beats the fat tree in
# goodput on every (app, failure-rate) cell.
cargo run --release -q -p hfast-bench --bin faults_replay > /dev/null
# Hotspot-analyzer smoke on one app: exits non-zero unless the traced
# replay's hottest HFAST transit link is circuit-switched.
cargo run --release -q -p hfast-bench --bin hotspots -- GTC > /dev/null
# Trace capture + JSON validation (GTC, P=256): exits non-zero unless the
# exported document is valid trace-event JSON with one track per rank and
# per used link and zero orphan recv spans.
cargo run --release -q -p hfast-bench --bin trace_capture > /dev/null
# Event-loop determinism smoke: every scenario (static 20k-flow suite,
# all-to-all burst, faulted torus with retries) must produce byte-identical
# digests under HFAST_THREADS=1 and =8; exits non-zero on divergence.
cargo run --release -q -p hfast-bench --bin eventloop_smoke > /dev/null
# Provisioner bake-off smoke: every strategy must produce a valid
# provisioning on every app cell, paper_linear digests must match the
# PR-6 goldens (the trait extraction is bit-identical), and credit-mode
# replays must deliver every flow (no deadlock under backpressure).
cargo run --release -q -p hfast-bench --bin provision_bakeoff -- --check > /dev/null
# Congestion-lab smoke: adversarial scenarios x fabrics x strategies under
# credit flow control; exits non-zero unless HFAST's congestion-tree
# spread is strictly below the fat tree's on every scenario x strategy
# cell, the fat tree shows off-root victims on incast, and ideal mode is
# byte-identical to the plain loop.
cargo run --release -q -p hfast-bench --bin congestion_lab -- --check > /dev/null
# Serving smoke: ephemeral-port daemon exercised across every endpoint
# (health, provision, cost, tdc, simulate with and without faults, the
# panic-isolation probe, stats) and drained; exits non-zero on any
# mismatch, unexercised cache, or a hung drain.
cargo run --release -q -p hfast-serve -- --self-test > /dev/null
# Fleet smoke: two shard processes behind the consistent-hash router plus
# a supervisor; exits non-zero unless the 2-shard digest is byte-identical
# to the single node, a mid-run rolling restart of one shard is invisible
# to clients (zero drops, zero mismatches), and every journaled job
# submitted before the restart is fetchable after it.
cargo run --release -q -p hfast-serve --bin hfast-fleet -- --smoke > /dev/null
# Trace-plane smoke: capture a live 2-shard fleet with per-process span
# sinks, stitch client + router + shards into one Perfetto document, and
# exit non-zero unless every traced request forms exactly one connected
# causal tree (one root, zero orphans).
cargo run --release -q -p hfast-serve --bin fleet_trace -- --capture \
  "${TMPDIR:-/tmp}/hfast-verify-trace" > /dev/null
# Soak smoke (~30 s wall): sustained mixed-verb load over a 2-shard fleet
# while a monitor polls the rolling `metrics` windows and shard 0 is
# rolling-restarted mid-soak; exits non-zero on any SLO violation — byte
# divergence, refused responses, a breached p99 ceiling, or a durable job
# lost across the restart.
cargo run --release -q -p hfast-serve --bin hfast-fleet -- --soak --secs 20 > /dev/null
echo "verify: OK"
