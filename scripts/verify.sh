#!/usr/bin/env bash
# Tier-1 verification: build, format, lint, test (unit + doc).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test --doc --workspace -q
# Fault-replay smoke: exits non-zero unless HFAST beats the fat tree in
# goodput on every (app, failure-rate) cell.
cargo run --release -q -p hfast-bench --bin faults_replay > /dev/null
echo "verify: OK"
