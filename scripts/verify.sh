#!/usr/bin/env bash
# Tier-1 verification: build, lint, test.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
echo "verify: OK"
