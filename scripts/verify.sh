#!/usr/bin/env bash
# Tier-1 verification: build, format, lint, test (unit + doc).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q
cargo test --doc --workspace -q
echo "verify: OK"
