#!/usr/bin/env bash
# Runs every bench suite and assembles the results into BENCH_<tag>.json
# at the repo root (one JSON document: {"tag": ..., "results": [...]}).
#
# Usage: scripts/bench.sh [tag]        (default tag: pr1)
#   HFAST_BENCH_FAST=1 scripts/bench.sh   # quick smoke pass
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr1}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

export HFAST_BENCH_JSON="$TMP"

for suite in topology provision netsim runtime apps; do
  cargo bench -q -p hfast-bench --bench "$suite" 2>&1 | sed 's/^/  /'
done

OUT="BENCH_${TAG}.json"
{
  printf '{\n  "tag": "%s",\n  "results": [\n' "$TAG"
  # JSON Lines -> comma-joined array entries.
  sed 's/^/    /; $!s/$/,/' "$TMP"
  printf '  ]\n}\n'
} > "$OUT"
echo "wrote $OUT ($(grep -c '"name"' "$OUT") entries)"
