#!/usr/bin/env bash
# Runs every bench suite and assembles the results into BENCH_<tag>.json
# at the repo root (one JSON document: {"tag": ..., "results": [...]}).
#
# Usage: scripts/bench.sh [tag]        (default tag: pr10)
#   HFAST_BENCH_FAST=1 scripts/bench.sh   # quick smoke pass
#
# When a BENCH_pr9.json (or an earlier PR's) baseline exists, the netsim
# suite records the trace-off overhead guard (guard/trace_off_vs_pr3)
# and the congestion-dispatch guard (guard/congestion_ideal_vs_pr9: an
# explicit CongestionMode::Ideal run against the baseline's cold case),
# and the serve suite records the telemetry-off guard
# (guard/telemetry_off_vs_pr8): fastest sample over the baseline's,
# drift-normalized by a calibration case; each must stay <= 1.05. The
# netsim suite also records the credit-mode congestion headlines
# (congestion/spread_hfast_vs_fattree, well below 1, and its inverse
# congestion/isolation_fattree_vs_hfast — the fat tree's worst
# congestion-tree spread over HFAST's on the incast scenario — which
# survives the JSONL's one-decimal rounding), and
# the serve suite prices the full telemetry plane
# (overhead/telemetry_on_vs_off — informational, spans are opt-in).
set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr10}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

export HFAST_BENCH_JSON="$TMP"
for base in BENCH_pr9.json BENCH_pr8.json BENCH_pr7.json BENCH_pr6.json BENCH_pr5.json BENCH_pr4.json BENCH_pr3.json BENCH_pr2.json BENCH_pr1.json; do
  if [[ -f "$base" ]]; then
    export HFAST_BENCH_BASELINE="$PWD/$base"
    break
  fi
done

# topology must run before netsim: the netsim overhead guard normalizes
# its cross-session ratio by a topology case (code untouched across PRs)
# from the accumulating JSONL, canceling machine-speed drift.
for suite in topology provision netsim runtime apps serve; do
  cargo bench -q -p hfast-bench --bench "$suite" 2>&1 | sed 's/^/  /'
done

OUT="BENCH_${TAG}.json"
{
  printf '{\n  "tag": "%s",\n  "results": [\n' "$TAG"
  # JSON Lines -> comma-joined array entries.
  sed 's/^/    /; $!s/$/,/' "$TMP"
  printf '  ]\n}\n'
} > "$OUT"
echo "wrote $OUT ($(grep -c '"name"' "$OUT") entries)"
