//! Node-failure behaviour: fixed torus versus reconfigurable HFAST
//! (quantifying the paper's §1 fault-tolerance argument).
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use hfast::core::{hfast_fault_impact, torus_fault_impact, ProvisionConfig};
use hfast::topology::generators::{balanced_dims3, mesh3d_graph};

fn main() {
    let procs = 64;
    let dims = balanced_dims3(procs);
    let app = mesh3d_graph(dims, 300 << 10); // a Cactus-like workload

    println!("failing nodes one by one on a {dims:?} footprint:\n");
    for k in 1..=6usize {
        let failed: Vec<usize> = (0..k).map(|i| (i * 17 + 3) % procs).collect();
        let torus = torus_fault_impact(dims, &failed);
        let hfast = hfast_fault_impact(&app, ProvisionConfig::default(), &failed);
        println!("{k} failure(s):");
        println!(
            "  torus: {} unreachable pairs, worst path dilation {:.2}x",
            torus.unreachable_pairs, torus.max_dilation
        );
        println!(
            "  hfast: survivors degraded: {}, {} circuits repatched, {} blocks freed",
            hfast.survivors_degraded, hfast.circuits_changed, hfast.blocks_freed
        );
    }
    println!(
        "\nshape: the fixed topology pays dilation (or partitions); HFAST \
         re-provisions and surviving pairs keep their dedicated circuits."
    );
}
