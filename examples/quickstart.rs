//! Quickstart: profile an application, analyze its topology, and provision
//! an HFAST fabric for it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hfast::apps::{profile_app, Cactus};
use hfast::core::{CostComparison, CostModel, PaperLinear, ProvisionConfig, Provisioner};
use hfast::topology::{detect_structure, fcn_utilization, tdc, BDP_CUTOFF};

fn main() {
    // 1. Run the Cactus communication kernel on 64 simulated ranks under
    //    the IPM-style profiler (threads + channels; no MPI needed).
    let outcome = profile_app(&Cactus::default(), 64).expect("profiled run");
    println!(
        "profiled {} at P={}: {} MPI calls in steady state",
        outcome.name,
        outcome.procs,
        outcome.steady.total_calls()
    );

    // 2. Reduce the profile to the communication topology.
    let graph = outcome.steady.comm_graph();
    let summary = tdc(&graph, BDP_CUTOFF);
    println!(
        "topological degree of communication @ 2KB cutoff: max {}, avg {:.1}",
        summary.max, summary.avg
    );
    println!(
        "structure: {}; FCN utilization: {:.0}%",
        detect_structure(&graph, BDP_CUTOFF),
        100.0 * fcn_utilization(&graph, BDP_CUTOFF)
    );

    // 3. Provision an HFAST fabric: circuit switch + packet switch blocks.
    let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
    prov.validate(&graph).expect("every hot edge routed");
    println!(
        "HFAST provisioning: {} switch blocks ({} ports/node), {} circuits",
        prov.total_blocks(),
        prov.block_ports_per_node(),
        prov.circuit.circuit_count()
    );
    let route = prov.route(0, 1).expect("neighbours routed");
    println!(
        "sample route 0→1: {} circuit traversals, {} switch hops ({} ns)",
        route.circuit_traversals,
        route.switch_hops,
        route.latency_ns()
    );

    // 4. Compare cost against a fat tree of the same components.
    let cmp = CostComparison::of(&prov, &CostModel::default());
    println!(
        "cost: HFAST {:.0} vs fat-tree {:.0} (ratio {:.2}) at this small scale",
        cmp.hfast,
        cmp.fat_tree,
        cmp.ratio()
    );
}
