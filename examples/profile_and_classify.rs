//! Profile all six study applications and classify each into the paper's
//! case i-iv taxonomy, printing an IPM-style report per code.
//!
//! ```text
//! cargo run --release --example profile_and_classify
//! ```

use hfast::apps::all_apps;
use hfast::core::{classify, ClassifyConfig};
use hfast::ipm::render;

fn main() {
    let procs = 64;
    for app in all_apps() {
        let outcome = hfast::apps::profile_app(app.as_ref(), procs).expect("profiled run");
        print!("{}", render(outcome.name, &outcome.steady));

        let graph = outcome.steady.comm_graph();
        let verdict = classify(&graph, &ClassifyConfig::default());
        println!("\nclassification: {} — {}", verdict.case, verdict.rationale);
        println!("prescription:   {}\n", verdict.case.prescription());
        println!("{}\n", "=".repeat(72));
    }
}
