//! Writing your own application kernel against the public API: a 2D
//! red-black Gauss-Seidel halo exchange, profiled and provisioned
//! end-to-end. This is the workflow a new user follows to evaluate whether
//! *their* code suits an HFAST interconnect.
//!
//! ```text
//! cargo run --release --example custom_application
//! ```

use std::sync::Arc;

use hfast::core::{classify, ClassifyConfig, PaperLinear, ProvisionConfig, Provisioner};
use hfast::ipm::IpmProfiler;
use hfast::mpi::{CommHook, Payload, ReduceOp, SrcSel, Tag, TagSel, World, WorldConfig};
use hfast::topology::{tdc, BDP_CUTOFF};

const PROCS: usize = 36; // 6×6 process grid
const GRID: usize = 6;
const HALO_BYTES: usize = 96 << 10;
const STEPS: usize = 10;

fn main() {
    let profiler = Arc::new(IpmProfiler::new(PROCS));
    let hook = Arc::clone(&profiler);
    let prof = Arc::clone(&profiler);

    World::run_with(
        WorldConfig::new(PROCS).hook(hook as Arc<dyn CommHook>),
        move |comm| {
            let rank = comm.rank();
            let (row, col) = (rank / GRID, rank % GRID);
            // Four-point stencil neighbours (non-periodic).
            let mut partners = vec![];
            if row > 0 {
                partners.push(rank - GRID);
            }
            if row + 1 < GRID {
                partners.push(rank + GRID);
            }
            if col > 0 {
                partners.push(rank - 1);
            }
            if col + 1 < GRID {
                partners.push(rank + 1);
            }

            prof.enter_region(rank, "steady");
            for _step in 0..STEPS {
                let mut reqs = vec![];
                for &p in &partners {
                    reqs.push(
                        comm.irecv(SrcSel::Rank(p), TagSel::Tag(Tag(1)), HALO_BYTES)
                            .unwrap(),
                    );
                    reqs.push(
                        comm.isend(p, Tag(1), Payload::synthetic(HALO_BYTES))
                            .unwrap(),
                    );
                }
                comm.waitall(reqs).unwrap();
                // Global residual check.
                comm.allreduce(Payload::synthetic(8), ReduceOp::Max)
                    .unwrap();
            }
            prof.exit_region(rank);
        },
    )
    .expect("world ran");

    let profile = profiler.region_profile("steady");
    let graph = profile.comm_graph();
    let summary = tdc(&graph, BDP_CUTOFF);
    println!(
        "your stencil at P={PROCS}: TDC max {}, avg {:.1}",
        summary.max, summary.avg
    );

    let verdict = classify(&graph, &ClassifyConfig::default());
    println!("classification: {} — {}", verdict.case, verdict.rationale);

    let prov = PaperLinear.provision(&graph, ProvisionConfig::default());
    prov.validate(&graph).expect("all hot edges provisioned");
    println!(
        "HFAST would need {} switch blocks ({:.0} packet ports/node) for this job",
        prov.total_blocks(),
        prov.block_ports_per_node()
    );
}
