//! SMP-node bandwidth localization (the paper's §5 future work): place MPI
//! ranks onto multi-core nodes so that heavy exchanges stay in shared
//! memory, then provision HFAST for the folded node-level topology.
//!
//! ```text
//! cargo run --release --example smp_placement
//! ```

use hfast::apps::{profile_app, Cactus, Lbmhd};
use hfast::core::{localize, PaperLinear, ProvisionConfig, Provisioner, SmpAssignment};
use hfast::topology::{tdc, BDP_CUTOFF};

fn study(name: &str, graph: &hfast::topology::CommGraph, width: usize) {
    let rr = SmpAssignment::round_robin(graph.n(), width);
    let blocked = SmpAssignment::blocked(graph.n(), width);
    let optimized = localize(graph, width, 4);
    println!("{name} on {}-way SMP nodes:", width);
    for (label, asg) in [
        ("round-robin", &rr),
        ("blocked", &blocked),
        ("localized", &optimized),
    ] {
        let folded = asg.fold(graph);
        let node_tdc = tdc(&folded, BDP_CUTOFF);
        let prov = PaperLinear.provision(&folded, ProvisionConfig::default());
        println!(
            "  {label:<12} locality {:>5.1}%  node TDC (max {}, avg {:.1})  switch blocks {}",
            100.0 * asg.locality(graph),
            node_tdc.max,
            node_tdc.avg,
            prov.total_blocks()
        );
    }
    println!();
}

fn main() {
    let procs = 64;
    let width = 4;

    let cactus = profile_app(&Cactus::default(), procs).expect("profiled run");
    study("Cactus", &cactus.steady.comm_graph(), width);

    let lbmhd = profile_app(&Lbmhd::default(), procs).expect("profiled run");
    study("LBMHD", &lbmhd.steady.comm_graph(), width);

    println!(
        "shape: folding 4 ranks per node shrinks the provisioning problem \
         4x outright, and bandwidth localization keeps an extra share of \
         traffic in shared memory (LBMHD: 0% -> ~17%) at the price of a \
         denser node-level topology — the trade the paper's deferred SMP \
         analysis has to navigate."
    );
}
