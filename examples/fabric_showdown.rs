//! Replay application traffic over three fabrics — fat tree, 3D torus, and
//! a provisioned HFAST — in the discrete-event simulator and compare.
//!
//! ```text
//! cargo run --release --example fabric_showdown
//! ```

use hfast::apps::{profile_app, Lbmhd, Paratec};
use hfast::core::{PaperLinear, ProvisionConfig, Provisioner};
use hfast::netsim::{traffic, Fabric, FatTreeFabric, HfastFabric, Simulation, TorusFabric};
use hfast::topology::generators::balanced_dims3;

fn showdown(name: &str, graph: &hfast::topology::CommGraph) {
    let procs = graph.n();
    let flows = traffic::flows_from_graph(graph, 2048);
    println!("{name}: {} hot flows", flows.len());
    let fabrics: Vec<Box<dyn Fabric>> = vec![
        Box::new(FatTreeFabric::new(procs, 8).expect("valid shape")),
        Box::new(TorusFabric::new(balanced_dims3(procs)).expect("valid shape")),
        Box::new(HfastFabric::new(
            PaperLinear.provision(graph, ProvisionConfig::default()),
        )),
    ];
    for fabric in &fabrics {
        let stats = Simulation::new(fabric.as_ref()).run(&flows).stats;
        println!("  {:<9} {stats}", fabric.name());
    }
    println!();
}

fn main() {
    let procs = 64;

    // LBMHD: scattered low-degree pattern — HFAST's sweet spot.
    let lbmhd = profile_app(&Lbmhd::default(), procs).expect("profiled run");
    showdown("LBMHD", &lbmhd.steady.comm_graph());

    // PARATEC: all-to-all — the case-iv pattern where the FCN wins.
    let paratec = profile_app(&Paratec::new(1), procs).expect("profiled run");
    showdown("PARATEC", &paratec.steady.comm_graph());

    println!(
        "shape: the provisioned fabric tracks or beats the fat tree on the \
         scattered pattern and loses on the full-bisection pattern — \
         exactly the paper's case analysis."
    );
}
