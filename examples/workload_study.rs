//! Workload-level characterization (§6's "large and diverse application
//! workloads"): aggregate all six codes into one study and ask the
//! machine-design questions the paper poses.
//!
//! ```text
//! cargo run --release --example workload_study
//! ```

use hfast::apps::{all_apps, profile_app};
use hfast::ipm::WorkloadStudy;
use hfast::topology::BDP_CUTOFF;

fn main() {
    let procs = 64;
    let mut study = WorkloadStudy::new();
    for app in all_apps() {
        let outcome = profile_app(app.as_ref(), procs).expect("profiled run");
        study.add(outcome.name, outcome.steady);
    }

    println!("workload of {} codes at P = {procs}:\n", study.len());

    let col = study.collective_histogram();
    println!(
        "collectives: {:.0}% ≤ 2 KB ({} calls) → a cheap tree network serves them",
        100.0 * col.fraction_at_or_below(2048),
        col.total()
    );
    let ptp = study.ptp_histogram();
    println!(
        "point-to-point: median {} B, max {} KB across the workload",
        ptp.median().unwrap_or(0),
        ptp.max().unwrap_or(0) / 1024
    );

    println!("\nfraction of codes a degree-bounded interconnect serves (at 2 KB cutoff):");
    for bound in [2usize, 6, 12, 15, 30, 63] {
        println!(
            "  degree ≤ {bound:>2}: {:>3.0}% of codes",
            100.0 * study.fraction_bounded_by(bound, BDP_CUTOFF)
        );
    }
    println!(
        "\nshape (paper §5.2): most of the workload fits a low-degree \
         adaptive fabric; only the case-iv tail needs full bisection."
    );
}
