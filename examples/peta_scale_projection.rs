//! The paper's peta-scale argument, projected: sweep machine sizes from
//! today's clusters to 10⁶ processors and compare fat-tree versus HFAST
//! component demand for each application class.
//!
//! ```text
//! cargo run --release --example peta_scale_projection
//! ```

use hfast::core::cost::AnalyticHfast;
use hfast::core::{CostModel, FatTree, ProvisionConfig};

fn main() {
    let model = CostModel::default();
    let config = ProvisionConfig {
        block_ports: 8, // commodity component size, as in the paper's example
        cutoff: 2048,
    };

    println!("packet-switch ports per processor (8-port components):\n");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>14}",
        "P", "fat-tree", "HFAST TDC=6", "HFAST TDC=12", "HFAST TDC=30"
    );
    for exp in [6u32, 8, 10, 12, 14, 16, 18, 20] {
        let p = 1usize << exp;
        let ft = FatTree::for_processors(p, config.block_ports);
        let per_node =
            |tdc: usize| AnalyticHfast { p, tdc, config }.packet_ports() as f64 / p as f64;
        println!(
            "{:>10} {:>10} {:>14.0} {:>14.0} {:>14.0}",
            p,
            ft.ports_per_processor(),
            per_node(6),
            per_node(12),
            per_node(30)
        );
    }

    println!("\ntotal interconnect cost ratio (HFAST / fat-tree):\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "P", "TDC=6", "TDC=12", "TDC=30"
    );
    for exp in [6u32, 10, 14, 18, 20] {
        let p = 1usize << exp;
        let ft = FatTree::for_processors(p, config.block_ports).cost(&model);
        let ratio = |tdc: usize| AnalyticHfast { p, tdc, config }.cost(&model) / ft;
        println!(
            "{:>10} {:>12.2} {:>12.2} {:>12.2}",
            p,
            ratio(6),
            ratio(12),
            ratio(30)
        );
    }

    for tdc in [6usize, 12, 30] {
        match AnalyticHfast::crossover_p(tdc, config, &model) {
            Some(p) => println!("\nTDC {tdc}: HFAST becomes cheaper at P = {p}"),
            None => println!("\nTDC {tdc}: the fat tree stays cheaper at every scale"),
        }
    }
    println!(
        "\nshape (paper §5.3): the fat tree's per-processor port count grows \
         with log P while HFAST's stays constant; for low-TDC scientific \
         codes the lines cross within ultra-scale machine sizes, and never \
         cross for case-iv (full-bisection) codes."
    );
}
