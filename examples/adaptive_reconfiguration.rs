//! Runtime topology adaptation (paper §2.3): start from the default
//! densely-packed 3D-mesh provisioning, observe a running application whose
//! pattern does not match, and re-provision at synchronization points.
//!
//! ```text
//! cargo run --release --example adaptive_reconfiguration
//! ```

use hfast::apps::{profile_app, Gtc, Lbmhd};
use hfast::core::{ProvisionConfig, ReconfigEngine};

fn main() {
    let procs = 64;
    let mut engine = ReconfigEngine::initial_mesh(procs, ProvisionConfig::default());
    println!("initial provisioning: densely packed 3D mesh for {procs} nodes\n");

    // Phase 1: LBMHD — scattered 12-partner pattern, nothing like a mesh.
    let lbmhd = profile_app(&Lbmhd::default(), procs).expect("profiled run");
    let observed = lbmhd.steady.comm_graph();
    println!(
        "phase 1 (LBMHD): {:.0}% of hot traffic rides dedicated circuits before adapting",
        100.0 * engine.coverage(&observed)
    );
    let step = engine.observe_and_adapt(&observed);
    println!(
        "  adapted: {} circuits changed, {:.1} ms of switch reconfiguration, coverage → {:.0}%\n",
        step.circuits_changed,
        step.reconfig_time_ns as f64 / 1e6,
        100.0 * step.coverage_after
    );

    // Phase 2: the job finishes; GTC starts on the same nodes.
    let gtc = profile_app(&Gtc::default(), procs).expect("profiled run");
    let observed = gtc.steady.comm_graph();
    println!(
        "phase 2 (GTC): coverage before adapting {:.0}%",
        100.0 * engine.coverage(&observed)
    );
    let step = engine.observe_and_adapt(&observed);
    println!(
        "  adapted: {} circuits changed, coverage → {:.0}%",
        step.circuits_changed,
        100.0 * step.coverage_after
    );

    // Phase 3: GTC again — a stable pattern converges to zero changes.
    let step = engine.observe_and_adapt(&observed);
    println!(
        "phase 3 (GTC steady): {} circuits changed (fixed point reached)",
        step.circuits_changed
    );
}
