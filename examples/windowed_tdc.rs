//! Time-windowed TDC (the paper's §6 future work): watch an application's
//! communication topology evolve over time and spot the phase changes where
//! an HFAST fabric would reconfigure.
//!
//! ```text
//! cargo run --release --example windowed_tdc
//! ```

use std::sync::Arc;

use hfast::ipm::WindowedTdcHook;
use hfast::mpi::{CommHook, MultiHook, Payload, ReduceOp, SrcSel, Tag, TagSel, World, WorldConfig};

const PROCS: usize = 32;

fn main() {
    // 1 ms windows over a two-phase synthetic application.
    let windows = Arc::new(WindowedTdcHook::new(PROCS, 1_000_000));
    let hook = Arc::new(MultiHook::new(vec![windows.clone()]));

    World::run_with(
        WorldConfig::new(PROCS).hook(hook as Arc<dyn CommHook>),
        |comm| {
            let me = comm.rank();
            let n = comm.size();
            // Phase A: nearest-neighbour ring (a stencil solve).
            for _ in 0..40 {
                let right = (me + 1) % n;
                let left = (me + n - 1) % n;
                let r = comm
                    .irecv(SrcSel::Rank(left), TagSel::Tag(Tag(1)), 64 << 10)
                    .unwrap();
                comm.isend(right, Tag(1), Payload::synthetic(64 << 10))
                    .unwrap();
                comm.wait(r).unwrap();
            }
            comm.barrier().unwrap();
            // Phase B: a transpose-like long-range pattern (an FFT step).
            for _ in 0..40 {
                let partner = (me + n / 2) % n;
                let r = comm
                    .irecv(SrcSel::Rank(partner), TagSel::Tag(Tag(2)), 32 << 10)
                    .unwrap();
                comm.isend(partner, Tag(2), Payload::synthetic(32 << 10))
                    .unwrap();
                comm.wait(r).unwrap();
            }
            comm.allreduce(Payload::synthetic(8), ReduceOp::Sum)
                .unwrap();
        },
    )
    .expect("world ran");

    println!("TDC time series (1 ms windows, 2 KB cutoff):");
    for (window, summary) in windows.tdc_series(2048) {
        println!(
            "  t = {:>4} ms: max {} avg {:.1}",
            window, summary.max, summary.avg
        );
    }
    let changes = windows.phase_changes(2048);
    println!(
        "\ntopology phase changes at windows {changes:?} — each is a \
         candidate point for HFAST circuit reconfiguration (§6)."
    );
}
